"""Checkpointed, crash-resumable corpus synthesis.

A multi-hour generation run that dies at 92% and restarts from zero is
the worst operational failure mode a corpus-is-the-system pipeline can
have.  This module makes synthesis **crash-safe**: streaming corpus
output is paired with a shard-level progress manifest
(``corpus.manifest.json`` for ``corpus.jsonl``) so an interrupted run
resumes exactly where it stopped — and, because shard RNG streams are
pure functions of (seed, shard index), the resumed corpus is
**bit-identical** to one produced by an uninterrupted run.

The commit protocol, per shard (shards are committed in ascending
shard order — the canonical corpus order):

1. the shard's globally-deduplicated pairs are appended to the output
   file and flushed;
2. a shard record ``{index, pairs, bytes_end, sha256, seed}`` is added
   to the manifest, where ``sha256`` is the hash of the **entire file
   prefix** up to ``bytes_end``;
3. the manifest is written to a temporary sibling and atomically
   renamed (``os.replace``).

The manifest is the commit record: on ``--resume``, the longest file
prefix whose cumulative hash matches a shard record is kept (anything
beyond it — a partial shard write, a torn line — is truncated away),
the global dedupe key set is rebuilt from the kept prefix, and
generation continues from the first unfinished shard.  A manifest whose
run fingerprint (seed, config, schemas, templates, format) differs from
the current invocation is refused with
:class:`~repro.errors.ManifestMismatchError` rather than silently
splicing two different corpora.

Quarantined shards (see :meth:`SynthesisEngine.iter_outcomes`) are
recorded in the manifest's ``failed_shards`` report and are **not**
retried by ``--resume``: appending a previously-skipped shard's pairs
after later shards would break the canonical order.  To retry
quarantined shards, regenerate from scratch.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.config import ResilienceConfig
from repro.core.faults import NO_FAULTS, PARTIAL_WRITE, WRITER_KINDS, FaultPlan
from repro.core.parallel import EngineState, ShardFailure, SynthesisEngine
from repro.core.templates import TrainingPair, dedupe_pairs
from repro.errors import (
    CorpusIntegrityError,
    GenerationError,
    GracefulExit,
    ManifestMismatchError,
)

MANIFEST_VERSION = 1

#: Adaptive commit cadence (``flush_every=0``): the manifest is
#: committed when at least this much wall-clock has passed since the
#: last commit.  Bounds work lost to a crash by ~this many seconds
#: while keeping fsync/rename cost off the per-shard hot path.
FLUSH_INTERVAL_SECONDS = 0.5

#: Run statuses recorded in the manifest.
STATUS_IN_PROGRESS = "in-progress"
STATUS_INTERRUPTED = "interrupted"
STATUS_COMPLETE = "complete"
STATUS_QUARANTINE = "complete-with-quarantine"


def manifest_path_for(output: str | Path) -> Path:
    """``corpus.jsonl`` -> ``corpus.manifest.json`` (same directory)."""
    output = Path(output)
    return output.with_name(f"{output.stem}.manifest.json")


def run_fingerprint(state: EngineState, fmt: str) -> str:
    """Hash of everything that determines the corpus bytes.

    Two invocations share a fingerprint iff an uninterrupted run would
    write byte-identical output files — the precondition for resuming
    one run's file under another run's engine.
    """
    payload = {
        "seed": state.seed,
        "format": fmt,
        "schemas": [schema.name for schema in state.schemas],
        "templates": [template.tid for template in state.templates],
        "config": state.config.to_dict(),
        "apply_lemmatizer": state.apply_lemmatizer,
        "pos_aware_dropout": state.pos_aware_dropout,
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def _atomic_json_dump(payload: dict, path: Path) -> None:
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    os.replace(tmp, path)


def _keys_from_lines(text: str, fmt: str) -> list[tuple[str, str]]:
    """Dedupe keys of every pair serialized in ``text`` (one per line)."""
    keys: list[tuple[str, str]] = []
    for line in text.splitlines():
        if not line:
            continue
        if fmt == "jsonl":
            record = json.loads(line)
            keys.append((record["nl"], record["sql"]))
        else:  # tsv
            nl, _, sql = line.partition("\t")
            keys.append((nl, sql))
    return keys


@dataclass
class CorpusManifest:
    """In-memory view of the shard-progress manifest."""

    fingerprint: str
    seed: int
    fmt: str
    shard_count: int
    status: str = STATUS_IN_PROGRESS
    shards: list[dict] = field(default_factory=list)  # commit order
    failed_shards: list[dict] = field(default_factory=list)
    pairs_written: int = 0

    def to_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "format": self.fmt,
            "shard_count": self.shard_count,
            "status": self.status,
            "pairs_written": self.pairs_written,
            "shards": self.shards,
            "failed_shards": self.failed_shards,
        }

    def save(self, path: Path) -> None:
        _atomic_json_dump(self.to_dict(), path)

    @classmethod
    def load(cls, path: Path) -> "CorpusManifest":
        try:
            with open(path, encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CorpusIntegrityError(
                f"cannot read manifest {path}: {exc}"
            ) from exc
        if raw.get("version") != MANIFEST_VERSION:
            raise ManifestMismatchError(
                f"manifest {path} has version {raw.get('version')!r}, "
                f"expected {MANIFEST_VERSION}"
            )
        return cls(
            fingerprint=raw.get("fingerprint", ""),
            seed=raw.get("seed", 0),
            fmt=raw.get("format", "jsonl"),
            shard_count=raw.get("shard_count", 0),
            status=raw.get("status", STATUS_IN_PROGRESS),
            shards=list(raw.get("shards", [])),
            failed_shards=list(raw.get("failed_shards", [])),
            pairs_written=raw.get("pairs_written", 0),
        )


@dataclass
class ResumeState:
    """What survived validation of an existing (file, manifest) pair."""

    completed: dict[int, dict]  # shard index -> kept shard record
    quarantined: list[dict]
    keep_bytes: int
    hasher: "hashlib._Hash"
    seen: set[tuple[str, str]]
    pairs_written: int
    dropped_records: int  # manifest records invalidated by a bad prefix


def _validate_output_prefix(
    output: Path, manifest: CorpusManifest
) -> ResumeState:
    """Keep the longest output prefix the manifest vouches for.

    Walks shard records in commit order, re-hashing the file
    incrementally; the first record whose cumulative hash (or length)
    disagrees with the file invalidates itself and everything after it
    — those shards simply regenerate.  Also rebuilds the global dedupe
    key set from the kept prefix so a resumed run never re-admits a
    pair a completed shard already emitted.
    """
    completed: dict[int, dict] = {}
    hasher = hashlib.sha256()
    seen: set[tuple[str, str]] = set()
    keep_bytes = 0
    pairs = 0
    dropped = 0
    try:
        handle = open(output, "rb")
    except FileNotFoundError:
        # Manifest without output: every shard regenerates.
        return ResumeState(
            {}, list(manifest.failed_shards), 0, hasher, set(), 0,
            len(manifest.shards),
        )
    with handle:
        position = 0
        for index, record in enumerate(manifest.shards):
            span = record["bytes_end"] - position
            data = handle.read(span) if span >= 0 else b""
            if span < 0 or len(data) < span:
                dropped = len(manifest.shards) - index
                break
            candidate = hasher.copy()
            candidate.update(data)
            if candidate.hexdigest() != record["sha256"]:
                dropped = len(manifest.shards) - index
                break
            hasher = candidate
            position = record["bytes_end"]
            keep_bytes = position
            pairs += record["pairs"]
            seen.update(
                _keys_from_lines(data.decode("utf-8"), manifest.fmt)
            )
            completed[record["index"]] = record
    return ResumeState(
        completed,
        list(manifest.failed_shards),
        keep_bytes,
        hasher,
        seen,
        pairs,
        dropped,
    )


@dataclass
class GenerationReport:
    """Outcome summary of one checkpointed generation run."""

    output_path: Path
    manifest_path: Path
    status: str
    pairs_written: int  # total pairs in the output file
    new_pairs: int  # pairs written by *this* invocation
    completed_shards: int  # shards committed by this invocation
    resumed_shards: int  # shards skipped thanks to the checkpoint
    quarantined: list[ShardFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_COMPLETE


class CheckpointedWriter:
    """Drives fault-tolerant synthesis into a checkpointed output file."""

    def __init__(
        self,
        engine: SynthesisEngine,
        output: str | Path,
        fmt: str = "jsonl",
        resilience: ResilienceConfig | None = None,
        faults: FaultPlan = NO_FAULTS,
        flush_every: int = 0,
    ) -> None:
        from repro.core.corpus_io import LINE_ENCODERS

        if fmt not in LINE_ENCODERS:
            raise GenerationError(f"unknown corpus format {fmt!r}")
        self.engine = engine
        self.output = Path(output)
        self.fmt = fmt
        self.encode: Callable[[TrainingPair], str] = LINE_ENCODERS[fmt]
        self.resilience = resilience or ResilienceConfig()
        self.faults = faults
        #: > 0: commit the manifest every N shards.  0 (default):
        #: adaptive — commit when :data:`FLUSH_INTERVAL_SECONDS` has
        #: passed since the last commit.  Either way the manifest is
        #: always committed on quarantine, interrupt, and completion;
        #: uncommitted shards simply regenerate on resume, so the
        #: cadence trades fsync overhead against redone work, never
        #: correctness.
        self.flush_every = max(0, flush_every)
        self.manifest_path = manifest_path_for(self.output)
        self.fingerprint = run_fingerprint(engine.state, fmt)

    # ------------------------------------------------------------------

    def _fresh_manifest(self) -> tuple[CorpusManifest, ResumeState]:
        manifest = CorpusManifest(
            fingerprint=self.fingerprint,
            seed=self.engine.state.seed,
            fmt=self.fmt,
            shard_count=self.engine.shard_count,
        )
        resume = ResumeState({}, [], 0, hashlib.sha256(), set(), 0, 0)
        return manifest, resume

    def _resume_state(self) -> tuple[CorpusManifest, ResumeState]:
        """Load + validate an existing checkpoint, or start fresh."""
        if not self.manifest_path.exists():
            return self._fresh_manifest()
        manifest = CorpusManifest.load(self.manifest_path)
        if manifest.fingerprint != self.fingerprint:
            raise ManifestMismatchError(
                f"checkpoint {self.manifest_path} was written by a run with "
                "different seed/config/schemas/templates/format; refusing to "
                "resume (remove the manifest to regenerate from scratch)"
            )
        resume = _validate_output_prefix(self.output, manifest)
        manifest.shards = [
            record
            for record in manifest.shards
            if record["index"] in resume.completed
        ]
        manifest.pairs_written = resume.pairs_written
        # A quarantined shard can be retried iff no *later* shard has
        # already been committed — otherwise its pairs would append out
        # of canonical order.  Retryable ones leave the skip list (and
        # the report; they re-enter it if they fail again).
        max_done = max(resume.completed, default=-1)
        sticky = [
            record
            for record in resume.quarantined
            if record["shard_index"] < max_done
        ]
        resume.quarantined = sticky
        manifest.failed_shards = list(sticky)
        return manifest, resume

    # ------------------------------------------------------------------

    def run(
        self,
        workers: int = 0,
        resume: bool = False,
        recorder=None,
        on_batch: Callable[[list[TrainingPair]], None] | None = None,
    ) -> GenerationReport:
        """Generate (or finish generating) the corpus file.

        Commits shards in canonical order; on ``KeyboardInterrupt`` /
        :class:`~repro.errors.GracefulExit` the manifest is flushed with
        status ``interrupted`` before the exception propagates, so the
        run is resumable.  Returns a :class:`GenerationReport` whose
        ``status`` distinguishes ``complete`` from
        ``complete-with-quarantine``.
        """
        if resume:
            manifest, state = self._resume_state()
        else:
            manifest, state = self._fresh_manifest()

        quarantined = [
            _failure_from_dict(record) for record in state.quarantined
        ]
        skip = set(state.completed) | {
            failure.shard_index for failure in quarantined
        }
        seen = state.seen
        hasher = state.hasher
        position = state.keep_bytes
        new_pairs = 0
        committed = 0
        last_commit = time.monotonic()

        # Truncate away any bytes the manifest does not vouch for, then
        # append.  (On a fresh run this truncates to zero.)
        with open(self.output, "ab") as handle:
            handle.truncate(position)
            manifest.status = STATUS_IN_PROGRESS
            manifest.save(self.manifest_path)
            try:
                for outcome in self.engine.iter_outcomes(
                    workers=workers,
                    resilience=self.resilience,
                    faults=self.faults,
                    skip=frozenset(skip),
                ):
                    if not outcome.ok:
                        quarantined.append(outcome.failure)
                        manifest.failed_shards.append(outcome.failure.to_dict())
                        manifest.save(self.manifest_path)
                        continue
                    if recorder is not None:
                        for stage, seconds in outcome.timings.items():
                            recorder.add(stage, seconds, items=len(outcome.pairs))
                        with recorder.stage("merge") as stats:
                            batch = dedupe_pairs(outcome.pairs, seen)
                            stats.items += len(batch)
                    else:
                        batch = dedupe_pairs(outcome.pairs, seen)
                    if on_batch is not None:
                        on_batch(batch)
                    data = "".join(self.encode(pair) for pair in batch).encode(
                        "utf-8"
                    )
                    self._maybe_partial_write(outcome.shard_index, handle, data)
                    handle.write(data)
                    hasher.update(data)
                    position += len(data)
                    new_pairs += len(batch)
                    committed += 1
                    manifest.pairs_written = state.pairs_written + new_pairs
                    manifest.shards.append(
                        {
                            "index": outcome.shard_index,
                            "pairs": len(batch),
                            "bytes_end": position,
                            "sha256": hasher.hexdigest(),
                            "seed": {
                                "entropy": self.engine.state.seed,
                                "spawn_key": [outcome.shard_index],
                            },
                            "attempts": outcome.attempts,
                        }
                    )
                    boundary_fault = self.faults.find(
                        WRITER_KINDS - {PARTIAL_WRITE},
                        outcome.shard_index,
                        *self._shard_names(outcome.shard_index),
                        attempt=0,
                    )
                    due = boundary_fault is not None or (
                        committed % self.flush_every == 0
                        if self.flush_every > 0
                        else time.monotonic() - last_commit
                        >= FLUSH_INTERVAL_SECONDS
                    )
                    if due:
                        self._checkpoint(handle, manifest, recorder)
                        last_commit = time.monotonic()
                    if boundary_fault is not None:
                        raise GracefulExit(
                            f"injected interrupt after shard "
                            f"{outcome.shard_index}"
                        )
            except (KeyboardInterrupt, GracefulExit, SystemExit):
                manifest.status = STATUS_INTERRUPTED
                self._checkpoint(handle, manifest, recorder)
                raise
            manifest.status = (
                STATUS_QUARANTINE if quarantined else STATUS_COMPLETE
            )
            self._checkpoint(handle, manifest, recorder)

        return GenerationReport(
            output_path=self.output,
            manifest_path=self.manifest_path,
            status=manifest.status,
            pairs_written=manifest.pairs_written,
            new_pairs=new_pairs,
            completed_shards=committed,
            resumed_shards=len(state.completed),
            quarantined=quarantined,
        )

    # ------------------------------------------------------------------

    def _shard_names(self, shard_index: int) -> tuple[str, str]:
        schema, template = self.engine.state.shard_coords(shard_index)
        return schema.name, template.tid

    def _checkpoint(self, handle, manifest: CorpusManifest, recorder) -> None:
        """Flush corpus bytes to disk, then commit the manifest."""
        if recorder is not None:
            with recorder.stage("checkpoint"):
                handle.flush()
                os.fsync(handle.fileno())
                manifest.save(self.manifest_path)
        else:
            handle.flush()
            os.fsync(handle.fileno())
            manifest.save(self.manifest_path)

    def _maybe_partial_write(self, shard_index: int, handle, data: bytes) -> None:
        """PARTIAL_WRITE fault: emit a torn prefix and die mid-commit."""
        if not self.faults:
            return
        spec = self.faults.find(
            frozenset({PARTIAL_WRITE}),
            shard_index,
            *self._shard_names(shard_index),
            attempt=0,
        )
        if spec is None:
            return
        handle.write(data[: max(1, len(data) // 2)])
        handle.flush()
        os.fsync(handle.fileno())
        os._exit(1)


def _failure_from_dict(record: dict) -> ShardFailure:
    seed = record.get("seed", {})
    return ShardFailure(
        shard_index=record["shard_index"],
        schema_name=record.get("schema", ""),
        template_id=record.get("template_id", ""),
        seed_entropy=seed.get("entropy", 0),
        seed_spawn_key=tuple(seed.get("spawn_key", ())),
        code=record.get("code", ""),
        message=record.get("message", ""),
        attempts=record.get("attempts", 0),
    )


def generate_checkpointed(
    engine: SynthesisEngine,
    output: str | Path,
    fmt: str = "jsonl",
    workers: int = 0,
    resume: bool = False,
    resilience: ResilienceConfig | None = None,
    faults: FaultPlan = NO_FAULTS,
    recorder=None,
    on_batch: Callable[[list[TrainingPair]], None] | None = None,
    flush_every: int = 0,
) -> GenerationReport:
    """Functional front door for :class:`CheckpointedWriter`."""
    writer = CheckpointedWriter(
        engine,
        output,
        fmt=fmt,
        resilience=resilience,
        faults=faults,
        flush_every=flush_every,
    )
    return writer.run(
        workers=workers, resume=resume, recorder=recorder, on_batch=on_batch
    )
