"""The DBPal training pipeline: generate → augment → lemmatize (§2.2).

:class:`TrainingPipeline` is the package's headline API.  Given only
database schemas (plus the reusable seed templates and lexicons), it
synthesizes a training corpus and trains any *pluggable* translation
model on it — optionally mixed with existing manually curated pairs,
exactly as the paper's DBPal (Train) configuration augments Spider's
human-annotated training set.
"""

from __future__ import annotations

import logging
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.config import GenerationConfig
from repro.errors import E_LINT, GenerationError
from repro.core.parallel import SynthesisEngine
from repro.core.seed_templates import SEED_TEMPLATES
from repro.core.templates import SeedTemplate, TrainingPair
from repro.nlp.lemmatizer import lemmatize
from repro.nlp.ppdb import ParaphraseDatabase
from repro.schema.schema import Schema

logger = logging.getLogger("repro.analysis")


@dataclass
class TrainingCorpus:
    """An ordered, deduplicated collection of training pairs."""

    pairs: list[TrainingPair] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def nl_texts(self) -> list[str]:
        return [p.nl for p in self.pairs]

    def sql_texts(self) -> list[str]:
        return [p.sql_text for p in self.pairs]

    def family_counts(self) -> dict[str, int]:
        """Training pairs per query family (for balance diagnostics)."""
        return dict(Counter(p.family.value for p in self.pairs))

    def augmentation_counts(self) -> dict[str, int]:
        """Training pairs per augmentation provenance."""
        return dict(Counter(p.augmentation for p in self.pairs))

    def merged_with(self, extra: Iterable[TrainingPair]) -> "TrainingCorpus":
        """This corpus plus ``extra`` pairs (deduplicated, order kept)."""
        seen = {p.key() for p in self.pairs}
        merged = list(self.pairs)
        for pair in extra:
            if pair.key() not in seen:
                seen.add(pair.key())
                merged.append(pair)
        return TrainingCorpus(merged)

    def subsample(self, n: int, seed: int = 0) -> "TrainingCorpus":
        """A uniform random subsample of at most ``n`` pairs."""
        if n >= len(self.pairs):
            return TrainingCorpus(list(self.pairs))
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self.pairs), size=n, replace=False)
        return TrainingCorpus([self.pairs[i] for i in sorted(idx)])

    def split(self, test_fraction: float, seed: int = 0):
        """Random (train, test) split — the §3.3 automatic test workload."""
        rng = np.random.default_rng(seed)
        indices = rng.permutation(len(self.pairs))
        cut = int(len(self.pairs) * (1.0 - test_fraction))
        train = TrainingCorpus([self.pairs[i] for i in sorted(indices[:cut])])
        test = TrainingCorpus([self.pairs[i] for i in sorted(indices[cut:])])
        return train, test


class TrainingPipeline:
    """Generate → augment → lemmatize, then train any pluggable model.

    Synthesis runs on the sharded :class:`SynthesisEngine`: the corpus
    is the order-stable merge of per-(schema, template) shards, each
    with its own ``SeedSequence``-derived RNG streams.  ``workers``
    selects the execution strategy only — ``0`` (default) runs the
    shard loop inline in this process, ``N > 0`` fans shards out over a
    process pool — and never changes the corpus: for a given seed and
    configuration every worker count produces bit-identical output.
    """

    def __init__(
        self,
        schemas: Schema | Sequence[Schema],
        config: GenerationConfig | None = None,
        templates: Sequence[SeedTemplate] = SEED_TEMPLATES,
        ppdb: ParaphraseDatabase | None = None,
        apply_lemmatizer: bool = True,
        seed: int = 0,
        pos_aware_dropout: bool = False,
        workers: int = 0,
        lint: bool = True,
        semantic_dedupe: bool = False,
    ) -> None:
        if isinstance(schemas, Schema):
            schemas = [schemas]
        self.schemas = list(schemas)
        self.config = config or GenerationConfig()
        self.templates = tuple(templates)
        self._ppdb = ppdb or ParaphraseDatabase()
        self._apply_lemmatizer = apply_lemmatizer
        self._seed = seed
        self._pos_aware_dropout = pos_aware_dropout
        self._workers = workers
        self._lint = lint
        self._semantic_dedupe = semantic_dedupe

    # ------------------------------------------------------------------
    # Pre-generation lint gate
    # ------------------------------------------------------------------

    def lint_report(self):
        """The static-analysis report over this pipeline's inputs.

        Memoized per input fingerprint (see
        :func:`repro.analysis.lint_pipeline_inputs`), so repeated
        pipelines over the same schemas/templates pay once.
        """
        from repro.analysis import lint_pipeline_inputs

        return lint_pipeline_inputs(
            self.schemas, self.templates, config=self.config
        )

    def _lint_gate(self) -> None:
        """Refuse to generate from inputs with lint errors (fail fast).

        Errors abort before any shard is scheduled; warnings are logged
        and generation proceeds.  ``lint=False`` disables the gate.
        The gate never touches generation RNG streams, so it cannot
        change the corpus for inputs that pass.
        """
        if not self._lint:
            return
        report = self.lint_report()
        for diag in report.warnings:
            logger.warning("lint: %s", diag)
        errors = report.errors
        if errors:
            shown = "; ".join(str(d) for d in errors[:5])
            more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
            raise GenerationError(
                f"refusing to generate: {len(errors)} lint error(s): "
                f"{shown}{more}",
                code=E_LINT,
            )

    # ------------------------------------------------------------------
    # Corpus synthesis
    # ------------------------------------------------------------------

    def _engine(self) -> SynthesisEngine:
        return SynthesisEngine(
            self.schemas,
            self.config,
            self.templates,
            ppdb=self._ppdb,
            seed=self._seed,
            apply_lemmatizer=self._apply_lemmatizer,
            pos_aware_dropout=self._pos_aware_dropout,
        )

    def generate_stream(
        self, workers: int | None = None, recorder=None
    ) -> Iterator[list[TrainingPair]]:
        """Stream the corpus as globally deduplicated per-shard batches.

        Batches arrive in the canonical corpus order, so writing them
        as they come (see :func:`repro.core.corpus_io.save_jsonl`)
        produces the same file as materializing the whole corpus first —
        without holding more than one shard's pairs at a time on the
        consumer side.  ``workers=None`` uses the pipeline's configured
        worker count; ``recorder`` is an optional
        :class:`repro.perf.PerfRecorder` fed per-stage timings.
        """
        self._lint_gate()
        effective = self._workers if workers is None else workers
        batches = self._engine().iter_batches(workers=effective, recorder=recorder)
        if not self._semantic_dedupe:
            return batches
        return self._semantic_filter(batches)

    def _semantic_filter(
        self, batches: Iterator[list[TrainingPair]]
    ) -> Iterator[list[TrainingPair]]:
        """Drop canonically-duplicate pairs across the whole stream.

        An opt-in second dedupe pass (``semantic_dedupe=True``) keyed
        on canonical SQL forms (:mod:`repro.sql.canonical`): pairs
        whose NL matches and whose SQL differs only by a
        result-invariant rewrite are synthesis redundancy, not signal.
        Keys are strictly coarser than the exact keys the engine
        already deduped on, so this only ever removes pairs — with the
        flag off (the default) the corpus is bit-identical to PR 9.
        """
        from repro.core.templates import dedupe_pairs

        schemas = {schema.name: schema for schema in self.schemas}
        seen: set = set()
        for batch in batches:
            yield dedupe_pairs(batch, seen, semantic=True, schemas=schemas)

    def generate(
        self, workers: int | None = None, recorder=None
    ) -> TrainingCorpus:
        """Run the three pipeline stages and return the corpus."""
        pairs: list[TrainingPair] = []
        for batch in self.generate_stream(workers=workers, recorder=recorder):
            pairs.extend(batch)
        return TrainingCorpus(pairs)

    def generate_checkpointed(
        self,
        output,
        fmt: str = "jsonl",
        workers: int | None = None,
        resume: bool = False,
        resilience=None,
        faults=None,
        recorder=None,
        on_batch=None,
        flush_every: int = 0,
    ):
        """Crash-safe synthesis straight to ``output`` with a manifest.

        The fault-tolerant counterpart of streaming
        :meth:`generate_stream` into :func:`repro.core.corpus_io.save_jsonl`:
        shards are committed to the file in canonical order alongside a
        ``<output-stem>.manifest.json`` progress manifest, crashed or
        hung shards are retried and eventually quarantined instead of
        killing the run, and ``resume=True`` skips already-committed
        shards, producing a file bit-identical to an uninterrupted run.
        Returns a :class:`repro.core.checkpoint.GenerationReport`.
        """
        from repro.core.checkpoint import generate_checkpointed
        from repro.core.faults import NO_FAULTS

        self._lint_gate()
        effective = self._workers if workers is None else workers
        return generate_checkpointed(
            self._engine(),
            output,
            fmt=fmt,
            workers=effective,
            resume=resume,
            resilience=resilience,
            faults=faults or NO_FAULTS,
            recorder=recorder,
            on_batch=on_batch,
            flush_every=flush_every,
        )

    # ------------------------------------------------------------------
    # Pluggable model training
    # ------------------------------------------------------------------

    def train(self, model, manual_pairs: Iterable[TrainingPair] = (), **fit_kwargs):
        """Synthesize a corpus and fit ``model`` on it.

        ``model`` may be any object with a
        ``fit(pairs: list[TrainingPair], **kwargs)`` method — this is
        the paper's pluggability contract.  ``manual_pairs`` mixes in
        existing manually curated training data (§1: "such data can
        still be used to complement our proposed data generation
        pipeline"); manual pairs are lemmatized like generated ones.
        """
        corpus = self.generate()
        manual = [
            pair.with_nl(
                lemmatize(pair.nl) if self._apply_lemmatizer else pair.nl,
                pair.augmentation,
            )
            for pair in manual_pairs
        ]
        corpus = corpus.merged_with(manual)
        model.fit(corpus.pairs, **fit_kwargs)
        return corpus
