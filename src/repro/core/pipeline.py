"""The DBPal training pipeline: generate → augment → lemmatize (§2.2).

:class:`TrainingPipeline` is the package's headline API.  Given only
database schemas (plus the reusable seed templates and lexicons), it
synthesizes a training corpus and trains any *pluggable* translation
model on it — optionally mixed with existing manually curated pairs,
exactly as the paper's DBPal (Train) configuration augments Spider's
human-annotated training set.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.augmenter import Augmenter
from repro.core.config import GenerationConfig
from repro.core.generator import generate_for_schemas
from repro.core.seed_templates import SEED_TEMPLATES
from repro.core.templates import SeedTemplate, TrainingPair
from repro.nlp.lemmatizer import lemmatize
from repro.nlp.ppdb import ParaphraseDatabase
from repro.schema.schema import Schema


@dataclass
class TrainingCorpus:
    """An ordered, deduplicated collection of training pairs."""

    pairs: list[TrainingPair] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def nl_texts(self) -> list[str]:
        return [p.nl for p in self.pairs]

    def sql_texts(self) -> list[str]:
        return [p.sql_text for p in self.pairs]

    def family_counts(self) -> dict[str, int]:
        """Training pairs per query family (for balance diagnostics)."""
        return dict(Counter(p.family.value for p in self.pairs))

    def augmentation_counts(self) -> dict[str, int]:
        """Training pairs per augmentation provenance."""
        return dict(Counter(p.augmentation for p in self.pairs))

    def merged_with(self, extra: Iterable[TrainingPair]) -> "TrainingCorpus":
        """This corpus plus ``extra`` pairs (deduplicated, order kept)."""
        seen = {p.key() for p in self.pairs}
        merged = list(self.pairs)
        for pair in extra:
            if pair.key() not in seen:
                seen.add(pair.key())
                merged.append(pair)
        return TrainingCorpus(merged)

    def subsample(self, n: int, seed: int = 0) -> "TrainingCorpus":
        """A uniform random subsample of at most ``n`` pairs."""
        if n >= len(self.pairs):
            return TrainingCorpus(list(self.pairs))
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self.pairs), size=n, replace=False)
        return TrainingCorpus([self.pairs[i] for i in sorted(idx)])

    def split(self, test_fraction: float, seed: int = 0):
        """Random (train, test) split — the §3.3 automatic test workload."""
        rng = np.random.default_rng(seed)
        indices = rng.permutation(len(self.pairs))
        cut = int(len(self.pairs) * (1.0 - test_fraction))
        train = TrainingCorpus([self.pairs[i] for i in sorted(indices[:cut])])
        test = TrainingCorpus([self.pairs[i] for i in sorted(indices[cut:])])
        return train, test


class TrainingPipeline:
    """Generate → augment → lemmatize, then train any pluggable model."""

    def __init__(
        self,
        schemas: Schema | Sequence[Schema],
        config: GenerationConfig | None = None,
        templates: Sequence[SeedTemplate] = SEED_TEMPLATES,
        ppdb: ParaphraseDatabase | None = None,
        apply_lemmatizer: bool = True,
        seed: int = 0,
        pos_aware_dropout: bool = False,
    ) -> None:
        if isinstance(schemas, Schema):
            schemas = [schemas]
        self.schemas = list(schemas)
        self.config = config or GenerationConfig()
        self.templates = tuple(templates)
        self._ppdb = ppdb or ParaphraseDatabase()
        self._apply_lemmatizer = apply_lemmatizer
        self._seed = seed
        self._pos_aware_dropout = pos_aware_dropout

    # ------------------------------------------------------------------
    # Corpus synthesis
    # ------------------------------------------------------------------

    def generate(self) -> TrainingCorpus:
        """Run the three pipeline stages and return the corpus."""
        initial = generate_for_schemas(
            self.schemas, self.config, self.templates, seed=self._seed
        )
        augmenter = Augmenter(
            self.schemas,
            self.config,
            self._ppdb,
            seed=self._seed + 1,
            pos_aware_dropout=self._pos_aware_dropout,
        )
        augmented = augmenter.augment(initial)
        if self._apply_lemmatizer:
            augmented = [
                pair.with_nl(lemmatize(pair.nl), pair.augmentation)
                for pair in augmented
            ]
            augmented = _dedupe(augmented)
        return TrainingCorpus(augmented)

    # ------------------------------------------------------------------
    # Pluggable model training
    # ------------------------------------------------------------------

    def train(self, model, manual_pairs: Iterable[TrainingPair] = (), **fit_kwargs):
        """Synthesize a corpus and fit ``model`` on it.

        ``model`` may be any object with a
        ``fit(pairs: list[TrainingPair], **kwargs)`` method — this is
        the paper's pluggability contract.  ``manual_pairs`` mixes in
        existing manually curated training data (§1: "such data can
        still be used to complement our proposed data generation
        pipeline"); manual pairs are lemmatized like generated ones.
        """
        corpus = self.generate()
        manual = [
            pair.with_nl(
                lemmatize(pair.nl) if self._apply_lemmatizer else pair.nl,
                pair.augmentation,
            )
            for pair in manual_pairs
        ]
        corpus = corpus.merged_with(manual)
        model.fit(corpus.pairs, **fit_kwargs)
        return corpus


def _dedupe(pairs: list[TrainingPair]) -> list[TrainingPair]:
    seen: set[tuple[str, str]] = set()
    unique: list[TrainingPair] = []
    for pair in pairs:
        key = pair.key()
        if key not in seen:
            seen.add(key)
            unique.append(pair)
    return unique
