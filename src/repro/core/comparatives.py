"""Domain-aware comparative substitution (paper §3.2.3).

"By using these resources, we can replace the general phrase *greater
than* in an input NL query by *older than* if the domain of the schema
attribute is set to age."  The generator already mixes domain phrases
in; this augmentation step adds the *other* direction for every pair,
so each instance exists both with the generic and with the
domain-specific comparative.
"""

from __future__ import annotations

from repro.core.templates import TrainingPair
from repro.nlp.lexicons import COMPARISON_PHRASES, DOMAIN_COMPARATIVES
from repro.schema.schema import Schema
from repro.sql.ast import ColumnRef, CompOp, Comparison


class ComparativeAugmenter:
    """Swaps generic and domain-specific comparative phrases."""

    def __init__(self, schemas) -> None:
        if isinstance(schemas, Schema):
            schemas = [schemas]
        self._schemas = {s.name: s for s in schemas}

    def augment(self, pair: TrainingPair) -> list[TrainingPair]:
        """Comparative-swapped duplicates (never includes ``pair``)."""
        schema = self._schemas.get(pair.schema_name)
        if schema is None:
            return []
        duplicates: list[TrainingPair] = []
        seen = {pair.nl}
        for op, domain in self._comparison_domains(pair, schema):
            domain_map = DOMAIN_COMPARATIVES.get(domain, {})
            specific = domain_map.get(op)
            if specific is None:
                continue
            generics = COMPARISON_PHRASES.get(op, ())
            # generic -> specific
            for generic in generics:
                if generic in pair.nl:
                    new_nl = pair.nl.replace(generic, specific, 1)
                    if new_nl not in seen:
                        seen.add(new_nl)
                        duplicates.append(
                            pair.with_nl(new_nl, augmentation="comparative")
                        )
                    break
            # specific -> generic (first generic phrase)
            if specific in pair.nl and generics:
                new_nl = pair.nl.replace(specific, generics[0], 1)
                if new_nl not in seen:
                    seen.add(new_nl)
                    duplicates.append(pair.with_nl(new_nl, augmentation="comparative"))
        return duplicates

    def _comparison_domains(self, pair: TrainingPair, schema: Schema):
        """(op, domain) for each GT/LT comparison on a domain column."""
        found = []
        for pred in pair.sql.walk_predicates():
            if not isinstance(pred, Comparison):
                continue
            if pred.op not in (CompOp.GT, CompOp.LT, CompOp.GE, CompOp.LE):
                continue
            if not isinstance(pred.left, ColumnRef):
                continue
            column = self._resolve_column(pred.left, pair, schema)
            if column is not None and column.domain:
                found.append((pred.op, column.domain))
        return found

    @staticmethod
    def _resolve_column(ref: ColumnRef, pair: TrainingPair, schema: Schema):
        if ref.table is not None and ref.table in schema:
            table = schema.table(ref.table)
            return table.column(ref.column) if ref.column in table else None
        for table_name in pair.sql.from_tables:
            if table_name in schema and ref.column in schema.table(table_name):
                return schema.column(table_name, ref.column)
        tables = schema.tables_with_column(ref.column)
        if tables:
            return tables[0].column(ref.column)
        return None
