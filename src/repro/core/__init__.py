"""DBPal core: the training-data synthesis pipeline (the paper's contribution)."""

from repro.core.augmenter import Augmenter
from repro.core.comparatives import ComparativeAugmenter
from repro.core.config import GenerationConfig
from repro.core.corpus_io import load_jsonl, load_tsv, save_jsonl, save_tsv
from repro.core.dropout import WordDropout
from repro.core.generator import Generator, generate_for_schemas
from repro.core.parallel import EngineState, SynthesisEngine, synthesize_shard
from repro.core.paraphraser import Paraphraser
from repro.core.pipeline import TrainingCorpus, TrainingPipeline
from repro.core.seed_templates import (
    GROUPBY_VARIANTS,
    KIND_REGISTRY,
    SEED_TEMPLATES,
    build_seed_templates,
    builder_for,
)
from repro.core.templates import (
    Family,
    FilterSpec,
    ParaphraseKind,
    SeedTemplate,
    SlotFill,
    TrainingPair,
    dedupe_pairs,
    pluralize,
    render,
)
from repro.core.tuning import (
    SearchResult,
    TrialResult,
    grid_search,
    random_search,
    run_trial,
)

__all__ = [
    "Augmenter",
    "ComparativeAugmenter",
    "EngineState",
    "Family",
    "FilterSpec",
    "GROUPBY_VARIANTS",
    "GenerationConfig",
    "Generator",
    "KIND_REGISTRY",
    "ParaphraseKind",
    "Paraphraser",
    "SEED_TEMPLATES",
    "SearchResult",
    "SeedTemplate",
    "SlotFill",
    "SynthesisEngine",
    "TrainingCorpus",
    "TrainingPair",
    "TrainingPipeline",
    "TrialResult",
    "WordDropout",
    "build_seed_templates",
    "builder_for",
    "dedupe_pairs",
    "generate_for_schemas",
    "synthesize_shard",
    "grid_search",
    "load_jsonl",
    "load_tsv",
    "save_jsonl",
    "save_tsv",
    "pluralize",
    "random_search",
    "render",
    "run_trial",
]
