"""DBPal core: the training-data synthesis pipeline (the paper's contribution)."""

from repro.core.augmenter import Augmenter
from repro.core.checkpoint import (
    CheckpointedWriter,
    CorpusManifest,
    GenerationReport,
    generate_checkpointed,
    manifest_path_for,
)
from repro.core.comparatives import ComparativeAugmenter
from repro.core.config import GenerationConfig, ResilienceConfig
from repro.core.corpus_io import load_jsonl, load_tsv, save_jsonl, save_tsv
from repro.core.dropout import WordDropout
from repro.core.faults import NO_FAULTS, FaultPlan, FaultSpec
from repro.core.generator import Generator, generate_for_schemas
from repro.core.parallel import (
    EngineState,
    ShardFailure,
    ShardOutcome,
    SynthesisEngine,
    synthesize_shard,
)
from repro.core.paraphraser import Paraphraser
from repro.core.pipeline import TrainingCorpus, TrainingPipeline
from repro.core.seed_templates import (
    GROUPBY_VARIANTS,
    KIND_REGISTRY,
    SEED_TEMPLATES,
    build_seed_templates,
    builder_for,
)
from repro.core.templates import (
    Family,
    FilterSpec,
    ParaphraseKind,
    SeedTemplate,
    SlotFill,
    TrainingPair,
    dedupe_pairs,
    pluralize,
    render,
)
from repro.core.tuning import (
    SearchResult,
    TrialResult,
    grid_search,
    random_search,
    run_trial,
)

__all__ = [
    "Augmenter",
    "CheckpointedWriter",
    "ComparativeAugmenter",
    "CorpusManifest",
    "EngineState",
    "Family",
    "FaultPlan",
    "FaultSpec",
    "NO_FAULTS",
    "FilterSpec",
    "GROUPBY_VARIANTS",
    "GenerationConfig",
    "GenerationReport",
    "Generator",
    "KIND_REGISTRY",
    "ParaphraseKind",
    "Paraphraser",
    "ResilienceConfig",
    "SEED_TEMPLATES",
    "SearchResult",
    "SeedTemplate",
    "ShardFailure",
    "ShardOutcome",
    "SlotFill",
    "SynthesisEngine",
    "TrainingCorpus",
    "TrainingPair",
    "TrainingPipeline",
    "TrialResult",
    "WordDropout",
    "build_seed_templates",
    "builder_for",
    "dedupe_pairs",
    "generate_checkpointed",
    "generate_for_schemas",
    "manifest_path_for",
    "synthesize_shard",
    "grid_search",
    "load_jsonl",
    "load_tsv",
    "save_jsonl",
    "save_tsv",
    "pluralize",
    "random_search",
    "render",
    "run_trial",
]
