"""Template machinery: seed templates, slot filling, training pairs.

DBPal's generator instantiates *NL-SQL template pairs* (paper §3.1).
Each :class:`SeedTemplate` couples one NL surface pattern (a string
with named ``{slot}`` holes) to a *SQL kind* — a structural query shape
realized by a builder function in :mod:`repro.core.seed_templates`.
A builder picks schema elements (tables, attributes, filters) and
returns a :class:`SlotFill`: the SQL AST plus the NL slot values that
keep both sides consistent.

Constants never appear in generated pairs; filters use typed
placeholders (``@AGE``, ``@DOCTOR.NAME``), making the trained model
independent of database contents (§3.1), and join queries use the
``@JOIN`` FROM placeholder (§5.1).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Iterable

import numpy as np

from repro.errors import TemplateError
from repro.schema.column import Column
from repro.schema.schema import Schema
from repro.schema.table import Table
from repro.sql.ast import ColumnRef, CompOp, Comparison, Placeholder, Query
from repro.sql.printer import to_sql
from repro.nlp.lexicons import comparative_phrases


class Family(enum.Enum):
    """Structural query families, the unit of training-set balancing."""

    SELECT = "select"
    FILTER = "filter"
    AGGREGATE = "aggregate"
    GROUPBY = "groupby"
    ORDER = "order"
    JOIN = "join"
    NESTED = "nested"


class ParaphraseKind(enum.Enum):
    """Which §3.1 manual-paraphrase class an NL pattern represents."""

    NAIVE = "naive"
    SYNTACTIC = "syntactic"
    LEXICAL = "lexical"
    MORPHOLOGICAL = "morphological"


@dataclass(frozen=True)
class SeedTemplate:
    """One NL-SQL template pair."""

    tid: str
    family: Family
    sql_kind: str
    nl_pattern: str
    paraphrase_kind: ParaphraseKind = ParaphraseKind.NAIVE

    def __post_init__(self) -> None:
        if not re.search(r"\{\w+\}", self.nl_pattern):
            raise TemplateError(
                f"template {self.tid!r} has no slots: {self.nl_pattern!r}"
            )


@dataclass(frozen=True)
class TrainingPair:
    """One generated (NL, SQL) example.

    ``sql_text`` and ``key()`` are memoized: deduplication probes every
    pair's key several times along the pipeline (augment, lemmatize,
    merge), and printing the SQL AST on each probe dominated the
    synthesis profile.  The cache lives in the instance ``__dict__``
    (fields stay frozen) and survives pickling, so pairs returned by
    parallel synthesis workers arrive with their SQL already printed.
    """

    nl: str
    sql: Query
    template_id: str
    family: Family
    schema_name: str
    augmentation: str = "none"

    @cached_property
    def sql_text(self) -> str:
        return to_sql(self.sql)

    def with_nl(self, nl: str, augmentation: str) -> "TrainingPair":
        """A copy with a linguistically varied NL side (same SQL)."""
        clone = replace(self, nl=nl, augmentation=augmentation)
        cached_sql = self.__dict__.get("sql_text")
        if cached_sql is not None:
            # Same AST, so the printed SQL carries over to the copy.
            clone.__dict__["sql_text"] = cached_sql
        return clone

    def key(self) -> tuple[str, str]:
        """Deduplication key (memoized)."""
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = (self.nl, self.sql_text)
            self.__dict__["_key"] = cached
        return cached

    def semantic_key(self, schema=None) -> tuple[str, str]:
        """Canonical-form deduplication key (memoized).

        Strictly coarser than :meth:`key`: pairs with one exact key
        share a semantic key, and additionally pairs whose SQL differs
        only by a result-invariant rewrite
        (:func:`repro.sql.canonical.canonicalize`) collapse together.
        Memoized on first use — callers must be consistent about the
        ``schema`` they pass for a given pair.
        """
        cached = self.__dict__.get("_semantic_key")
        if cached is None:
            from repro.sql.canonical import canonical_text

            cached = (self.nl, canonical_text(self.sql, schema))
            self.__dict__["_semantic_key"] = cached
        return cached

    def __getstate__(self) -> dict:
        # Ship the printed SQL across process boundaries (the parent
        # merge needs it for every key probe) but not the key tuples,
        # which just duplicate strings and are cheap to rebuild.
        state = dict(self.__dict__)
        state.pop("_key", None)
        state.pop("_semantic_key", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


def dedupe_pairs(
    pairs: Iterable[TrainingPair],
    seen: set[tuple[str, str]] | None = None,
    *,
    semantic: bool = False,
    schemas: dict | None = None,
) -> list[TrainingPair]:
    """Order-preserving deduplication by :meth:`TrainingPair.key`.

    The single dedupe implementation shared by the generator output,
    both augmenter paths, the pipeline's lemmatize stage, and the
    parallel engine's shard merge.  Passing ``seen`` threads one key set
    through successive calls (global dedupe across streamed batches);
    the set is updated in place.

    ``semantic=True`` keys on :meth:`TrainingPair.semantic_key`
    instead — pairs whose SQL canonicalizes identically (optionally
    schema-aware via ``schemas``, a ``name -> Schema`` mapping) count
    as duplicates even when their printed SQL differs.  The default is
    exact-key dedupe, bit-identical to the pre-PR 10 behavior; a
    ``seen`` set must not be shared between modes.
    """
    if seen is None:
        seen = set()
    unique: list[TrainingPair] = []
    for pair in pairs:
        if semantic:
            schema = schemas.get(pair.schema_name) if schemas else None
            key = pair.semantic_key(schema)
        else:
            key = pair.key()
        if key not in seen:
            seen.add(key)
            unique.append(pair)
    return unique


@dataclass
class SlotFill:
    """Result of one builder invocation: SQL plus NL slot values."""

    query: Query
    slots: dict[str, str] = field(default_factory=dict)


def render(pattern: str, slots: dict[str, str]) -> str:
    """Fill an NL pattern and tidy up whitespace."""
    try:
        text = pattern.format(**slots)
    except KeyError as exc:
        raise TemplateError(f"pattern {pattern!r} missing slot {exc}") from exc
    return re.sub(r"\s+", " ", text).strip()


# ----------------------------------------------------------------------
# NL helpers shared by builders
# ----------------------------------------------------------------------

_ES_ENDINGS = ("ss", "x", "z", "ch", "sh")


def pluralize(phrase: str) -> str:
    """Naive English pluralization of the head noun (last word).

    Words already ending in a bare "s" (e.g. "patients") are treated as
    plural and left unchanged.
    """
    words = phrase.split()
    head = words[-1]
    if head.endswith("y") and len(head) > 1 and head[-2] not in "aeiou":
        head = head[:-1] + "ies"
    elif head.endswith(_ES_ENDINGS):
        head = head + "es"
    elif not head.endswith("s"):
        head = head + "s"
    words[-1] = head
    return " ".join(words)


def _choice(rng: np.random.Generator, options) -> str:
    return options[int(rng.integers(len(options)))]


def pick_table(schema: Schema, rng: np.random.Generator) -> Table:
    """Uniformly pick a table."""
    return schema.tables[int(rng.integers(len(schema.tables)))]


def pick_column(
    table: Table,
    rng: np.random.Generator,
    numeric: bool | None = None,
    exclude: tuple[str, ...] = (),
) -> Column | None:
    """Pick a column, optionally constrained to (non-)numeric types.

    Primary-key id columns are avoided for filters and aggregates when
    alternatives exist (users rarely ask about surrogate keys).
    """
    candidates = [c for c in table.columns if c.name not in exclude]
    if numeric is True:
        candidates = [c for c in candidates if c.is_numeric]
    elif numeric is False:
        candidates = [c for c in candidates if not c.is_numeric]
    interesting = [c for c in candidates if not c.primary_key]
    if interesting:
        candidates = interesting
    if not candidates:
        return None
    return candidates[int(rng.integers(len(candidates)))]


def nl_phrase(element, rng: np.random.Generator) -> str:
    """Pick one NL phrase (annotation or a synonym) for a schema element."""
    return _choice(rng, element.nl_phrases)


@dataclass
class FilterSpec:
    """A single filter predicate with consistent SQL and NL sides."""

    table: Table
    column: Column
    op: CompOp
    qualified: bool = False  # join queries qualify refs and placeholders

    @property
    def placeholder(self) -> Placeholder:
        """SQL-side placeholder (table-qualified for join templates)."""
        if self.qualified:
            return Placeholder(f"{self.table.name}.{self.column.name}".upper())
        return Placeholder(self.column.name.upper())

    @property
    def nl_placeholder(self) -> Placeholder:
        """NL-side placeholder — always unqualified.

        The runtime parameter handler replaces a constant with ``@COL``
        without knowing whether the model will need a table-qualified
        SQL placeholder, so training NL must use the unqualified form
        too; the model learns the ``@COL -> @TABLE.COL`` mapping from
        context.
        """
        return Placeholder(self.column.name.upper())

    def sql(self) -> Comparison:
        ref = ColumnRef(
            self.column.name, table=self.table.name if self.qualified else None
        )
        return Comparison(ref, self.op, self.placeholder)

    def nl(self, rng: np.random.Generator, name_prefix: str = "") -> str:
        """Verbalize, e.g. "age greater than @AGE" or "state is @STATE"."""
        attribute = nl_phrase(self.column, rng)
        phrase = _choice(rng, comparative_phrases(self.op, self.column.domain))
        return f"{name_prefix}{attribute} {phrase} {self.nl_placeholder}"


def pick_filter(
    table: Table,
    rng: np.random.Generator,
    qualified: bool = False,
    exclude: tuple[str, ...] = (),
    numeric: bool | None = None,
) -> FilterSpec | None:
    """Pick a filter column and a type-appropriate operator."""
    column = pick_column(table, rng, numeric=numeric, exclude=exclude)
    if column is None:
        return None
    if column.is_numeric:
        ops = (CompOp.EQ, CompOp.GT, CompOp.LT, CompOp.GE, CompOp.LE)
        op = ops[int(rng.integers(len(ops)))]
    else:
        op = CompOp.EQ if rng.random() < 0.9 else CompOp.NE
    return FilterSpec(table, column, op, qualified=qualified)
