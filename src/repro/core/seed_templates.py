"""The seed template library (~100 NL-SQL template pairs, paper §3.1).

Each *SQL kind* couples a builder function — which picks schema
elements and constructs the SQL AST — with several NL surface patterns.
Per the paper, "for each initial NL template, we additionally provide
some manually curated paraphrased NL templates ... covering categories
such as syntactical, lexical, and morphological paraphrasing"; the
``ParaphraseKind`` tag records which category each pattern represents.

Builders are schema-independent: they work on any
:class:`~repro.schema.schema.Schema` ("all templates are independent of
the target database", §2.2.1) and return ``None`` when a schema cannot
support the kind (e.g. join templates on a single-table schema).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.config import GenerationConfig
from repro.core.templates import (
    Family,
    ParaphraseKind,
    SeedTemplate,
    SlotFill,
    nl_phrase,
    pick_column,
    pick_filter,
    pick_table,
    pluralize,
)
from repro.nlp.lexicons import (
    AGGREGATE_PHRASES,
    FROM_PHRASES,
    GROUP_PHRASES,
    SELECT_PHRASES,
    WHERE_PHRASES,
    superlative_phrases,
)
from repro.schema.schema import Schema
from repro.sql.ast import (
    JOIN_PLACEHOLDER,
    AggFunc,
    Aggregate,
    And,
    Between,
    ColumnRef,
    CompOp,
    Comparison,
    Exists,
    InPredicate,
    Or,
    OrderItem,
    Placeholder,
    Query,
    Star,
    Subquery,
)

Builder = Callable[[Schema, np.random.Generator, GenerationConfig], SlotFill | None]

_NAIVE = ParaphraseKind.NAIVE
_SYN = ParaphraseKind.SYNTACTIC
_LEX = ParaphraseKind.LEXICAL
_MORPH = ParaphraseKind.MORPHOLOGICAL


def _choice(rng: np.random.Generator, options):
    return options[int(rng.integers(len(options)))]


def _phrase_slots(rng: np.random.Generator) -> dict[str, str]:
    """Speech-variation slots shared by every pattern (§3.1)."""
    return {
        "select_phrase": _choice(rng, SELECT_PHRASES),
        "where_phrase": _choice(rng, WHERE_PHRASES),
        "from_phrase": _choice(rng, FROM_PHRASES),
        "group_phrase": _choice(rng, GROUP_PHRASES),
    }


def _table_slots(table, rng: np.random.Generator) -> dict[str, str]:
    singular = nl_phrase(table, rng)
    return {"table": pluralize(singular), "table_sg": singular}


def _agg(rng: np.random.Generator, numeric_required: bool = True):
    funcs = (AggFunc.AVG, AggFunc.SUM, AggFunc.MIN, AggFunc.MAX)
    func = _choice(rng, funcs)
    phrase = _choice(rng, AGGREGATE_PHRASES[func])
    return func, phrase


# ----------------------------------------------------------------------
# SELECT family
# ----------------------------------------------------------------------


def _build_select_all(schema, rng, config):
    table = pick_table(schema, rng)
    query = Query(select=(Star(),), from_tables=(table.name,))
    return SlotFill(query, {**_phrase_slots(rng), **_table_slots(table, rng)})


def _build_select_col(schema, rng, config):
    table = pick_table(schema, rng)
    column = pick_column(table, rng)
    if column is None:
        return None
    query = Query(select=(ColumnRef(column.name),), from_tables=(table.name,))
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "attribute": nl_phrase(column, rng),
    }
    return SlotFill(query, slots)


def _build_select_cols2(schema, rng, config):
    table = pick_table(schema, rng)
    if len(table.columns) < 2:
        return None
    first = pick_column(table, rng)
    second = pick_column(table, rng, exclude=(first.name,))
    if first is None or second is None:
        return None
    query = Query(
        select=(ColumnRef(first.name), ColumnRef(second.name)),
        from_tables=(table.name,),
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "attribute": nl_phrase(first, rng),
        "attribute2": nl_phrase(second, rng),
    }
    return SlotFill(query, slots)


def _build_select_distinct(schema, rng, config):
    table = pick_table(schema, rng)
    column = pick_column(table, rng, numeric=False)
    if column is None:
        return None
    query = Query(
        select=(ColumnRef(column.name),), from_tables=(table.name,), distinct=True
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "attribute": nl_phrase(column, rng),
    }
    return SlotFill(query, slots)


# ----------------------------------------------------------------------
# FILTER family
# ----------------------------------------------------------------------


def _build_filter_select_all(schema, rng, config):
    table = pick_table(schema, rng)
    spec = pick_filter(table, rng)
    if spec is None:
        return None
    query = Query(select=(Star(),), from_tables=(table.name,), where=spec.sql())
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "filter_nl": spec.nl(rng),
    }
    return SlotFill(query, slots)


def _build_filter_select_col(schema, rng, config):
    table = pick_table(schema, rng)
    column = pick_column(table, rng)
    if column is None:
        return None
    spec = pick_filter(table, rng, exclude=(column.name,))
    if spec is None:
        return None
    query = Query(
        select=(ColumnRef(column.name),), from_tables=(table.name,), where=spec.sql()
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "attribute": nl_phrase(column, rng),
        "filter_nl": spec.nl(rng),
    }
    return SlotFill(query, slots)


def _build_filter_two(schema, rng, config):
    table = pick_table(schema, rng)
    column = pick_column(table, rng)
    if column is None:
        return None
    first = pick_filter(table, rng, exclude=(column.name,))
    if first is None:
        return None
    second = pick_filter(table, rng, exclude=(column.name, first.column.name))
    if second is None:
        return None
    query = Query(
        select=(ColumnRef(column.name),),
        from_tables=(table.name,),
        where=And((first.sql(), second.sql())),
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "attribute": nl_phrase(column, rng),
        "filter_nl": first.nl(rng),
        "filter_nl2": second.nl(rng),
    }
    return SlotFill(query, slots)


def _build_filter_or(schema, rng, config):
    table = pick_table(schema, rng)
    column = pick_column(table, rng, numeric=False)
    if column is None:
        return None
    # OR of two values on the same attribute: "state is @X or @Y" is the
    # natural phrasing, but two identical placeholders would be ambiguous
    # at runtime, so we OR across two different attributes instead.
    first = pick_filter(table, rng)
    if first is None:
        return None
    second = pick_filter(table, rng, exclude=(first.column.name,))
    if second is None:
        return None
    query = Query(
        select=(Star(),),
        from_tables=(table.name,),
        where=Or((first.sql(), second.sql())),
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "filter_nl": first.nl(rng),
        "filter_nl2": second.nl(rng),
    }
    return SlotFill(query, slots)


def _build_filter_between(schema, rng, config):
    table = pick_table(schema, rng)
    column = pick_column(table, rng, numeric=True)
    if column is None:
        return None
    low = Placeholder(column.name.upper() + ".LOW")
    high = Placeholder(column.name.upper() + ".HIGH")
    query = Query(
        select=(Star(),),
        from_tables=(table.name,),
        where=Between(ColumnRef(column.name), low, high),
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "attribute": nl_phrase(column, rng),
        "low": str(low),
        "high": str(high),
    }
    return SlotFill(query, slots)


# ----------------------------------------------------------------------
# AGGREGATE family
# ----------------------------------------------------------------------


def _build_agg(schema, rng, config):
    table = pick_table(schema, rng)
    column = pick_column(table, rng, numeric=True)
    if column is None:
        return None
    func, phrase = _agg(rng)
    query = Query(
        select=(Aggregate(func, ColumnRef(column.name)),), from_tables=(table.name,)
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "attribute": nl_phrase(column, rng),
        "agg_phrase": phrase,
    }
    return SlotFill(query, slots)


def _build_agg_filter(schema, rng, config):
    table = pick_table(schema, rng)
    column = pick_column(table, rng, numeric=True)
    if column is None:
        return None
    spec = pick_filter(table, rng, exclude=(column.name,))
    if spec is None:
        return None
    func, phrase = _agg(rng)
    query = Query(
        select=(Aggregate(func, ColumnRef(column.name)),),
        from_tables=(table.name,),
        where=spec.sql(),
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "attribute": nl_phrase(column, rng),
        "agg_phrase": phrase,
        "filter_nl": spec.nl(rng),
    }
    return SlotFill(query, slots)


def _build_count_all(schema, rng, config):
    table = pick_table(schema, rng)
    query = Query(select=(Aggregate(AggFunc.COUNT, Star()),), from_tables=(table.name,))
    return SlotFill(query, {**_phrase_slots(rng), **_table_slots(table, rng)})


def _build_count_filter(schema, rng, config):
    table = pick_table(schema, rng)
    spec = pick_filter(table, rng)
    if spec is None:
        return None
    query = Query(
        select=(Aggregate(AggFunc.COUNT, Star()),),
        from_tables=(table.name,),
        where=spec.sql(),
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "filter_nl": spec.nl(rng),
    }
    return SlotFill(query, slots)


# ----------------------------------------------------------------------
# GROUPBY family
# ----------------------------------------------------------------------


def _pick_group_column(table, rng, exclude=()):
    """Group keys must be categorical: prefer text columns."""
    return pick_column(table, rng, numeric=False, exclude=exclude)


def _build_groupby_agg(schema, rng, config):
    table = pick_table(schema, rng)
    column = pick_column(table, rng, numeric=True)
    if column is None:
        return None
    group = _pick_group_column(table, rng, exclude=(column.name,))
    if group is None:
        return None
    func, phrase = _agg(rng)
    query = Query(
        select=(ColumnRef(group.name), Aggregate(func, ColumnRef(column.name))),
        from_tables=(table.name,),
        group_by=(ColumnRef(group.name),),
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "attribute": nl_phrase(column, rng),
        "agg_phrase": phrase,
        "group_attribute": nl_phrase(group, rng),
    }
    return SlotFill(query, slots)


def _build_groupby_count(schema, rng, config):
    table = pick_table(schema, rng)
    group = _pick_group_column(table, rng)
    if group is None:
        return None
    query = Query(
        select=(ColumnRef(group.name), Aggregate(AggFunc.COUNT, Star())),
        from_tables=(table.name,),
        group_by=(ColumnRef(group.name),),
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "group_attribute": nl_phrase(group, rng),
    }
    return SlotFill(query, slots)


def _build_groupby_having(schema, rng, config):
    table = pick_table(schema, rng)
    group = _pick_group_column(table, rng)
    if group is None:
        return None
    op, having_phrase = _choice(
        rng,
        (
            (CompOp.GT, "more than @NUM"),
            (CompOp.GE, "at least @NUM"),
            (CompOp.LT, "fewer than @NUM"),
        ),
    )
    query = Query(
        select=(ColumnRef(group.name),),
        from_tables=(table.name,),
        group_by=(ColumnRef(group.name),),
        having=Comparison(Aggregate(AggFunc.COUNT, Star()), op, Placeholder("NUM")),
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "group_attribute": nl_phrase(group, rng),
        "having_nl": having_phrase,
    }
    return SlotFill(query, slots)


# ----------------------------------------------------------------------
# ORDER family
# ----------------------------------------------------------------------


def _build_order_sort(schema, rng, config):
    table = pick_table(schema, rng)
    order_col = pick_column(table, rng, numeric=True)
    if order_col is None:
        return None
    desc = bool(rng.random() < 0.5)
    query = Query(
        select=(Star(),),
        from_tables=(table.name,),
        order_by=(OrderItem(ColumnRef(order_col.name), desc=desc),),
    )
    direction = "descending" if desc else "ascending"
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "order_attribute": nl_phrase(order_col, rng),
        "direction": direction,
    }
    return SlotFill(query, slots)


def _build_order_col_sort(schema, rng, config):
    table = pick_table(schema, rng)
    column = pick_column(table, rng)
    if column is None:
        return None
    order_col = pick_column(table, rng, numeric=True, exclude=(column.name,))
    if order_col is None:
        return None
    desc = bool(rng.random() < 0.5)
    query = Query(
        select=(ColumnRef(column.name),),
        from_tables=(table.name,),
        order_by=(OrderItem(ColumnRef(order_col.name), desc=desc),),
    )
    direction = "descending" if desc else "ascending"
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "attribute": nl_phrase(column, rng),
        "order_attribute": nl_phrase(order_col, rng),
        "direction": direction,
    }
    return SlotFill(query, slots)


# ----------------------------------------------------------------------
# NESTED family
# ----------------------------------------------------------------------


def _build_superlative_nested(schema, rng, config):
    table = pick_table(schema, rng)
    column = pick_column(table, rng)
    if column is None:
        return None
    target = pick_column(table, rng, numeric=True, exclude=(column.name,))
    if target is None:
        return None
    use_max = bool(rng.random() < 0.5)
    func = AggFunc.MAX if use_max else AggFunc.MIN
    max_phrase, min_phrase = superlative_phrases(target.domain)
    superlative = max_phrase if use_max else min_phrase
    inner = Query(
        select=(Aggregate(func, ColumnRef(target.name)),), from_tables=(table.name,)
    )
    query = Query(
        select=(ColumnRef(column.name),),
        from_tables=(table.name,),
        where=Comparison(ColumnRef(target.name), CompOp.EQ, Subquery(inner)),
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "attribute": nl_phrase(column, rng),
        "order_attribute": nl_phrase(target, rng),
        "superlative": superlative,
    }
    return SlotFill(query, slots)


def _build_nested_filter(schema, rng, config):
    table = pick_table(schema, rng)
    column = pick_column(table, rng)
    if column is None:
        return None
    target = pick_column(table, rng, numeric=True, exclude=(column.name,))
    if target is None:
        return None
    spec = pick_filter(
        table, rng, exclude=(column.name, target.name), numeric=False
    )
    if spec is None:
        return None
    use_max = bool(rng.random() < 0.5)
    func = AggFunc.MAX if use_max else AggFunc.MIN
    max_phrase, min_phrase = superlative_phrases(target.domain)
    superlative = max_phrase if use_max else min_phrase
    inner = Query(
        select=(Aggregate(func, ColumnRef(target.name)),),
        from_tables=(table.name,),
        where=spec.sql(),
    )
    query = Query(
        select=(ColumnRef(column.name),),
        from_tables=(table.name,),
        where=Comparison(ColumnRef(target.name), CompOp.EQ, Subquery(inner)),
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "attribute": nl_phrase(column, rng),
        "order_attribute": nl_phrase(target, rng),
        "superlative": superlative,
        "filter_nl": spec.nl(rng),
    }
    return SlotFill(query, slots)


def _build_nested_avg_cmp(schema, rng, config):
    table = pick_table(schema, rng)
    target = pick_column(table, rng, numeric=True)
    if target is None:
        return None
    column = pick_column(table, rng, exclude=(target.name,))
    if column is None:
        return None
    above = bool(rng.random() < 0.5)
    op = CompOp.GT if above else CompOp.LT
    inner = Query(
        select=(Aggregate(AggFunc.AVG, ColumnRef(target.name)),),
        from_tables=(table.name,),
    )
    query = Query(
        select=(ColumnRef(column.name),),
        from_tables=(table.name,),
        where=Comparison(ColumnRef(target.name), op, Subquery(inner)),
    )
    slots = {
        **_phrase_slots(rng),
        **_table_slots(table, rng),
        "attribute": nl_phrase(column, rng),
        "order_attribute": nl_phrase(target, rng),
        "above_below": "above" if above else "below",
    }
    return SlotFill(query, slots)


def _fk_pair(schema, rng):
    """Pick a foreign key, randomly oriented (child, parent) or flipped."""
    if not schema.foreign_keys:
        return None
    fk = _choice(rng, schema.foreign_keys)
    return fk


def _build_in_subquery(schema, rng, config):
    fk = _fk_pair(schema, rng)
    if fk is None:
        return None
    child = schema.table(fk.table)
    parent = schema.table(fk.ref_table)
    column = pick_column(child, rng, exclude=(fk.column,))
    if column is None:
        return None
    spec = pick_filter(parent, rng, exclude=(fk.ref_column,))
    if spec is None:
        return None
    inner = Query(
        select=(ColumnRef(fk.ref_column),),
        from_tables=(parent.name,),
        where=spec.sql(),
    )
    query = Query(
        select=(ColumnRef(column.name),),
        from_tables=(child.name,),
        where=InPredicate(ColumnRef(fk.column), subquery=Subquery(inner)),
    )
    parent_sg = nl_phrase(parent, rng)
    slots = {
        **_phrase_slots(rng),
        **_table_slots(child, rng),
        "attribute": nl_phrase(column, rng),
        "table2": pluralize(parent_sg),
        "table2_sg": parent_sg,
        "filter_nl": spec.nl(rng),
    }
    return SlotFill(query, slots)


def _build_exists_subquery(schema, rng, config):
    if len(schema.tables) < 2:
        return None
    outer = pick_table(schema, rng)
    others = [t for t in schema.tables if t.name != outer.name]
    inner_table = _choice(rng, others)
    spec = pick_filter(inner_table, rng)
    if spec is None:
        return None
    inner = Query(select=(Star(),), from_tables=(inner_table.name,), where=spec.sql())
    query = Query(
        select=(Star(),),
        from_tables=(outer.name,),
        where=Exists(Subquery(inner)),
    )
    inner_sg = nl_phrase(inner_table, rng)
    slots = {
        **_phrase_slots(rng),
        **_table_slots(outer, rng),
        "table2": pluralize(inner_sg),
        "table2_sg": inner_sg,
        "filter_nl": spec.nl(rng),
    }
    return SlotFill(query, slots)


# ----------------------------------------------------------------------
# JOIN family (FROM is the @JOIN placeholder, §5.1)
# ----------------------------------------------------------------------


def _join_endpoints(schema, rng, max_hops: int):
    """Pick two FK-connected tables up to ``max_hops`` edges apart."""
    if not schema.foreign_keys:
        return None
    fk = _choice(rng, schema.foreign_keys)
    near, far = fk.table, fk.ref_table
    if rng.random() < 0.5:
        near, far = far, near
    if max_hops >= 2 and rng.random() < 0.35:
        # Try to extend one more hop from `far`.
        extensions = [
            other_fk
            for other_fk in schema.foreign_keys
            if far in (other_fk.table, other_fk.ref_table)
            and near not in (other_fk.table, other_fk.ref_table)
        ]
        if extensions:
            ext = _choice(rng, extensions)
            far = ext.ref_table if ext.table == far else ext.table
    if near == far:
        return None
    return schema.table(near), schema.table(far)


def _build_join_select(schema, rng, config):
    endpoints = _join_endpoints(schema, rng, config.size_tables - 1)
    if endpoints is None:
        return None
    main, other = endpoints
    column = pick_column(main, rng)
    if column is None:
        return None
    spec = pick_filter(other, rng, qualified=True)
    if spec is None:
        return None
    query = Query(
        select=(ColumnRef(column.name, table=main.name),),
        from_tables=(JOIN_PLACEHOLDER,),
        where=spec.sql(),
    )
    other_sg = nl_phrase(other, rng)
    slots = {
        **_phrase_slots(rng),
        **_table_slots(main, rng),
        "attribute": nl_phrase(column, rng),
        "table2": pluralize(other_sg),
        "table2_sg": other_sg,
        "filter_nl": spec.nl(rng, name_prefix=other_sg + " "),
    }
    return SlotFill(query, slots)


def _build_join_agg(schema, rng, config):
    endpoints = _join_endpoints(schema, rng, config.size_tables - 1)
    if endpoints is None:
        return None
    main, other = endpoints
    column = pick_column(main, rng, numeric=True)
    if column is None:
        return None
    spec = pick_filter(other, rng, qualified=True)
    if spec is None:
        return None
    func, phrase = _agg(rng)
    query = Query(
        select=(Aggregate(func, ColumnRef(column.name, table=main.name)),),
        from_tables=(JOIN_PLACEHOLDER,),
        where=spec.sql(),
    )
    other_sg = nl_phrase(other, rng)
    slots = {
        **_phrase_slots(rng),
        **_table_slots(main, rng),
        "attribute": nl_phrase(column, rng),
        "agg_phrase": phrase,
        "table2": pluralize(other_sg),
        "table2_sg": other_sg,
        "filter_nl": spec.nl(rng, name_prefix=other_sg + " "),
    }
    return SlotFill(query, slots)


def _build_join_count(schema, rng, config):
    endpoints = _join_endpoints(schema, rng, config.size_tables - 1)
    if endpoints is None:
        return None
    main, other = endpoints
    spec = pick_filter(other, rng, qualified=True)
    if spec is None:
        return None
    query = Query(
        select=(Aggregate(AggFunc.COUNT, Star()),),
        from_tables=(JOIN_PLACEHOLDER,),
        where=spec.sql(),
    )
    other_sg = nl_phrase(other, rng)
    slots = {
        **_phrase_slots(rng),
        **_table_slots(main, rng),
        "table2": pluralize(other_sg),
        "table2_sg": other_sg,
        "filter_nl": spec.nl(rng, name_prefix=other_sg + " "),
    }
    return SlotFill(query, slots)


def _build_join_groupby(schema, rng, config):
    endpoints = _join_endpoints(schema, rng, config.size_tables - 1)
    if endpoints is None:
        return None
    main, other = endpoints
    column = pick_column(main, rng, numeric=True)
    if column is None:
        return None
    group = pick_column(other, rng, numeric=False)
    if group is None:
        return None
    func, phrase = _agg(rng)
    query = Query(
        select=(
            ColumnRef(group.name, table=other.name),
            Aggregate(func, ColumnRef(column.name, table=main.name)),
        ),
        from_tables=(JOIN_PLACEHOLDER,),
        group_by=(ColumnRef(group.name, table=other.name),),
    )
    other_sg = nl_phrase(other, rng)
    slots = {
        **_phrase_slots(rng),
        **_table_slots(main, rng),
        "attribute": nl_phrase(column, rng),
        "agg_phrase": phrase,
        "table2_sg": other_sg,
        "group_attribute": other_sg + " " + nl_phrase(group, rng),
    }
    return SlotFill(query, slots)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: sql kind -> (family, builder, tuple of (nl pattern, paraphrase kind)).
KIND_REGISTRY: dict[str, tuple[Family, Builder, tuple[tuple[str, ParaphraseKind], ...]]] = {
    "select_all": (
        Family.SELECT,
        _build_select_all,
        (
            ("{select_phrase} all {table}", _NAIVE),
            ("what are all the {table}", _SYN),
            ("i want to see every {table_sg}", _LEX),
            ("all {table} please", _SYN),
            ("give a listing of the {table}", _LEX),
        ),
    ),
    "select_col": (
        Family.SELECT,
        _build_select_col,
        (
            ("{select_phrase} the {attribute} {from_phrase} {table}", _NAIVE),
            ("what is the {attribute} of the {table}", _NAIVE),
            ("for all {table} , {select_phrase} their {attribute}", _SYN),
            ("the {attribute} of all {table}", _SYN),
            ("{select_phrase} each {table_sg}'s {attribute}", _MORPH),
        ),
    ),
    "select_cols2": (
        Family.SELECT,
        _build_select_cols2,
        (
            ("{select_phrase} the {attribute} and {attribute2} {from_phrase} {table}", _NAIVE),
            ("what are the {attribute} and the {attribute2} of the {table}", _SYN),
            ("{select_phrase} both {attribute} and {attribute2} of all {table}", _LEX),
        ),
    ),
    "select_distinct": (
        Family.SELECT,
        _build_select_distinct,
        (
            ("{select_phrase} the distinct {attribute} of the {table}", _NAIVE),
            ("what are the different {attribute} of {table}", _LEX),
            ("list all unique {attribute} among the {table}", _LEX),
        ),
    ),
    "filter_select_all": (
        Family.FILTER,
        _build_filter_select_all,
        (
            ("{select_phrase} all {table} {where_phrase} {filter_nl}", _NAIVE),
            ("which {table} have {filter_nl}", _SYN),
            ("what are the {table} whose {filter_nl}", _SYN),
            ("{select_phrase} {table} {where_phrase} {filter_nl}", _NAIVE),
            ("are there {table} with {filter_nl}", _SYN),
            ("{where_phrase} {filter_nl} , {select_phrase} all {table}", _SYN),
        ),
    ),
    "filter_select_col": (
        Family.FILTER,
        _build_filter_select_col,
        (
            ("{select_phrase} the {attribute} of all {table} {where_phrase} {filter_nl}", _NAIVE),
            ("what is the {attribute} of {table} {where_phrase} {filter_nl}", _NAIVE),
            ("for {table} with {filter_nl} , what is their {attribute}", _SYN),
            ("{where_phrase} {filter_nl} , {select_phrase} the {attribute} of the {table}", _SYN),
            ("{select_phrase} the {attribute} of {table} having {filter_nl}", _MORPH),
            ("what be the {attribute} of {table} whose {filter_nl}", _MORPH),
            ("tell me the {attribute} for {table} with {filter_nl}", _LEX),
        ),
    ),
    "filter_two": (
        Family.FILTER,
        _build_filter_two,
        (
            ("{select_phrase} the {attribute} of {table} with {filter_nl} and {filter_nl2}", _NAIVE),
            ("which {table} have {filter_nl} and {filter_nl2} , {select_phrase} their {attribute}", _SYN),
            ("{select_phrase} the {attribute} of all {table} {where_phrase} {filter_nl} and with {filter_nl2}", _LEX),
        ),
    ),
    "filter_or": (
        Family.FILTER,
        _build_filter_or,
        (
            ("{select_phrase} all {table} with {filter_nl} or {filter_nl2}", _NAIVE),
            ("which {table} have {filter_nl} or {filter_nl2}", _SYN),
            ("{select_phrase} {table} {where_phrase} either {filter_nl} or {filter_nl2}", _LEX),
        ),
    ),
    "filter_between": (
        Family.FILTER,
        _build_filter_between,
        (
            ("{select_phrase} all {table} with {attribute} between {low} and {high}", _NAIVE),
            ("which {table} have a {attribute} ranging from {low} to {high}", _LEX),
            ("{select_phrase} {table} whose {attribute} is between {low} and {high}", _SYN),
        ),
    ),
    "agg": (
        Family.AGGREGATE,
        _build_agg,
        (
            ("what is the {agg_phrase} {attribute} of all {table}", _NAIVE),
            ("{select_phrase} the {agg_phrase} {attribute} of the {table}", _NAIVE),
            ("compute the {agg_phrase} {attribute} over all {table}", _LEX),
            ("across all {table} , what is the {agg_phrase} {attribute}", _SYN),
            ("{select_phrase} the {agg_phrase} of the {attribute} across the {table}", _SYN),
        ),
    ),
    "agg_filter": (
        Family.AGGREGATE,
        _build_agg_filter,
        (
            ("what is the {agg_phrase} {attribute} of {table} {where_phrase} {filter_nl}", _NAIVE),
            ("for {table} with {filter_nl} , what is the {agg_phrase} {attribute}", _SYN),
            ("{select_phrase} the {agg_phrase} {attribute} of all {table} whose {filter_nl}", _NAIVE),
            ("what is the {agg_phrase} {attribute} among {table} having {filter_nl}", _MORPH),
        ),
    ),
    "count_all": (
        Family.AGGREGATE,
        _build_count_all,
        (
            ("how many {table} are there", _NAIVE),
            ("count the number of {table}", _NAIVE),
            ("what is the total number of {table}", _LEX),
            ("what number of {table} exist", _SYN),
            ("total count of {table}", _SYN),
        ),
    ),
    "count_filter": (
        Family.AGGREGATE,
        _build_count_filter,
        (
            ("how many {table} have {filter_nl}", _NAIVE),
            ("count the {table} {where_phrase} {filter_nl}", _NAIVE),
            ("what is the number of {table} whose {filter_nl}", _LEX),
            ("number of {table} with {filter_nl}", _SYN),
        ),
    ),
    "groupby_agg": (
        Family.GROUPBY,
        _build_groupby_agg,
        (
            ("{select_phrase} the {agg_phrase} {attribute} of {table} {group_phrase} {group_attribute}", _NAIVE),
            ("what is the {agg_phrase} {attribute} {group_phrase} {group_attribute} of the {table}", _SYN),
            ("{group_phrase} {group_attribute} , {select_phrase} the {agg_phrase} {attribute} of {table}", _SYN),
            ("per {group_attribute} , what is the {agg_phrase} {attribute} of the {table}", _SYN),
        ),
    ),
    "groupby_count": (
        Family.GROUPBY,
        _build_groupby_count,
        (
            ("how many {table} are there {group_phrase} {group_attribute}", _NAIVE),
            ("count the number of {table} {group_phrase} {group_attribute}", _NAIVE),
            ("{select_phrase} the number of {table} {group_phrase} {group_attribute}", _LEX),
        ),
    ),
    "groupby_having": (
        Family.GROUPBY,
        _build_groupby_having,
        (
            ("which {group_attribute} have {having_nl} {table}", _NAIVE),
            ("{select_phrase} the {group_attribute} values with {having_nl} {table}", _LEX),
            ("what {group_attribute} appear for {having_nl} {table}", _SYN),
        ),
    ),
    "order_sort": (
        Family.ORDER,
        _build_order_sort,
        (
            ("{select_phrase} all {table} sorted by {order_attribute} in {direction} order", _NAIVE),
            ("{select_phrase} all {table} ordered by {direction} {order_attribute}", _SYN),
            ("rank the {table} by {order_attribute} {direction}", _LEX),
        ),
    ),
    "order_col_sort": (
        Family.ORDER,
        _build_order_col_sort,
        (
            ("{select_phrase} the {attribute} of all {table} sorted by {order_attribute} in {direction} order", _NAIVE),
            ("{select_phrase} the {attribute} of {table} ordered by {direction} {order_attribute}", _SYN),
        ),
    ),
    "superlative_nested": (
        Family.NESTED,
        _build_superlative_nested,
        (
            ("what is the {attribute} of the {table_sg} with the {superlative} {order_attribute}", _NAIVE),
            ("{select_phrase} the {attribute} of the {table_sg} whose {order_attribute} is the {superlative}", _SYN),
            ("the {table_sg} with the {superlative} {order_attribute} , what is its {attribute}", _SYN),
            ("{select_phrase} the {attribute} of the {superlative} {table_sg}", _LEX),
            ("which {table_sg} has the {superlative} {order_attribute} , {select_phrase} its {attribute}", _SYN),
        ),
    ),
    "nested_filter": (
        Family.NESTED,
        _build_nested_filter,
        (
            ("what is the {attribute} of the {table_sg} with the {superlative} {order_attribute} among those whose {filter_nl}", _NAIVE),
            ("for {table} with {filter_nl} , {select_phrase} the {attribute} of the one with the {superlative} {order_attribute}", _SYN),
        ),
    ),
    "nested_avg_cmp": (
        Family.NESTED,
        _build_nested_avg_cmp,
        (
            ("{select_phrase} the {attribute} of {table} whose {order_attribute} is {above_below} average", _NAIVE),
            ("which {table} have a {order_attribute} {above_below} the average {order_attribute}", _SYN),
            ("{select_phrase} the {attribute} of every {table_sg} with {above_below} average {order_attribute}", _LEX),
        ),
    ),
    "in_subquery": (
        Family.NESTED,
        _build_in_subquery,
        (
            ("{select_phrase} the {attribute} of {table} of {table2} with {filter_nl}", _NAIVE),
            ("which {table} belong to {table2} whose {filter_nl}", _SYN),
            ("{select_phrase} the {attribute} of {table} whose {table2_sg} has {filter_nl}", _LEX),
        ),
    ),
    "exists_subquery": (
        Family.NESTED,
        _build_exists_subquery,
        (
            ("if there are {table2} with {filter_nl} , {select_phrase} all {table}", _NAIVE),
            ("{select_phrase} all {table} provided some {table2_sg} has {filter_nl}", _SYN),
        ),
    ),
    "join_select": (
        Family.JOIN,
        _build_join_select,
        (
            ("{select_phrase} the {attribute} of all {table} whose {filter_nl}", _NAIVE),
            ("what is the {attribute} of {table} of the {table2_sg} with {filter_nl}", _SYN),
            ("for {table} whose {filter_nl} , {select_phrase} their {attribute}", _SYN),
            ("{select_phrase} the {attribute} of {table} linked to a {table2_sg} with {filter_nl}", _LEX),
            ("{select_phrase} the {attribute} of {table} connected to {table2} having {filter_nl}", _LEX),
        ),
    ),
    "join_agg": (
        Family.JOIN,
        _build_join_agg,
        (
            ("what is the {agg_phrase} {attribute} of {table} whose {filter_nl}", _NAIVE),
            ("for {table} of the {table2_sg} with {filter_nl} , what is the {agg_phrase} {attribute}", _SYN),
            ("{select_phrase} the {agg_phrase} {attribute} of all {table} whose {filter_nl}", _NAIVE),
        ),
    ),
    "join_count": (
        Family.JOIN,
        _build_join_count,
        (
            ("how many {table} have a {table2_sg} with {filter_nl}", _NAIVE),
            ("count the {table} whose {filter_nl}", _NAIVE),
            ("what is the number of {table} of {table2} with {filter_nl}", _LEX),
        ),
    ),
    "join_groupby": (
        Family.JOIN,
        _build_join_groupby,
        (
            ("{select_phrase} the {agg_phrase} {attribute} of {table} {group_phrase} {group_attribute}", _NAIVE),
            ("what is the {agg_phrase} {attribute} of the {table} {group_phrase} {group_attribute}", _SYN),
        ),
    ),
}

#: Aggregate kinds that have a GROUP BY variant (used by ``groupby_p``).
GROUPBY_VARIANTS = {
    "agg": "groupby_agg",
    "agg_filter": "groupby_agg",
    "count_all": "groupby_count",
    "count_filter": "groupby_count",
    "join_agg": "join_groupby",
}


def build_seed_templates() -> tuple[SeedTemplate, ...]:
    """Materialize the seed template library (one entry per NL pattern)."""
    templates: list[SeedTemplate] = []
    for kind, (family, _builder, patterns) in KIND_REGISTRY.items():
        for position, (pattern, para_kind) in enumerate(patterns):
            templates.append(
                SeedTemplate(
                    tid=f"{kind}-{position:02d}",
                    family=family,
                    sql_kind=kind,
                    nl_pattern=pattern,
                    paraphrase_kind=para_kind,
                )
            )
    return tuple(templates)


#: The default library: approximately 100 seed templates (paper §2.2.1).
SEED_TEMPLATES: tuple[SeedTemplate, ...] = build_seed_templates()


def builder_for(kind: str) -> Builder:
    """The builder function of a SQL kind."""
    try:
        return KIND_REGISTRY[kind][1]
    except KeyError:
        raise KeyError(f"unknown SQL kind {kind!r}") from None
