"""Plain-text report formatting for benchmark output.

The benches print tables shaped like the paper's Tables 2-4 and
text histograms shaped like Figures 3-4, so paper-vs-measured
comparison is a side-by-side read.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return "-" if math.isnan(cell) else f"{cell:.3f}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_histogram(
    counts: Sequence[int],
    edges: Sequence[float],
    title: str = "",
    width: int = 40,
) -> str:
    """Render a horizontal ASCII histogram (Figure 4 style)."""
    lines = [title] if title else []
    peak = max(counts) if len(counts) else 1
    for i, count in enumerate(counts):
        bar = "#" * (0 if peak == 0 else int(round(width * count / peak)))
        lines.append(f"{edges[i]:.3f}-{edges[i + 1]:.3f} | {bar} {count}")
    return "\n".join(lines)


def format_series(
    points: Mapping[object, float],
    title: str = "",
    width: int = 40,
) -> str:
    """Render an x->y series as labelled bars (Figure 3 style)."""
    lines = [title] if title else []
    peak = max((v for v in points.values() if not math.isnan(v)), default=1.0)
    peak = peak or 1.0
    for label, value in points.items():
        if math.isnan(value):
            lines.append(f"{str(label):>10} | -")
            continue
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{str(label):>10} | {bar} {value:.3f}")
    return "\n".join(lines)
