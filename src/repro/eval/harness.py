"""The evaluation harness: run a model over a workload, break down accuracy.

Produces the numbers behind every table of §6: overall accuracy,
per-difficulty (Table 2), per-linguistic-category (Table 3), and raw
per-item records for the pattern-coverage analysis (Table 4).

The harness optionally routes model output through the runtime
post-processor (JOIN expansion + FROM repair) before comparison — the
paper's system always does; ablating it quantifies the repair step's
contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.workloads import Workload, WorkloadItem
from repro.eval.metrics import exact_match, semantic_match
from repro.nlp.lemmatizer import lemmatize
from repro.perf.instrumentation import PerfRecorder
from repro.runtime.postprocess import PostProcessor
from repro.schema.schema import Schema
from repro.sql.difficulty import DIFFICULTY_ORDER, Difficulty
from repro.sql.equivalence import EquivalenceChecker


@dataclass
class ItemResult:
    """Evaluation record for one workload item.

    ``correct`` scores the workload's configured metric; ``semantic``
    is always additionally reported (canonical-form equivalence, plus
    checker-certified execution agreement when a checker was passed).
    ``semantic >= correct`` holds when the metric is ``"exact"`` —
    canonicalization subsumes normalization.
    """

    item: WorkloadItem
    prediction: str | None
    correct: bool
    semantic: bool = False


@dataclass
class EvalResult:
    """Accuracy breakdowns over one workload."""

    workload_name: str
    records: list[ItemResult] = field(default_factory=list)
    #: Harness stage timings (translate/postprocess/score) plus, for
    #: execution-match scoring, the checker's executor stage timings
    #: (scan/join/group/sort) and result-cache counters.
    perf: dict = field(default_factory=dict)
    #: Static-analysis summary over the evaluated schemas (filled when
    #: ``evaluate(..., lint=True)``): finding counts, per-code tallies,
    #: and the rendered diagnostics.  Empty dict when lint was off.
    lint: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def accuracy(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.correct for r in self.records) / len(self.records)

    @property
    def semantic_accuracy(self) -> float:
        """Accuracy under the ``semantic_match`` column."""
        if not self.records:
            return 0.0
        return sum(r.semantic for r in self.records) / len(self.records)

    def accuracy_where(self, predicate) -> float:
        subset = [r for r in self.records if predicate(r.item)]
        if not subset:
            return float("nan")
        return sum(r.correct for r in subset) / len(subset)

    def by_difficulty(self) -> dict[Difficulty, float]:
        return {
            d: self.accuracy_where(lambda item, d=d: item.difficulty is d)
            for d in DIFFICULTY_ORDER
        }

    def by_category(self) -> dict[str, float]:
        categories: list[str] = []
        for record in self.records:
            if record.item.category and record.item.category not in categories:
                categories.append(record.item.category)
        return {
            c: self.accuracy_where(lambda item, c=c: item.category == c)
            for c in categories
        }

    def failures(self, limit: int | None = None) -> list[ItemResult]:
        failed = [r for r in self.records if not r.correct]
        return failed[:limit] if limit is not None else failed

    def summary(self) -> str:
        """Accuracy plus per-stage timings, as a small text report."""
        lines = [
            f"{self.workload_name}: {len(self.records)} items, "
            f"accuracy {self.accuracy:.3f} "
            f"(semantic {self.semantic_accuracy:.3f})"
        ]
        stages = dict(self.perf.get("stages", {}))
        stages.update(
            {f"exec/{k}": v for k, v in self.perf.get("executor", {}).items()}
        )
        if stages:
            width = max(len(name) for name in stages)
            for name, stats in stages.items():
                lines.append(
                    f"  {name:<{width}}  {stats['seconds']:>8.3f}s"
                    f"  x{stats['calls']}"
                )
        cache = self.perf.get("executor_cache")
        if cache:
            lines.append(
                f"  gold/result cache: {cache['cache_hits']} hits / "
                f"{cache['cache_misses']} misses "
                f"({cache['cache_hit_rate']:.1%} hit rate)"
            )
        if self.lint:
            lines.append(
                f"  lint: {self.lint['errors']} error(s), "
                f"{self.lint['warnings']} warning(s) over "
                f"{self.lint['schemas']} schema(s)"
            )
        return "\n".join(lines)


def evaluate(
    model,
    workload: Workload,
    metric: str = "exact",
    checker: EquivalenceChecker | None = None,
    schemas: dict[str, Schema] | None = None,
    postprocess: bool = True,
    lint: bool = False,
) -> EvalResult:
    """Evaluate ``model`` on ``workload``.

    ``metric`` is ``"exact"`` (Spider protocol) or ``"semantic"``
    (Patients protocol, needs a ``checker`` for execution-based
    equivalence).  ``schemas`` enables post-processing repair per item
    schema; items whose schema is missing skip repair.  ``lint=True``
    additionally runs the static analyzer over ``schemas`` and the
    shipped seed templates, attaching the summary to
    :attr:`EvalResult.lint` — accuracy numbers for inputs that fail
    lint should not be trusted.
    """
    if metric not in ("exact", "semantic"):
        raise ValueError(f"unknown metric {metric!r}")
    postprocessors: dict[str, PostProcessor] = {}
    if postprocess and schemas:
        postprocessors = {
            name: PostProcessor(schema) for name, schema in schemas.items()
        }
    recorder = PerfRecorder()
    result = EvalResult(workload_name=workload.name)
    for item in workload:
        # Mirror the runtime pre-processing: benchmark NL is already
        # anonymized, but must still be lemmatized before translation.
        # Cross-domain models additionally receive the item's schema.
        schema = (schemas or {}).get(item.schema_name)
        with recorder.stage("translate"):
            if schema is not None:
                raw = model.translate_for_schema(lemmatize(item.nl), schema)
            else:
                raw = model.translate(lemmatize(item.nl))
        prediction: str | None = raw
        gold: object = item.sql
        post = postprocessors.get(item.schema_name)
        if post is not None:
            with recorder.stage("postprocess"):
                processed = post.process(raw)
                if processed is not None:
                    prediction = processed.sql
                # Gold queries may use the @JOIN form too; run them
                # through the same repair so both sides are in
                # executable form.
                gold_processed = post.process(item.sql_text)
                if gold_processed is not None:
                    gold = gold_processed.query
        with recorder.stage("score"):
            semantic = semantic_match(prediction, gold, checker, schema=schema)
            if metric == "exact":
                correct = exact_match(prediction, gold)
            else:
                correct = semantic
        result.records.append(
            ItemResult(
                item=item,
                prediction=prediction,
                correct=correct,
                semantic=semantic,
            )
        )
    result.perf = {"stages": recorder.report()}
    if checker is not None and metric == "semantic":
        # Execution-match scoring runs through the checker's planned,
        # cached executor sessions; surface its stage timings too.
        checker_report = checker.perf_report()
        result.perf["executor"] = checker_report["stages"]
        result.perf["executor_cache"] = {
            k: v for k, v in checker_report.items() if k != "stages"
        }
    if lint and schemas:
        from repro.analysis import lint_pipeline_inputs
        from repro.core.seed_templates import SEED_TEMPLATES

        report = lint_pipeline_inputs(list(schemas.values()), SEED_TEMPLATES)
        result.lint = {
            **report.counts(),
            "schemas": len(schemas),
            "by_code": report.by_code(),
            "diagnostics": [d.to_dict() for d in report.sorted()],
        }
    return result
