"""Pattern-coverage breakdown (paper §6.3.1, Table 4).

Each test query's pattern signature is checked against the pattern sets
of the two training sources — the human-annotated (Spider-substitute)
training set and DBPal's synthesized data — splitting the workload into
four buckets: *Both*, *DBPal only*, *Spider only*, *Unseen*.  Accuracy
is then reported per bucket.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.harness import EvalResult
from repro.sql.patterns import pattern_set, pattern_signature

#: Bucket labels in Table 4's column order.
BUCKETS = ("both", "dbpal", "spider", "unseen")


@dataclass
class CoverageBreakdown:
    """Per-bucket accuracy plus bucket sizes."""

    accuracy: dict[str, float]
    counts: dict[str, int]

    def as_rows(self) -> list[tuple[str, float, int]]:
        return [(b, self.accuracy[b], self.counts[b]) for b in BUCKETS]


def bucket_of(signature: str, spider_patterns: set[str], dbpal_patterns: set[str]) -> str:
    in_spider = signature in spider_patterns
    in_dbpal = signature in dbpal_patterns
    if in_spider and in_dbpal:
        return "both"
    if in_dbpal:
        return "dbpal"
    if in_spider:
        return "spider"
    return "unseen"


def coverage_breakdown(
    result: EvalResult,
    spider_training_sql,
    dbpal_training_sql,
) -> CoverageBreakdown:
    """Split an evaluation result by training-pattern coverage.

    ``spider_training_sql`` / ``dbpal_training_sql`` are iterables of
    SQL texts (or ASTs) of the respective training corpora.
    """
    spider_patterns = pattern_set(spider_training_sql)
    dbpal_patterns = pattern_set(dbpal_training_sql)
    totals = {b: 0 for b in BUCKETS}
    correct = {b: 0 for b in BUCKETS}
    for record in result.records:
        bucket = bucket_of(
            pattern_signature(record.item.sql), spider_patterns, dbpal_patterns
        )
        totals[bucket] += 1
        correct[bucket] += int(record.correct)
    accuracy = {
        b: (correct[b] / totals[b]) if totals[b] else float("nan") for b in BUCKETS
    }
    return CoverageBreakdown(accuracy=accuracy, counts=totals)
