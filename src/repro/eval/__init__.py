"""Evaluation: metrics, harness, coverage analysis, report formatting."""

from repro.eval.coverage import BUCKETS, CoverageBreakdown, bucket_of, coverage_breakdown
from repro.eval.harness import EvalResult, ItemResult, evaluate
from repro.eval.metrics import exact_match, parse_rate, semantic_match
from repro.eval.reports import format_histogram, format_series, format_table

__all__ = [
    "BUCKETS",
    "CoverageBreakdown",
    "EvalResult",
    "ItemResult",
    "bucket_of",
    "coverage_breakdown",
    "evaluate",
    "exact_match",
    "format_histogram",
    "format_series",
    "format_table",
    "parse_rate",
    "semantic_match",
]
