"""Accuracy metrics for NL2SQL evaluation.

Two notions from the paper:

* **exact match** (Spider, §6.1.1) — "a query is deemed to be correctly
  translated only if it exactly matches the provided gold standard SQL
  query ... without allowing for semantically equivalent answers".  We
  compare canonical forms so cosmetic differences (keyword case,
  operand order within commutative operators) do not count as errors,
  matching Spider's component-normalized comparison.
* **semantic match** (Patients, §6.2.1) — equivalence up to semantics,
  decided by the :class:`~repro.sql.equivalence.EquivalenceChecker`.
"""

from __future__ import annotations

from repro.sql.ast import Query
from repro.sql.equivalence import EquivalenceChecker
from repro.sql.normalize import canonical_sql
from repro.sql.parser import try_parse


def _as_query(candidate: str | Query | None) -> Query | None:
    if candidate is None:
        return None
    if isinstance(candidate, Query):
        return candidate
    return try_parse(candidate)


def exact_match(predicted: str | Query | None, gold: str | Query) -> bool:
    """Canonical-form exact match (unparseable predictions are wrong)."""
    predicted_query = _as_query(predicted)
    gold_query = _as_query(gold)
    if predicted_query is None or gold_query is None:
        return False
    return canonical_sql(predicted_query) == canonical_sql(gold_query)


def semantic_match(
    predicted: str | Query | None,
    gold: str | Query,
    checker: EquivalenceChecker | None = None,
) -> bool:
    """Semantic-equivalence match (falls back to exact when no checker)."""
    predicted_query = _as_query(predicted)
    gold_query = _as_query(gold)
    if predicted_query is None or gold_query is None:
        return False
    if checker is None:
        return canonical_sql(predicted_query) == canonical_sql(gold_query)
    return checker.equivalent(predicted_query, gold_query)


def parse_rate(predictions: list[str | None]) -> float:
    """Fraction of predictions that parse in the SQL subset."""
    if not predictions:
        return 0.0
    ok = sum(1 for p in predictions if p is not None and try_parse(p) is not None)
    return ok / len(predictions)
