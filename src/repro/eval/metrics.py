"""Accuracy metrics for NL2SQL evaluation.

Two notions from the paper:

* **exact match** (Spider, §6.1.1) — "a query is deemed to be correctly
  translated only if it exactly matches the provided gold standard SQL
  query ... without allowing for semantically equivalent answers".  We
  compare canonical forms so cosmetic differences (keyword case,
  operand order within commutative operators) do not count as errors,
  matching Spider's component-normalized comparison.
* **semantic match** (Patients, §6.2.1) — equivalence up to semantics,
  decided by the :class:`~repro.sql.equivalence.EquivalenceChecker`.
"""

from __future__ import annotations

from repro.sql.ast import Query
from repro.sql.canonical import canonical_text
from repro.sql.equivalence import EquivalenceChecker
from repro.sql.normalize import canonical_sql
from repro.sql.parser import try_parse


def _as_query(candidate: str | Query | None) -> Query | None:
    if candidate is None:
        return None
    if isinstance(candidate, Query):
        return candidate
    return try_parse(candidate)


def exact_match(predicted: str | Query | None, gold: str | Query) -> bool:
    """Canonical-form exact match (unparseable predictions are wrong)."""
    predicted_query = _as_query(predicted)
    gold_query = _as_query(gold)
    if predicted_query is None or gold_query is None:
        return False
    return canonical_sql(predicted_query) == canonical_sql(gold_query)


def semantic_match(
    predicted: str | Query | None,
    gold: str | Query,
    checker: EquivalenceChecker | None = None,
    schema=None,
) -> bool:
    """Semantic-equivalence match.

    Without a checker this is canonical-form equality
    (:mod:`repro.sql.canonical`, optionally schema-aware) — strictly
    weaker than execution equivalence but strictly stronger than
    :func:`exact_match`, so ``semantic_match >= exact_match`` holds
    per item.  With a checker, its execution probes run first
    (Patients protocol — the checker's planned executor sessions and
    result cache are part of the harness's perf surface), and
    canonical equality is additionally accepted so pairs the probes
    cannot execute can still be certified structurally.
    """
    predicted_query = _as_query(predicted)
    gold_query = _as_query(gold)
    if predicted_query is None or gold_query is None:
        return False
    if checker is not None and checker.equivalent(predicted_query, gold_query):
        return True
    return canonical_text(predicted_query, schema) == canonical_text(gold_query, schema)


def parse_rate(predictions: list[str | None]) -> float:
    """Fraction of predictions that parse in the SQL subset."""
    if not predictions:
        return 0.0
    ok = sum(1 for p in predictions if p is not None and try_parse(p) is not None)
    return ok / len(predictions)
