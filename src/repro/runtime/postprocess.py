"""Runtime post-processing (paper §4.2, §5.1).

Three repairs turn raw model output into executable SQL:

1. **@JOIN expansion** — replace the ``@JOIN`` FROM placeholder with
   the tables referenced by qualified column refs plus the shortest
   join path connecting them (including intermediate tables), adding
   the corresponding FK equality conditions to WHERE;
2. **FROM-clause repair** — when the model emits a column whose table
   is missing from FROM (e.g. asks for patient names without the
   patient table), add the missing tables via the shortest join path;
3. **placeholder restoration** — substitute the constants captured by
   the parameter handler back into the SQL (the inverse of
   pre-processing), resolving by exact placeholder name, then by column
   segment, then positionally.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.errors import SchemaError
from repro.runtime.parameter_handler import Binding
from repro.schema.schema import Schema
from repro.sql.ast import (
    And,
    Between,
    ColumnRef,
    CompOp,
    Comparison,
    Exists,
    InPredicate,
    Like,
    Literal,
    Not,
    Or,
    Placeholder,
    Predicate,
    Query,
    Subquery,
    conjoin,
)
from repro.sql.parser import try_parse
from repro.sql.printer import to_sql


@dataclass
class ProcessedQuery:
    """Result of post-processing one model output."""

    query: Query
    sql: str
    repaired: bool = False  # whether JOIN expansion / FROM repair fired


class PostProcessor:
    """Repairs model output and restores constants."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    # ------------------------------------------------------------------

    def process(
        self, sql_text: str | None, bindings: list[Binding] | tuple = ()
    ) -> ProcessedQuery | None:
        """Parse, repair, and bind one model output (None if unparseable)."""
        if not sql_text:
            return None
        query = try_parse(sql_text)
        if query is None:
            return None
        repaired = False
        try:
            expanded = self._expand_join(query)
            expanded = self._repair_from(expanded)
            repaired = expanded != query
            query = expanded
        except SchemaError:
            # Unrepairable table references: keep the parsed query as-is.
            pass
        if bindings:
            query = _restore_placeholders(query, list(bindings))
        return ProcessedQuery(query=query, sql=to_sql(query), repaired=repaired)

    # ------------------------------------------------------------------
    # @JOIN expansion (§5.1)
    # ------------------------------------------------------------------

    def _expand_join(self, query: Query) -> Query:
        if not query.uses_join_placeholder:
            return query
        referenced = [t for t in query.referenced_tables() if t in self.schema]
        for placeholder in query.placeholders():
            table = placeholder.table
            if table and table in self.schema and table not in referenced:
                referenced.append(table)
        if not referenced:
            raise SchemaError("cannot expand @JOIN: no table-qualified columns")
        return self._join_and_conditions(query, referenced)

    # ------------------------------------------------------------------
    # FROM-clause repair (§4.2)
    # ------------------------------------------------------------------

    def _repair_from(self, query: Query) -> Query:
        if query.uses_join_placeholder:
            return query
        needed = [t for t in query.from_tables if t in self.schema]
        changed = False
        for ref in query.column_refs():
            if ref.table is not None:
                if ref.table in self.schema and ref.table not in needed:
                    needed.append(ref.table)
                    changed = True
                continue
            if any(ref.column in self.schema.table(t) for t in needed):
                continue
            candidates = self.schema.tables_with_column(ref.column)
            if candidates and candidates[0].name not in needed:
                needed.append(candidates[0].name)
                changed = True
        if not needed:
            raise SchemaError("no valid tables referenced")
        if not changed and tuple(needed) == query.from_tables:
            return query
        if len(needed) == 1:
            return dc_replace(query, from_tables=(needed[0],))
        return self._join_and_conditions(query, needed)

    def _join_and_conditions(self, query: Query, tables: list[str]) -> Query:
        """FROM = join closure of ``tables``; WHERE += FK conditions."""
        all_tables = self.schema.join_tables(tables)
        conditions: list[Predicate] = [
            Comparison(
                ColumnRef(fk.column, table=fk.table),
                CompOp.EQ,
                ColumnRef(fk.ref_column, table=fk.ref_table),
            )
            for fk in self.schema.join_path(all_tables)
        ]
        where = conjoin(
            ([query.where] if query.where is not None else []) + conditions
        )
        return dc_replace(query, from_tables=tuple(all_tables), where=where)


# ----------------------------------------------------------------------
# Placeholder restoration
# ----------------------------------------------------------------------


class _Resolver:
    """Stateful placeholder -> constant resolution."""

    def __init__(self, bindings: list[Binding]) -> None:
        self._bindings = bindings
        self._used = [False] * len(bindings)

    def resolve(self, placeholder: Placeholder):
        name = placeholder.name.lower()
        segments = set(name.split("."))
        # 1. exact full-name match
        for index, binding in enumerate(self._bindings):
            if not self._used[index] and binding.placeholder.lower() == name:
                self._used[index] = True
                return binding.value
        # 2. column-segment match
        for index, binding in enumerate(self._bindings):
            if self._used[index]:
                continue
            if binding.column and binding.column.lower() in segments:
                self._used[index] = True
                return binding.value
            if set(binding.segments) & segments:
                self._used[index] = True
                return binding.value
        # 3. positional fallback
        for index, binding in enumerate(self._bindings):
            if not self._used[index]:
                self._used[index] = True
                return binding.value
        return None


def _restore_placeholders(query: Query, bindings: list[Binding]) -> Query:
    resolver = _Resolver(bindings)
    return _transform_query(query, resolver)


def restore_placeholders(query: Query, bindings: list[Binding]) -> Query:
    """Re-bind anonymization-map constants into ``query``'s placeholders.

    Public entry point for callers outside the post-processing pass —
    notably the serving repair loop, which renames a placeholder's
    column segment and must then re-run constant restoration.
    Placeholders with no matching binding are left visible.
    """
    return _restore_placeholders(query, bindings)


def _transform_query(query: Query, resolver: _Resolver) -> Query:
    where = _transform_pred(query.where, resolver) if query.where else None
    having = _transform_pred(query.having, resolver) if query.having else None
    return dc_replace(query, where=where, having=having)


def _transform_operand(operand, resolver: _Resolver):
    if isinstance(operand, Placeholder):
        value = resolver.resolve(operand)
        if value is None:
            return operand  # leave unresolved placeholders visible
        return Literal(value)
    if isinstance(operand, Subquery):
        return Subquery(_transform_query(operand.query, resolver))
    return operand


def _transform_pred(pred: Predicate, resolver: _Resolver) -> Predicate:
    if isinstance(pred, Comparison):
        return Comparison(
            _transform_operand(pred.left, resolver),
            pred.op,
            _transform_operand(pred.right, resolver),
        )
    if isinstance(pred, Between):
        return Between(
            pred.column,
            _transform_operand(pred.low, resolver),
            _transform_operand(pred.high, resolver),
        )
    if isinstance(pred, InPredicate):
        subquery = (
            Subquery(_transform_query(pred.subquery.query, resolver))
            if pred.subquery is not None
            else None
        )
        values = tuple(_transform_operand(v, resolver) for v in pred.values)
        return InPredicate(pred.column, values, subquery, pred.negated)
    if isinstance(pred, Like):
        return Like(pred.column, _transform_operand(pred.pattern, resolver), pred.negated)
    if isinstance(pred, Exists):
        return Exists(Subquery(_transform_query(pred.subquery.query, resolver)), pred.negated)
    if isinstance(pred, Not):
        return Not(_transform_pred(pred.operand, resolver))
    if isinstance(pred, And):
        return And(tuple(_transform_pred(p, resolver) for p in pred.operands))
    if isinstance(pred, Or):
        return Or(tuple(_transform_pred(p, resolver) for p in pred.operands))
    return pred
