"""Runtime pre-processing: anonymize, then lemmatize (paper §4.1).

"The same lemmatization is applied at runtime during the ...
pre-processing step" — so the model sees exactly the token distribution
it was trained on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.storage import Database
from repro.nlp.lemmatizer import lemmatize
from repro.runtime.parameter_handler import AnonymizedQuery, Binding, ParameterHandler


@dataclass
class PreprocessedQuery:
    """Output of the pre-processing phase."""

    original_nl: str
    anonymized_nl: str
    model_input: str  # anonymized + lemmatized
    bindings: list[Binding]


class Preprocessor:
    """Parameter handling followed by lemmatization."""

    def __init__(self, database: Database, parameter_handler: ParameterHandler | None = None) -> None:
        self._handler = parameter_handler or ParameterHandler(database)

    @property
    def value_index(self):
        """The parameter handler's database value index (shared with the
        planned executor so equality scans can be index-pruned)."""
        return self._handler.index

    def preprocess(self, nl: str) -> PreprocessedQuery:
        anonymized: AnonymizedQuery = self._handler.anonymize(nl)
        return PreprocessedQuery(
            original_nl=nl,
            anonymized_nl=anonymized.nl,
            model_input=lemmatize(anonymized.nl),
            bindings=anonymized.bindings,
        )
