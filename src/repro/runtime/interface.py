"""The end-to-end NLIDB facade (paper Figure 1).

:class:`DBPal` wires the full lifecycle of an NL query: pre-processing
(parameter handling + lemmatization) → neural translation →
post-processing (repairs + constant restoration) → execution against
the DBMS, returning tabular results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import GenerationConfig
from repro.core.pipeline import TrainingCorpus, TrainingPipeline
from repro.db.planner import ExecutorSession
from repro.db.storage import Database, Row
from repro.errors import BackendError, TranslationError
from repro.neural.base import TranslationModel
from repro.runtime.postprocess import PostProcessor, ProcessedQuery
from repro.runtime.preprocess import PreprocessedQuery, Preprocessor
from repro.sql.ast import Query


@dataclass
class TranslationResult:
    """Everything produced while translating one NL question."""

    nl: str
    model_input: str
    model_output: str | None
    sql: str | None
    query: Query | None
    bindings: list = field(default_factory=list)
    repaired: bool = False

    @property
    def ok(self) -> bool:
        return self.query is not None


class DBPal:
    """A natural-language interface over one database.

    Parameters
    ----------
    database:
        The target database (schema + sample rows).
    model:
        A fitted :class:`~repro.neural.base.TranslationModel`; if
        omitted, call :meth:`train` first.
    backend:
        Execution backend for :meth:`query`: ``None`` (default) runs
        the in-memory planned executor directly, ``"memory"``/
        ``"sqlite"`` select a :mod:`repro.adapters` backend by name
        (sqlite mirrors ``database`` into an in-process engine), and a
        :class:`~repro.adapters.BackendAdapter` instance is used as-is.
        Adapter-backed results are normalized
        (:func:`repro.adapters.normalize_rows`).
    """

    def __init__(
        self,
        database: Database,
        model: TranslationModel | None = None,
        backend=None,
    ) -> None:
        self.database = database
        self.model = model
        self.preprocessor = Preprocessor(database)
        self.postprocessor = PostProcessor(database.schema)
        # Planned executor session: hash joins + pushdown, per-column
        # equality indexes (pre-screened by the parameter handler's
        # value index), and a bounded result cache for repeat queries.
        self.executor = ExecutorSession(
            database, value_index=self.preprocessor.value_index
        )
        self.backend = self._resolve_backend(backend)

    def _resolve_backend(self, backend):
        from repro.adapters import BackendAdapter, MemoryAdapter, SqliteAdapter

        if backend is None:
            return None
        if isinstance(backend, BackendAdapter):
            return backend
        if backend == "memory":
            return MemoryAdapter(self.executor)
        if backend == "sqlite":
            return SqliteAdapter.from_database(self.database)
        raise BackendError(
            f"unknown backend {backend!r}; expected 'memory', 'sqlite', "
            "or a BackendAdapter instance"
        )

    # ------------------------------------------------------------------

    def train(
        self,
        model: TranslationModel,
        config: GenerationConfig | None = None,
        manual_pairs=(),
        seed: int = 0,
        **fit_kwargs,
    ) -> TrainingCorpus:
        """Train ``model`` with DBPal's pipeline on this database's schema."""
        pipeline = TrainingPipeline(self.database.schema, config=config, seed=seed)
        corpus = pipeline.train(model, manual_pairs=manual_pairs, **fit_kwargs)
        self.model = model
        return corpus

    # ------------------------------------------------------------------

    def translate(self, nl: str) -> TranslationResult:
        """Translate one NL question to SQL (without executing it)."""
        if self.model is None:
            raise TranslationError("no model: train or supply one first")
        pre: PreprocessedQuery = self.preprocessor.preprocess(nl)
        model_output = self.model.translate(pre.model_input)
        processed: ProcessedQuery | None = self.postprocessor.process(
            model_output, pre.bindings
        )
        return TranslationResult(
            nl=nl,
            model_input=pre.model_input,
            model_output=model_output,
            sql=processed.sql if processed else None,
            query=processed.query if processed else None,
            bindings=pre.bindings,
            repaired=processed.repaired if processed else False,
        )

    def query(self, nl: str, max_rows: int | None = None) -> list[Row]:
        """Translate and execute; raises on untranslatable questions."""
        result = self.translate(nl)
        if not result.ok:
            raise TranslationError(
                f"could not translate {nl!r} (model output: {result.model_output!r})"
            )
        if self.backend is not None:
            return self.backend.execute(result.query, max_rows=max_rows)
        return self.executor.execute(result.query, max_rows=max_rows)

    def explain(self, nl: str) -> str:
        """Human-readable trace of the translation pipeline for ``nl``."""
        result = self.translate(nl)
        lines = [
            f"NL question : {result.nl}",
            f"model input : {result.model_input}",
            f"model output: {result.model_output}",
            f"final SQL   : {result.sql}",
        ]
        if result.bindings:
            bound = ", ".join(
                f"@{b.placeholder}={b.value!r}" for b in result.bindings
            )
            lines.insert(2, f"bindings    : {bound}")
        if result.repaired:
            lines.append("(post-processor repaired the FROM clause)")
        return "\n".join(lines)
