"""The Parameter Handler: constant anonymization (paper §2.1.2, §4.1).

Replaces the constants in an input NL query with typed placeholders so
the translation model works independently of database contents.  The
handler uses the value index (exact lookup, then Jaccard similarity
fallback) to attribute each constant to a schema column; numeric
constants that match no column become the generic ``@NUM`` placeholder
(used e.g. for HAVING counts).

When the same column is matched by exactly two numeric constants, they
are renamed ``@COL.LOW`` / ``@COL.HIGH`` (smaller first) to align with
the BETWEEN templates of the generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.index import ValueIndex
from repro.db.storage import Database
from repro.nlp.tokenizer import tokenize


@dataclass
class Binding:
    """One anonymized constant."""

    placeholder: str  # name without '@', upper-case, possibly dotted
    value: int | float | str
    table: str = ""
    column: str = ""

    @property
    def segments(self) -> tuple[str, ...]:
        return tuple(self.placeholder.lower().split("."))


@dataclass
class AnonymizedQuery:
    """Result of anonymization: rewritten NL plus the extracted bindings."""

    nl: str
    bindings: list[Binding] = field(default_factory=list)


class ParameterHandler:
    """Replaces constants in NL questions with placeholders."""

    def __init__(
        self,
        database: Database,
        value_index: ValueIndex | None = None,
        similarity_threshold: float = 0.45,
    ) -> None:
        self.database = database
        self.index = value_index or ValueIndex(
            database, similarity_threshold=similarity_threshold
        )

    # ------------------------------------------------------------------

    def anonymize(self, nl: str) -> AnonymizedQuery:
        """Rewrite ``nl``, replacing constants with placeholders."""
        tokens = tokenize(nl)
        out_tokens: list[str] = []
        bindings: list[Binding] = []
        position = 0
        while position < len(tokens):
            token = tokens[position]
            if token.startswith("@"):
                # Pre-anonymized input (the paper's evaluation setting).
                out_tokens.append(token)
                bindings.append(Binding(placeholder=token[1:], value=token))
                position += 1
                continue
            number = _as_number(token)
            if number is not None:
                binding = self._bind_number(number)
                bindings.append(binding)
                out_tokens.append("@" + binding.placeholder)
                position += 1
                continue
            match = self._match_string(tokens, position)
            if match is not None:
                binding, consumed = match
                bindings.append(binding)
                out_tokens.append("@" + binding.placeholder)
                position += consumed
                continue
            out_tokens.append(token)
            position += 1
        self._rename_pairs(bindings, out_tokens)
        return AnonymizedQuery(nl=" ".join(out_tokens), bindings=bindings)

    # ------------------------------------------------------------------

    def _bind_number(self, value: int | float) -> Binding:
        hits = self.index.lookup(str(value))
        numeric_hits = [
            h
            for h in hits
            if self.database.schema.column(h.table, h.column).is_numeric
            and not self.database.schema.column(h.table, h.column).primary_key
        ]
        hits = numeric_hits or hits
        if hits:
            hit = hits[0]
            return Binding(
                placeholder=hit.column.upper(),
                value=value,
                table=hit.table,
                column=hit.column,
            )
        return Binding(placeholder="NUM", value=value)

    def _match_string(self, tokens: list[str], position: int):
        """Try to match a (multi-word) string constant starting here.

        Longest match first, up to 3 tokens, using exact-then-fuzzy
        lookup.  The fuzzy path also *corrects* the constant to the most
        similar stored value ("New York City" -> "NYC", §4.1).
        """
        if not tokens[position].isalpha():
            return None
        for length in (3, 2, 1):
            if position + length > len(tokens):
                continue
            phrase = " ".join(tokens[position : position + length])
            hits = self.index.lookup(phrase)
            if not hits:
                hits = [
                    h for h in self.index.fuzzy_lookup(phrase) if h.score >= 0.55
                ]
            hits = [h for h in hits if not _is_schema_word(phrase, self.database)]
            if hits:
                hit = hits[0]
                return (
                    Binding(
                        placeholder=hit.column.upper(),
                        value=hit.value,
                        table=hit.table,
                        column=hit.column,
                    ),
                    length,
                )
        return None

    @staticmethod
    def _rename_pairs(bindings: list[Binding], out_tokens: list[str]) -> None:
        """Rename duplicate numeric column bindings to .LOW/.HIGH."""
        by_placeholder: dict[str, list[int]] = {}
        for index, binding in enumerate(bindings):
            by_placeholder.setdefault(binding.placeholder, []).append(index)
        for placeholder, indices in by_placeholder.items():
            if len(indices) != 2 or placeholder == "NUM":
                continue
            pair = [bindings[i] for i in indices]
            if not all(isinstance(b.value, (int, float)) for b in pair):
                continue
            old = "@" + placeholder
            positions = [t for t, token in enumerate(out_tokens) if token == old]
            if len(positions) != 2:
                continue
            low_index = min(indices, key=lambda i: bindings[i].value)
            # Bindings appear in token order, so indices[k] sits at
            # positions[k].
            for k, binding_index in enumerate(indices):
                suffix = "LOW" if binding_index == low_index else "HIGH"
                bindings[binding_index].placeholder = f"{placeholder}.{suffix}"
                out_tokens[positions[k]] = "@" + bindings[binding_index].placeholder


def _as_number(token: str) -> int | float | None:
    try:
        return int(token)
    except ValueError:
        try:
            return float(token)
        except ValueError:
            return None


def _is_schema_word(phrase: str, database: Database) -> bool:
    """Schema-element names should stay words, not become constants.

    "show me the names of patients" must not anonymize "patients" just
    because some text column happens to contain that string.
    """
    phrase = phrase.lower()
    for table in database.schema.tables:
        if phrase in (p.lower() for p in table.nl_phrases):
            return True
        for column in table.columns:
            if phrase in (p.lower() for p in column.nl_phrases):
                return True
    return False
