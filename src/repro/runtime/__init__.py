"""Runtime phase: pre-processing, translation, post-processing, execution."""

from repro.runtime.interface import DBPal, TranslationResult
from repro.runtime.parameter_handler import AnonymizedQuery, Binding, ParameterHandler
from repro.runtime.postprocess import PostProcessor, ProcessedQuery
from repro.runtime.preprocess import PreprocessedQuery, Preprocessor

__all__ = [
    "AnonymizedQuery",
    "Binding",
    "DBPal",
    "ParameterHandler",
    "PostProcessor",
    "PreprocessedQuery",
    "Preprocessor",
    "ProcessedQuery",
    "TranslationResult",
]
