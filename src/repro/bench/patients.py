"""The Patients benchmark (ParaphraseBench stand-in, paper §6.2).

The paper introduces a 399-pair benchmark over a hospital-patients
schema that systematically tests linguistic robustness: the same
information need is phrased in seven ways —

* **naive** — direct verbalization of the SQL,
* **syntactic** — structural reordering,
* **morphological** — inflectional variation (affixes, tense),
* **lexical** — synonym substitution,
* **semantic** — changed lexicalization patterns, same meaning,
* **missing** — implicit/omitted information,
* **mixed** — a combination of the above.

We reconstruct the benchmark's *structure* exactly: 19 SQL shapes × 3
attribute/operator variants = 57 queries, each with 7 hand-written NL
patterns (one per category), for 399 pairs total — the published
benchmark's counts (57 per category).  NL is pre-anonymized
(placeholders instead of constants), the setting the paper evaluates
(§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bench.workloads import Workload, WorkloadItem
from repro.errors import BenchmarkError
from repro.schema.catalog import patients_schema
from repro.sql.ast import (
    AggFunc,
    Aggregate,
    And,
    Between,
    ColumnRef,
    CompOp,
    Comparison,
    Or,
    OrderItem,
    Placeholder,
    Query,
    Star,
    Subquery,
)

CATEGORIES = (
    "naive",
    "syntactic",
    "morphological",
    "lexical",
    "semantic",
    "missing",
    "mixed",
)

_T = "patients"


def _col(name: str) -> ColumnRef:
    return ColumnRef(name)


def _ph(name: str) -> Placeholder:
    return Placeholder(name.upper())


def _eq(column: str) -> Comparison:
    return Comparison(_col(column), CompOp.EQ, _ph(column))


def _cmp(column: str, op: CompOp) -> Comparison:
    return Comparison(_col(column), op, _ph(column))


@dataclass(frozen=True)
class _Shape:
    """One SQL shape: 7 NL patterns + a SQL builder over slot values."""

    sid: str
    nl: dict[str, str]  # category -> NL pattern with {a}/{ph}/... slots
    build: Callable[[dict], Query]
    variants: tuple[dict, ...]  # slot dicts, one per benchmark query


def _attr_phrase(column: str) -> str:
    return {
        "name": "name",
        "age": "age",
        "gender": "gender",
        "diagnosis": "diagnosis",
        "length_of_stay": "length of stay",
    }[column]


# ----------------------------------------------------------------------
# Shape definitions (19 shapes x 3 variants = 57 queries)
# ----------------------------------------------------------------------

_SHAPES: tuple[_Shape, ...] = (
    _Shape(
        sid="filter-eq-star",
        nl={
            "naive": "show me all patients where {a} is {ph}",
            "syntactic": "where {a} is {ph} , show me all patients",
            "morphological": "show me all patient whose {a} equaled {ph}",
            "lexical": "display every patient with a {a} of {ph}",
            "semantic": "which people in the hospital have {a} {ph}",
            "missing": "patients with {ph}",
            "mixed": "where the {a} equaled {ph} , display the patients",
        },
        build=lambda s: Query(
            select=(Star(),), from_tables=(_T,), where=_eq(s["col"])
        ),
        variants=(
            {"col": "age", "a": "age"},
            {"col": "diagnosis", "a": "diagnosis"},
            {"col": "gender", "a": "gender"},
        ),
    ),
    _Shape(
        sid="filter-eq-name",
        nl={
            "naive": "what are the names of all patients where {a} is {ph}",
            "syntactic": "where {a} is {ph} , what are the names of patients",
            "morphological": "what are the names of patients whose {a} equals {ph}",
            "lexical": "list the names of all patients having a {a} of {ph}",
            "semantic": "who are the patients with {a} {ph}",
            "missing": "names of patients with {ph}",
            "mixed": "patients having {ph} as {a} , who are they",
        },
        build=lambda s: Query(
            select=(_col("name"),), from_tables=(_T,), where=_eq(s["col"])
        ),
        variants=(
            {"col": "diagnosis", "a": "diagnosis"},
            {"col": "age", "a": "age"},
            {"col": "length_of_stay", "a": "length of stay"},
        ),
    ),
    _Shape(
        sid="avg-stay-filter",
        nl={
            "naive": "what is the average length of stay of patients where {a} is {ph}",
            "syntactic": "where {a} is {ph} , what is the average length of stay of patients",
            "morphological": "what is the averaged length of stay of patients where {a} equaled {ph}",
            "lexical": "what is the mean length of stay of patients where {a} is {ph}",
            "semantic": "on average , how long do patients with {a} {ph} stay",
            "missing": "what is the average stay of patients who are {ph}",
            "mixed": "for patients of {a} {ph} , how long do they stay on average",
        },
        build=lambda s: Query(
            select=(Aggregate(AggFunc.AVG, _col("length_of_stay")),),
            from_tables=(_T,),
            where=_eq(s["col"]),
        ),
        variants=(
            {"col": "age", "a": "age"},
            {"col": "diagnosis", "a": "diagnosis"},
            {"col": "gender", "a": "gender"},
        ),
    ),
    _Shape(
        sid="count-filter",
        nl={
            "naive": "how many patients have {a} {ph}",
            "syntactic": "{a} {ph} , how many patients have it",
            "morphological": "how many patients are having {a} {ph}",
            "lexical": "what is the number of patients with {a} {ph}",
            "semantic": "how big is the group of patients with {a} {ph}",
            "missing": "how many patients with {ph}",
            "mixed": "count of the patients that had {a} {ph}",
        },
        build=lambda s: Query(
            select=(Aggregate(AggFunc.COUNT, Star()),),
            from_tables=(_T,),
            where=_eq(s["col"]),
        ),
        variants=(
            {"col": "gender", "a": "gender"},
            {"col": "diagnosis", "a": "diagnosis"},
            {"col": "age", "a": "age"},
        ),
    ),
    _Shape(
        sid="filter-gt-name",
        nl={
            "naive": "show the names of all patients with {a} greater than {ph}",
            "syntactic": "with {a} greater than {ph} , show the names of all patients",
            "morphological": "show the names of patients whose {a} exceeded {ph}",
            "lexical": "display the names of all patients with {a} above {ph}",
            "semantic": "who are the patients older than {ph}",
            "missing": "names of patients over {ph}",
            "mixed": "patients exceeding {a} {ph} , display their names",
        },
        build=lambda s: Query(
            select=(_col("name"),),
            from_tables=(_T,),
            where=_cmp(s["col"], CompOp.GT),
        ),
        variants=(
            {"col": "age", "a": "age"},
            {"col": "length_of_stay", "a": "length of stay"},
            {"col": "patient_id", "a": "patient id"},
        ),
    ),
    _Shape(
        sid="avg-plain",
        nl={
            "naive": "what is the average {a} of all patients",
            "syntactic": "of all patients , what is the average {a}",
            "morphological": "what is the averaged {a} across patients",
            "lexical": "what is the mean {a} of the patients",
            "semantic": "how {adj} are the patients typically",
            "missing": "average {a}",
            "mixed": "typical {a} over everyone , what is it",
        },
        build=lambda s: Query(
            select=(Aggregate(AggFunc.AVG, _col(s["col"])),), from_tables=(_T,)
        ),
        variants=(
            {"col": "age", "a": "age", "adj": "old"},
            {"col": "length_of_stay", "a": "length of stay", "adj": "long staying"},
            {"col": "patient_id", "a": "patient id", "adj": "numbered"},
        ),
    ),
    _Shape(
        sid="max-filter",
        nl={
            "naive": "what is the maximum {a} of patients where {b} is {ph}",
            "syntactic": "where {b} is {ph} , what is the maximum {a} of patients",
            "morphological": "what is the highest {a} among patients diagnosed {ph}",
            "lexical": "what is the largest {a} of patients with {b} {ph}",
            "semantic": "at most how high is the {a} for {ph} patients",
            "missing": "maximum {a} for {ph}",
            "mixed": "for {ph} cases , the highest {a} recorded",
        },
        build=lambda s: Query(
            select=(Aggregate(AggFunc.MAX, _col(s["col"])),),
            from_tables=(_T,),
            where=_eq(s["fcol"]),
        ),
        variants=(
            {"col": "length_of_stay", "a": "length of stay", "fcol": "diagnosis", "b": "diagnosis"},
            {"col": "age", "a": "age", "fcol": "diagnosis", "b": "diagnosis"},
            {"col": "age", "a": "age", "fcol": "gender", "b": "gender"},
        ),
    ),
    _Shape(
        sid="filter-lt-name",
        nl={
            "naive": "show the names of patients with {a} less than {ph}",
            "syntactic": "with {a} less than {ph} , show the patient names",
            "morphological": "show names of patients whose {a} stayed under {ph}",
            "lexical": "list the names of patients with {a} below {ph}",
            "semantic": "which patients are younger than {ph}",
            "missing": "names under {ph}",
            "mixed": "patients beneath {a} {ph} , list them by name",
        },
        build=lambda s: Query(
            select=(_col("name"),),
            from_tables=(_T,),
            where=_cmp(s["col"], CompOp.LT),
        ),
        variants=(
            {"col": "age", "a": "age"},
            {"col": "length_of_stay", "a": "length of stay"},
            {"col": "patient_id", "a": "patient id"},
        ),
    ),
    _Shape(
        sid="groupby-count",
        nl={
            "naive": "how many patients are there for each {a}",
            "syntactic": "for each {a} , how many patients are there",
            "morphological": "how many patients exist per {a} grouping",
            "lexical": "count the number of patients per {a}",
            "semantic": "what is the patient breakdown by {a}",
            "missing": "patients per {a}",
            "mixed": "per {a} , the patient count",
        },
        build=lambda s: Query(
            select=(_col(s["col"]), Aggregate(AggFunc.COUNT, Star())),
            from_tables=(_T,),
            group_by=(_col(s["col"]),),
        ),
        variants=(
            {"col": "diagnosis", "a": "diagnosis"},
            {"col": "gender", "a": "gender"},
            {"col": "age", "a": "age"},
        ),
    ),
    _Shape(
        sid="groupby-avg",
        nl={
            "naive": "what is the average {a} of patients for each {b}",
            "syntactic": "for each {b} , what is the average {a} of patients",
            "morphological": "what is the averaged {a} per {b} of the patients",
            "lexical": "show the mean {a} of patients per {b}",
            "semantic": "how does the typical {a} differ by {b}",
            "missing": "average {a} by {b}",
            "mixed": "per {b} , the mean {a} of the cases",
        },
        build=lambda s: Query(
            select=(_col(s["gcol"]), Aggregate(AggFunc.AVG, _col(s["col"]))),
            from_tables=(_T,),
            group_by=(_col(s["gcol"]),),
        ),
        variants=(
            {"col": "age", "a": "age", "gcol": "gender", "b": "gender"},
            {"col": "length_of_stay", "a": "length of stay", "gcol": "diagnosis", "b": "diagnosis"},
            {"col": "age", "a": "age", "gcol": "diagnosis", "b": "diagnosis"},
        ),
    ),
    _Shape(
        sid="filter-and",
        nl={
            "naive": "show all patients where {a} is {ph} and {b} is greater than {ph2}",
            "syntactic": "where {a} is {ph} and {b} is greater than {ph2} , show all patients",
            "morphological": "show the patients whose {a} equals {ph} and whose {b} exceeds {ph2}",
            "lexical": "display all patients with {a} {ph} and {b} above {ph2}",
            "semantic": "which {ph} patients are older than {ph2}",
            "missing": "patients with {ph} over {ph2}",
            "mixed": "having {a} {ph} plus {b} exceeding {ph2} , show those patients",
        },
        build=lambda s: Query(
            select=(Star(),),
            from_tables=(_T,),
            where=And((_eq(s["fcol"]), _cmp(s["gcol"], CompOp.GT))),
        ),
        variants=(
            {"fcol": "diagnosis", "a": "diagnosis", "gcol": "age", "b": "age",
             "ph": "@DIAGNOSIS", "ph2": "@AGE"},
            {"fcol": "gender", "a": "gender", "gcol": "age", "b": "age",
             "ph": "@GENDER", "ph2": "@AGE"},
            {"fcol": "diagnosis", "a": "diagnosis", "gcol": "length_of_stay",
             "b": "length of stay", "ph": "@DIAGNOSIS", "ph2": "@LENGTH_OF_STAY"},
        ),
    ),
    _Shape(
        sid="min-filter",
        nl={
            "naive": "what is the minimum {a} of patients where {b} is {ph}",
            "syntactic": "where {b} is {ph} , what is the minimum {a}",
            "morphological": "what is the smallest {a} recorded for {ph} patients",
            "lexical": "what is the lowest {a} of patients with {b} {ph}",
            "semantic": "how young can a {ph} patient be",
            "missing": "minimum {a} for {ph}",
            "mixed": "the smallest {a} among the {ph} group",
        },
        build=lambda s: Query(
            select=(Aggregate(AggFunc.MIN, _col(s["col"])),),
            from_tables=(_T,),
            where=_eq(s["fcol"]),
        ),
        variants=(
            {"col": "age", "a": "age", "fcol": "gender", "b": "gender"},
            {"col": "age", "a": "age", "fcol": "diagnosis", "b": "diagnosis"},
            {"col": "length_of_stay", "a": "length of stay", "fcol": "diagnosis", "b": "diagnosis"},
        ),
    ),
    _Shape(
        sid="superlative-nested",
        nl={
            "naive": "what is the name of the patient with the maximum {a}",
            "syntactic": "the patient with the maximum {a} , what is their name",
            "morphological": "what is the name of the patient having maximized {a}",
            "lexical": "what is the name of the patient with the highest {a}",
            "semantic": "who stayed in the hospital the longest",
            "missing": "name of the maximum {a} patient",
            "mixed": "the longest {a} case , give the name",
        },
        build=lambda s: Query(
            select=(_col("name"),),
            from_tables=(_T,),
            where=Comparison(
                _col(s["col"]),
                CompOp.EQ,
                Subquery(
                    Query(
                        select=(Aggregate(AggFunc.MAX, _col(s["col"])),),
                        from_tables=(_T,),
                    )
                ),
            ),
        ),
        variants=(
            {"col": "length_of_stay", "a": "length of stay"},
            {"col": "age", "a": "age"},
            {"col": "patient_id", "a": "patient id"},
        ),
    ),
    _Shape(
        sid="count-between",
        nl={
            "naive": "how many patients have {a} between {lo} and {hi}",
            "syntactic": "between {lo} and {hi} of {a} , how many patients are there",
            "morphological": "how many patients are aged between {lo} and {hi}",
            "lexical": "what is the number of patients with {a} ranging from {lo} to {hi}",
            "semantic": "how many patients fall in the {a} range {lo} to {hi}",
            "missing": "patients between {lo} and {hi}",
            "mixed": "count the cases ranging in {a} from {lo} to {hi}",
        },
        build=lambda s: Query(
            select=(Aggregate(AggFunc.COUNT, Star()),),
            from_tables=(_T,),
            where=Between(
                _col(s["col"]), _ph(s["col"] + ".LOW"), _ph(s["col"] + ".HIGH")
            ),
        ),
        variants=(
            {"col": "age", "a": "age", "lo": "@AGE.LOW", "hi": "@AGE.HIGH"},
            {"col": "length_of_stay", "a": "length of stay",
             "lo": "@LENGTH_OF_STAY.LOW", "hi": "@LENGTH_OF_STAY.HIGH"},
            {"col": "patient_id", "a": "patient id",
             "lo": "@PATIENT_ID.LOW", "hi": "@PATIENT_ID.HIGH"},
        ),
    ),
    _Shape(
        sid="distinct",
        nl={
            "naive": "show the distinct {a} of all patients",
            "syntactic": "of all patients , show the distinct {a}",
            "morphological": "show the distinct {a} values occurring for patients",
            "lexical": "list the different {a} of the patients",
            "semantic": "what {a} values appear among patients",
            "missing": "distinct {a}",
            "mixed": "every unique {a} occurring , list it",
        },
        build=lambda s: Query(
            select=(_col(s["col"]),), from_tables=(_T,), distinct=True
        ),
        variants=(
            {"col": "diagnosis", "a": "diagnosis"},
            {"col": "gender", "a": "gender"},
            {"col": "name", "a": "name"},
        ),
    ),
    _Shape(
        sid="order-desc",
        nl={
            "naive": "show the name and {a} of patients sorted by {a} in descending order",
            "syntactic": "sorted by {a} in descending order , show the name and {a} of patients",
            "morphological": "show names and {a} of patients ordered descendingly by {a}",
            "lexical": "display the name and {a} of patients ranked by {a} from highest to lowest",
            "semantic": "rank the patients by {a} starting with the highest",
            "missing": "name and {a} by descending {a}",
            "mixed": "ranked from highest {a} , display name and {a}",
        },
        build=lambda s: Query(
            select=(_col("name"), _col(s["col"])),
            from_tables=(_T,),
            order_by=(OrderItem(_col(s["col"]), desc=True),),
        ),
        variants=(
            {"col": "age", "a": "age"},
            {"col": "length_of_stay", "a": "length of stay"},
            {"col": "patient_id", "a": "patient id"},
        ),
    ),
    _Shape(
        sid="sum-filter",
        nl={
            "naive": "what is the total {a} of patients where {b} is {ph}",
            "syntactic": "where {b} is {ph} , what is the total {a} of patients",
            "morphological": "what is the summed {a} of patients diagnosed {ph}",
            "lexical": "what is the overall {a} of patients with {b} {ph}",
            "semantic": "altogether , how much {a} did {ph} patients accumulate",
            "missing": "total {a} for {ph}",
            "mixed": "{ph} cases , their combined {a}",
        },
        build=lambda s: Query(
            select=(Aggregate(AggFunc.SUM, _col(s["col"])),),
            from_tables=(_T,),
            where=_eq(s["fcol"]),
        ),
        variants=(
            {"col": "length_of_stay", "a": "length of stay", "fcol": "diagnosis", "b": "diagnosis"},
            {"col": "length_of_stay", "a": "length of stay", "fcol": "gender", "b": "gender"},
            {"col": "age", "a": "age", "fcol": "diagnosis", "b": "diagnosis"},
        ),
    ),
    _Shape(
        sid="filter-or",
        nl={
            "naive": "show all patients where {a} is {ph} or {b} is {ph2}",
            "syntactic": "where {a} is {ph} or {b} is {ph2} , show all patients",
            "morphological": "show the patients having {a} {ph} or showing {b} {ph2}",
            "lexical": "display every patient with {a} {ph} or {b} {ph2}",
            "semantic": "which patients match either {ph} or {ph2}",
            "missing": "patients with {ph} or {ph2}",
            "mixed": "either {a} {ph} or {b} {ph2} , show those patients",
        },
        build=lambda s: Query(
            select=(Star(),),
            from_tables=(_T,),
            where=Or((_eq(s["fcol"]), _eq(s["gcol"]))),
        ),
        variants=(
            {"fcol": "diagnosis", "a": "diagnosis", "gcol": "gender", "b": "gender",
             "ph": "@DIAGNOSIS", "ph2": "@GENDER"},
            {"fcol": "diagnosis", "a": "diagnosis", "gcol": "age", "b": "age",
             "ph": "@DIAGNOSIS", "ph2": "@AGE"},
            {"fcol": "gender", "a": "gender", "gcol": "age", "b": "age",
             "ph": "@GENDER", "ph2": "@AGE"},
        ),
    ),
    _Shape(
        sid="avg-above-nested",
        nl={
            "naive": "show the names of patients whose {a} is greater than the average {a}",
            "syntactic": "greater than the average {a} , show the names of such patients",
            "morphological": "show names of patients exceeding the averaged {a}",
            "lexical": "list the names of patients with {a} above the mean {a}",
            "semantic": "which patients are older than is typical",
            "missing": "names above average {a}",
            "mixed": "cases beyond the typical {a} , name them",
        },
        build=lambda s: Query(
            select=(_col("name"),),
            from_tables=(_T,),
            where=Comparison(
                _col(s["col"]),
                CompOp.GT,
                Subquery(
                    Query(
                        select=(Aggregate(AggFunc.AVG, _col(s["col"])),),
                        from_tables=(_T,),
                    )
                ),
            ),
        ),
        variants=(
            {"col": "age", "a": "age"},
            {"col": "length_of_stay", "a": "length of stay"},
            {"col": "patient_id", "a": "patient id"},
        ),
    ),
)


def build_patients_benchmark() -> Workload:
    """Construct all 399 Patients benchmark items."""
    schema = patients_schema()
    items: list[WorkloadItem] = []
    for shape in _SHAPES:
        if set(shape.nl) != set(CATEGORIES):
            raise BenchmarkError(
                f"shape {shape.sid!r} must define all categories"
            )
        for variant in shape.variants:
            slots = dict(variant)
            slots.setdefault("ph", "@" + variant.get("col", "").upper())
            sql = shape.build(variant)
            for category in CATEGORIES:
                nl = shape.nl[category].format(**slots)
                items.append(
                    WorkloadItem(
                        nl=nl,
                        sql=sql,
                        schema_name=schema.name,
                        category=category,
                        source=shape.sid,
                    )
                )
    expected = len(_SHAPES) * 3 * len(CATEGORIES)
    if len(items) != expected:  # pragma: no cover - construction invariant
        raise BenchmarkError(f"expected {expected} items, built {len(items)}")
    return Workload("patients", items)


#: Number of queries per category in the published benchmark.
QUERIES_PER_CATEGORY = len(_SHAPES) * 3
