"""Benchmark datasets: Patients, Spider substitute, GeoQuery substitute."""

from repro.bench.geoquery import GEOQUERY_SIZE, geoquery_workload
from repro.bench.patients import CATEGORIES, QUERIES_PER_CATEGORY, build_patients_benchmark
from repro.bench.spider import (
    DBPAL_ONLY_KINDS,
    HUMAN_STYLE,
    SPIDER_COMMON_KINDS,
    TEST_SCHEMAS,
    TRAIN_SCHEMAS,
    humanize,
    spider_schemas,
    spider_test_workload,
    spider_train_pairs,
)
from repro.bench.workloads import Workload, WorkloadItem

__all__ = [
    "CATEGORIES",
    "DBPAL_ONLY_KINDS",
    "GEOQUERY_SIZE",
    "HUMAN_STYLE",
    "QUERIES_PER_CATEGORY",
    "SPIDER_COMMON_KINDS",
    "TEST_SCHEMAS",
    "TRAIN_SCHEMAS",
    "Workload",
    "WorkloadItem",
    "build_patients_benchmark",
    "geoquery_workload",
    "humanize",
    "spider_schemas",
    "spider_test_workload",
    "spider_train_pairs",
]
