"""A GeoQuery-substitute tuning workload (paper §6.3.3).

The paper tunes the data-generation hyperparameters on "the full
GeoQuery query test set of 280 pairs" — a geography-domain workload
that is representative but independent of the actual test set.  We
build the equivalent: 280 geography questions phrased with the held-out
human style, spanning the common query kinds.
"""

from __future__ import annotations

import numpy as np

from repro.bench.spider import SPIDER_COMMON_KINDS, humanize
from repro.bench.workloads import Workload, WorkloadItem
from repro.core.config import GenerationConfig
from repro.core.generator import Generator
from repro.core.seed_templates import SEED_TEMPLATES
from repro.schema.catalog import geography_schema

#: Size of the published GeoQuery test set.
GEOQUERY_SIZE = 280


def geoquery_workload(size: int = GEOQUERY_SIZE, seed: int = 77) -> Workload:
    """Build the 280-pair geography tuning workload."""
    schema = geography_schema()
    templates = [
        t for t in SEED_TEMPLATES
        if t.sql_kind in SPIDER_COMMON_KINDS and t.paraphrase_kind.value == "naive"
    ]
    budget = max(2, (2 * size) // max(len(templates), 1))
    generator = Generator(
        schema,
        GenerationConfig(size_slotfills=budget, size_para=0, num_missing=0),
        templates,
        seed=seed,
    )
    pairs = generator.generate()
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(pairs))
    items = [
        WorkloadItem(
            nl=humanize(pairs[i].nl, rng),
            sql=pairs[i].sql,
            schema_name=schema.name,
            source="geoquery",
        )
        for i in order[:size]
    ]
    return Workload("geoquery-substitute", items)
