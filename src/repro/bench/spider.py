"""A Spider-substitute benchmark (paper §6.1; DESIGN.md substitution #3).

Spider's defining properties, reproduced synthetically because the real
dataset is not available offline:

* **disjoint train/test schemas** across diverse domains — models are
  evaluated on databases never seen in training;
* **human NL distribution** — test questions (and the human-annotated
  training set) are phrased with a *held-out* paraphrase table
  (:data:`HUMAN_STYLE`), deliberately disjoint from the synthetic
  PPDB used by DBPal's augmentation, so test phrasing is out of
  distribution for every training configuration;
* **difficulty levels** — each query is classified easy/medium/hard/
  very hard by the Spider heuristic (:mod:`repro.sql.difficulty`);
* **partial pattern overlap** (for Table 4) — the "Spider" training
  set contains query patterns DBPal's templates lack (LIKE filters,
  two-key GROUP BY, join+nested combos), DBPal generates patterns
  Spider-train lacks (BETWEEN, EXISTS, DISTINCT), and the test set adds
  patterns in *neither* source (NOT LIKE, HAVING over AVG).
"""

from __future__ import annotations

import numpy as np

from repro.bench.workloads import Workload, WorkloadItem
from repro.core.generator import Generator
from repro.core.seed_templates import SEED_TEMPLATES
from repro.core.templates import Family, TrainingPair, pick_column, pluralize
from repro.schema.catalog import load_schema
from repro.schema.schema import Schema
from repro.sql.ast import (
    JOIN_PLACEHOLDER,
    AggFunc,
    Aggregate,
    ColumnRef,
    CompOp,
    Comparison,
    Like,
    Placeholder,
    Query,
    Star,
    Subquery,
)

#: Domains whose schemas appear in training.
TRAIN_SCHEMAS = ("university", "retail", "library", "restaurants", "movies", "employees")
#: Domains reserved for testing (never seen by the baseline model).
TEST_SCHEMAS = ("flights", "automotive", "social", "geography")

#: Seed-template kinds present in the human-annotated training set.
#: BETWEEN / EXISTS / DISTINCT are deliberately excluded: those patterns
#: exist only in DBPal's synthesized data (Table 4's "DBPal" bucket).
SPIDER_COMMON_KINDS = frozenset(
    """
    select_all select_col select_cols2 filter_select_all filter_select_col
    filter_two filter_or agg agg_filter count_all count_filter
    groupby_agg groupby_count order_sort order_col_sort
    superlative_nested nested_avg_cmp join_select join_agg join_count
    join_groupby in_subquery
    """.split()
)

#: Kinds only DBPal generates (never in the Spider-substitute train set).
DBPAL_ONLY_KINDS = frozenset(
    {"filter_between", "exists_subquery", "select_distinct", "nested_filter",
     "groupby_having"}
)

#: Held-out paraphrase table: phrase -> human-style replacement.
#: Disjoint from repro.nlp.ppdb.PARAPHRASE_GROUPS by construction
#: (verified in tests), so DBPal's augmentation cannot see these.
HUMAN_STYLE: dict[str, str] = {
    "show me": "i would like to see",
    "show": "reveal",
    "list": "write down",
    "give me": "hand me",
    "display": "bring up",
    "what is": "i want to know",
    "what are": "i wonder what are",
    "find": "dig up",
    "tell me": "inform me about",
    "how many": "the tally of",
    "number of": "tally of",
    "average": "usual",
    "total": "accumulated",
    "maximum": "peak",
    "minimum": "bottom",
    "greater than": "in excess of",
    "less than": "beneath",
    "for each": "for every single",
    "sorted by": "arranged according to",
    "ordered by": "lined up by",
    "all": "the full set of",
    "whose": "for which the",
    "with": "that come with",
}

_PREFIXES = ("please", "could you", "i need to know", "hey ,", "")
_SUFFIXES = ("", "", "in the database", "right now", "thanks")


def humanize(nl: str, rng: np.random.Generator, intensity: float = 0.75) -> str:
    """Rewrite generated NL into the held-out human style."""
    out = nl
    applied = 0
    for phrase, replacement in HUMAN_STYLE.items():
        if applied >= 3:
            break
        if phrase in out and rng.random() < intensity:
            out = out.replace(phrase, replacement, 1)
            applied += 1
    if rng.random() < 0.3:
        prefix = _PREFIXES[int(rng.integers(len(_PREFIXES)))]
        if prefix:
            out = f"{prefix} {out}"
    if rng.random() < 0.2:
        suffix = _SUFFIXES[int(rng.integers(len(_SUFFIXES)))]
        if suffix:
            out = f"{out} {suffix}"
    return out


def spider_schemas() -> tuple[list[Schema], list[Schema]]:
    """(train schemas, test schemas)."""
    return (
        [load_schema(name) for name in TRAIN_SCHEMAS],
        [load_schema(name) for name in TEST_SCHEMAS],
    )


# ----------------------------------------------------------------------
# Spider-only query kinds (patterns DBPal's templates do not produce)
# ----------------------------------------------------------------------


def _like_query(schema: Schema, rng: np.random.Generator, negated: bool = False):
    table = schema.tables[int(rng.integers(len(schema.tables)))]
    text_col = pick_column(table, rng, numeric=False)
    out_col = pick_column(table, rng)
    if text_col is None or out_col is None:
        return None
    query = Query(
        select=(ColumnRef(out_col.name),),
        from_tables=(table.name,),
        where=Like(
            ColumnRef(text_col.name),
            Placeholder(text_col.name.upper()),
            negated=negated,
        ),
    )
    verb = "does not resemble" if negated else "resembles"
    nl = (
        f"write down the {out_col.annotation} of {pluralize(table.annotation)} "
        f"where the {text_col.annotation} {verb} @{text_col.name.upper()}"
    )
    return nl, query


def _groupby2_query(schema: Schema, rng: np.random.Generator):
    table = schema.tables[int(rng.integers(len(schema.tables)))]
    first = pick_column(table, rng, numeric=False)
    if first is None:
        return None
    second = pick_column(table, rng, numeric=False, exclude=(first.name,))
    if second is None:
        return None
    query = Query(
        select=(
            ColumnRef(first.name),
            ColumnRef(second.name),
            Aggregate(AggFunc.COUNT, Star()),
        ),
        from_tables=(table.name,),
        group_by=(ColumnRef(first.name), ColumnRef(second.name)),
    )
    nl = (
        f"the tally of {pluralize(table.annotation)} for every single "
        f"{first.annotation} and {second.annotation} combination"
    )
    return nl, query


def _join_nested_query(schema: Schema, rng: np.random.Generator):
    if not schema.foreign_keys:
        return None
    fk = schema.foreign_keys[int(rng.integers(len(schema.foreign_keys)))]
    main = schema.table(fk.table)
    other = schema.table(fk.ref_table)
    value_col = pick_column(main, rng, numeric=True)
    group_col = pick_column(other, rng, numeric=False)
    if value_col is None or group_col is None:
        return None
    inner = Query(
        select=(Aggregate(AggFunc.AVG, ColumnRef(value_col.name)),),
        from_tables=(main.name,),
    )
    query = Query(
        select=(
            ColumnRef(group_col.name, table=other.name),
            Aggregate(AggFunc.AVG, ColumnRef(value_col.name, table=main.name)),
        ),
        from_tables=(JOIN_PLACEHOLDER,),
        where=Comparison(
            ColumnRef(value_col.name, table=main.name), CompOp.GT, Subquery(inner)
        ),
        group_by=(ColumnRef(group_col.name, table=other.name),),
    )
    nl = (
        f"for every single {other.annotation} {group_col.annotation} , the usual "
        f"{value_col.annotation} of {pluralize(main.annotation)} that are above "
        f"the overall usual {value_col.annotation}"
    )
    return nl, query


def _having_avg_query(schema: Schema, rng: np.random.Generator):
    table = schema.tables[int(rng.integers(len(schema.tables)))]
    group_col = pick_column(table, rng, numeric=False)
    value_col = pick_column(table, rng, numeric=True)
    if group_col is None or value_col is None:
        return None
    query = Query(
        select=(ColumnRef(group_col.name),),
        from_tables=(table.name,),
        group_by=(ColumnRef(group_col.name),),
        having=Comparison(
            Aggregate(AggFunc.AVG, ColumnRef(value_col.name)),
            CompOp.GT,
            Placeholder("NUM"),
        ),
    )
    nl = (
        f"which {group_col.annotation} of {pluralize(table.annotation)} have a "
        f"usual {value_col.annotation} in excess of @NUM"
    )
    return nl, query


# ----------------------------------------------------------------------
# Training set and test workload
# ----------------------------------------------------------------------


def spider_train_pairs(
    pairs_per_schema: int = 300, seed: int = 100
) -> list[TrainingPair]:
    """The human-annotated training set stand-in.

    Common-kind queries generated over the train schemas, rephrased
    with the held-out human style, plus the Spider-only kinds (LIKE,
    two-key GROUP BY, join+nested).
    """
    train, _ = spider_schemas()
    templates = [
        t for t in SEED_TEMPLATES
        if t.sql_kind in SPIDER_COMMON_KINDS and t.paraphrase_kind.value == "naive"
    ]
    rng = np.random.default_rng(seed)
    pairs: list[TrainingPair] = []
    for offset, schema in enumerate(train):
        from repro.core.config import GenerationConfig

        budget = max(2, -(-pairs_per_schema // max(len(templates), 1)))
        generator = Generator(
            schema,
            GenerationConfig(size_slotfills=budget, size_para=0, num_missing=0),
            templates,
            seed=seed + offset,
        )
        generated = generator.generate()
        order = rng.permutation(len(generated))  # avoid template-order bias
        for index in order[:pairs_per_schema]:
            pair = generated[index]
            pairs.append(
                pair.with_nl(humanize(pair.nl, rng), augmentation="manual")
            )
        # Spider-only kinds: a handful per schema.
        for factory in (_like_query, _groupby2_query, _join_nested_query):
            for _ in range(4):
                built = factory(schema, rng)
                if built is None:
                    continue
                nl, query = built
                pairs.append(
                    TrainingPair(
                        nl=nl,
                        sql=query,
                        template_id=f"spider-{factory.__name__.strip('_')}",
                        family=Family.FILTER,
                        schema_name=schema.name,
                        augmentation="manual",
                    )
                )
    return pairs


def spider_test_workload(items_per_schema: int = 24, seed: int = 200) -> Workload:
    """The test workload over the held-out schemas."""
    _, test = spider_schemas()
    rng = np.random.default_rng(seed)
    items: list[WorkloadItem] = []
    common_count = max(1, items_per_schema - 12)
    for offset, schema in enumerate(test):
        items.extend(
            _generated_items(
                schema, SPIDER_COMMON_KINDS, common_count, rng, seed + offset, "common"
            )
        )
        items.extend(
            _generated_items(
                schema, DBPAL_ONLY_KINDS, 4, rng, seed + 50 + offset, "dbpal-only"
            )
        )
        for factory, count, source in (
            (_like_query, 2, "spider-only"),
            (_groupby2_query, 1, "spider-only"),
            (_join_nested_query, 1, "spider-only"),
            (_having_avg_query, 2, "unseen"),
        ):
            for _ in range(count):
                built = factory(schema, rng)
                if built is None:
                    continue
                nl, query = built
                items.append(
                    WorkloadItem(
                        nl=humanize(nl, rng, intensity=0.4),
                        sql=query,
                        schema_name=schema.name,
                        source=source,
                    )
                )
        for _ in range(2):  # NOT LIKE: the second "unseen" pattern
            built = _like_query(schema, rng, negated=True)
            if built is None:
                continue
            nl, query = built
            items.append(
                WorkloadItem(
                    nl=humanize(nl, rng, intensity=0.4),
                    sql=query,
                    schema_name=schema.name,
                    source="unseen",
                )
            )
    return Workload("spider-substitute", items)


def _generated_items(schema, kinds, count, rng, seed, source) -> list[WorkloadItem]:
    """Items produced by the seed-template generator, humanized."""
    from repro.core.config import GenerationConfig

    templates = [
        t for t in SEED_TEMPLATES
        if t.sql_kind in kinds and t.paraphrase_kind.value == "naive"
    ]
    generator = Generator(
        schema,
        GenerationConfig(size_slotfills=2, size_para=0, num_missing=0),
        templates,
        seed=seed,
    )
    pairs = generator.generate()
    order = rng.permutation(len(pairs))
    chosen = [pairs[i] for i in order[:count]]
    return [
        WorkloadItem(
            nl=humanize(pair.nl, rng),
            sql=pair.sql,
            schema_name=schema.name,
            source=source,
        )
        for pair in chosen
    ]
