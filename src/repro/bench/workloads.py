"""Workload types shared by the benchmark datasets and the harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.sql.ast import Query
from repro.sql.difficulty import Difficulty, classify
from repro.sql.printer import to_sql


@dataclass(frozen=True)
class WorkloadItem:
    """One evaluation example: a (pre-anonymized) NL question + gold SQL.

    Following the paper (§4.1), evaluation "test sets [have]
    pre-anonymized values" — NL carries placeholders, and gold SQL
    matches the model's placeholder-level output.
    """

    nl: str
    sql: Query
    schema_name: str
    category: str = ""  # linguistic category (Patients benchmark)
    source: str = ""  # provenance tag (e.g. which generator produced it)

    @property
    def sql_text(self) -> str:
        return to_sql(self.sql)

    @property
    def difficulty(self) -> Difficulty:
        return classify(self.sql)


@dataclass
class Workload:
    """A named list of evaluation items with filtering helpers."""

    name: str
    items: list[WorkloadItem] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[WorkloadItem]:
        return iter(self.items)

    def by_category(self, category: str) -> "Workload":
        return Workload(
            f"{self.name}/{category}",
            [i for i in self.items if i.category == category],
        )

    def by_difficulty(self, difficulty: Difficulty) -> "Workload":
        return Workload(
            f"{self.name}/{difficulty.value}",
            [i for i in self.items if i.difficulty is difficulty],
        )

    def by_schema(self, schema_name: str) -> "Workload":
        return Workload(
            f"{self.name}/{schema_name}",
            [i for i in self.items if i.schema_name == schema_name],
        )

    def categories(self) -> list[str]:
        seen: list[str] = []
        for item in self.items:
            if item.category and item.category not in seen:
                seen.append(item.category)
        return seen

    def subsample(self, n: int, seed: int = 0) -> "Workload":
        if n >= len(self.items):
            return Workload(self.name, list(self.items))
        import numpy as np

        rng = np.random.default_rng(seed)
        idx = sorted(rng.choice(len(self.items), size=n, replace=False))
        return Workload(self.name, [self.items[i] for i in idx])
