"""Cross-backend differential suite: memory ≡ sqlite, bit-identically.

The adapter contract (:mod:`repro.adapters.base`) says two correct
backends return ``==``-comparable normalized rows — same values, same
labels, same order.  This suite holds the sqlite adapter to that
against the in-memory reference engine over:

* the **seed corpora** of two schemas (every distinct canonical query
  the training pipeline synthesizes, ``@JOIN`` expanded, placeholders
  bound to constants present in the database), and
* **randomized databases**: every built-in schema populated at several
  seeds, probed with the same join/filter/aggregate query generator
  the executor differential uses.

Divergence rules: when the reference engine raises, the sqlite arm
must fail inside the Repro exception hierarchy (``E_BACKEND`` /
``E_DIALECT`` / execution errors) — never a silently different result,
never a raw ``sqlite3`` exception.
"""

from __future__ import annotations

import pytest

from repro.adapters import MemoryAdapter, SqliteAdapter
from repro.db import populate
from repro.errors import ReproError
from repro.schema import SCHEMA_FACTORIES, load_schema
from repro.sql.normalize import canonical_sql
from tests.test_db_executor_diff import corpus_queries, schema_probe_queries

pytestmark = pytest.mark.adapters


@pytest.fixture(scope="module")
def patients_backends(patients_db):
    with SqliteAdapter.from_database(patients_db) as sqlite_arm:
        yield MemoryAdapter(patients_db), sqlite_arm


@pytest.fixture(scope="module")
def geography_backends(geography_db):
    with SqliteAdapter.from_database(geography_db) as sqlite_arm:
        yield MemoryAdapter(geography_db), sqlite_arm


def assert_backends_agree(query, memory, sqlite_arm) -> bool:
    """Sqlite output must be ``==`` to memory output whenever the
    reference succeeds; otherwise sqlite must stay inside ReproError.

    Returns whether the query was actually compared (both arms ran).
    """
    try:
        expected = memory.execute(query)
    except ReproError:
        with pytest.raises(ReproError):
            sqlite_arm.execute(query)
        return False
    try:
        actual = sqlite_arm.execute(query)
    except ReproError:
        # The sqlite emitter may refuse a query the reference engine
        # interprets (e.g. DISTINCT subqueries with LIMIT); a named
        # refusal is allowed, a wrong answer is not.
        return False
    assert actual == expected, canonical_sql(query)
    return True


# ----------------------------------------------------------------------
# Seed-corpus differentials
# ----------------------------------------------------------------------


def test_patients_corpus_cross_backend(patients_corpus, patients_db, patients_backends):
    memory, sqlite_arm = patients_backends
    queries = corpus_queries(patients_corpus, patients_db)
    assert len(queries) > 50
    compared = sum(
        assert_backends_agree(query, memory, sqlite_arm) for query in queries
    )
    # Nearly every corpus query must actually run on both arms — the
    # differential is vacuous otherwise.
    assert compared >= len(queries) * 0.9


def test_geography_corpus_cross_backend(
    geography_corpus, geography_db, geography_backends
):
    memory, sqlite_arm = geography_backends
    queries = corpus_queries(geography_corpus, geography_db)
    assert len(queries) > 50
    compared = sum(
        assert_backends_agree(query, memory, sqlite_arm) for query in queries
    )
    assert compared >= len(queries) * 0.9


def test_geography_cross_backend_exercises_joins(
    geography_corpus, geography_db, geography_backends
):
    memory, sqlite_arm = geography_backends
    joins = [
        q
        for q in corpus_queries(geography_corpus, geography_db)
        if len(q.from_tables) > 1
    ]
    assert joins, "corpus differential never exercised a join"
    compared = sum(
        assert_backends_agree(query, memory, sqlite_arm) for query in joins
    )
    assert compared > 0


# ----------------------------------------------------------------------
# Randomized schemas and databases
# ----------------------------------------------------------------------


@pytest.mark.parametrize("schema_name", sorted(SCHEMA_FACTORIES))
@pytest.mark.parametrize("seed", [0, 17])
def test_randomized_database_cross_backend(schema_name, seed):
    database = populate(load_schema(schema_name), rows_per_table=25, seed=seed)
    memory = MemoryAdapter(database)
    with SqliteAdapter.from_database(database) as sqlite_arm:
        compared = 0
        for query in schema_probe_queries(database):
            compared += assert_backends_agree(query, memory, sqlite_arm)
        assert compared > 0
