"""Tests for the balanced-sampling generator."""

from collections import Counter

import pytest

from repro.core import GenerationConfig, Generator, generate_for_schemas
from repro.core.templates import Family
from repro.errors import GenerationError
from repro.sql import try_parse


class TestGenerate:
    def test_deterministic(self, patients):
        config = GenerationConfig(size_slotfills=4)
        first = Generator(patients, config, seed=5).generate()
        second = Generator(patients, config, seed=5).generate()
        assert [p.key() for p in first] == [p.key() for p in second]

    def test_seed_changes_output(self, patients):
        config = GenerationConfig(size_slotfills=4)
        first = Generator(patients, config, seed=5).generate()
        second = Generator(patients, config, seed=6).generate()
        assert [p.key() for p in first] != [p.key() for p in second]

    def test_no_duplicates(self, patients):
        pairs = Generator(patients, GenerationConfig(size_slotfills=6), seed=1).generate()
        keys = [p.key() for p in pairs]
        assert len(keys) == len(set(keys))

    def test_all_sql_parses(self, geography):
        pairs = Generator(geography, GenerationConfig(size_slotfills=3), seed=2).generate()
        for pair in pairs:
            assert try_parse(pair.sql_text) is not None

    def test_placeholders_consistent_between_nl_and_sql(self, patients):
        pairs = Generator(patients, GenerationConfig(size_slotfills=4), seed=3).generate()
        for pair in pairs:
            for placeholder in pair.sql.placeholders():
                # NL carries the unqualified form of each SQL placeholder.
                unqualified = "@" + placeholder.name.split(".")[-1] \
                    if placeholder.table else str(placeholder)
                names = placeholder.name.upper().split(".")
                assert any(
                    token.startswith("@") and token.lstrip("@").split(".")[-1] in names
                    for token in pair.nl.split()
                ), (pair.nl, pair.sql_text)

    def test_schema_name_recorded(self, patients):
        pairs = Generator(patients, GenerationConfig(size_slotfills=2), seed=0).generate()
        assert all(p.schema_name == "patients" for p in pairs)


class TestBalancing:
    def test_size_slotfills_caps_instances(self, patients):
        small = Generator(patients, GenerationConfig(size_slotfills=2), seed=1).generate()
        large = Generator(patients, GenerationConfig(size_slotfills=8), seed=1).generate()
        assert len(large) > len(small)
        # The cap holds per template; GROUP BY variants triggered by
        # groupby_p are attributed to groupby template ids and may
        # exceed their own cap, so exclude them.
        counts = Counter(
            p.template_id
            for p in small
            if not p.template_id.startswith(("groupby", "join_groupby"))
        )
        assert max(counts.values()) <= 2

    def test_agg_boost_shifts_balance(self, patients):
        low = Generator(
            patients, GenerationConfig(size_slotfills=6, agg_boost=0.5, groupby_p=0.0), seed=1
        ).generate()
        high = Generator(
            patients, GenerationConfig(size_slotfills=6, agg_boost=2.0, groupby_p=0.0), seed=1
        ).generate()
        low_share = sum(p.family is Family.AGGREGATE for p in low) / len(low)
        high_share = sum(p.family is Family.AGGREGATE for p in high) / len(high)
        assert high_share > low_share

    def test_zero_boost_removes_family(self, geography):
        pairs = Generator(
            geography,
            GenerationConfig(size_slotfills=4, join_boost=0.0),
            seed=1,
        ).generate()
        assert not any(p.family is Family.JOIN for p in pairs)

    def test_groupby_p_zero_only_template_groupbys(self, patients):
        pairs = Generator(
            patients, GenerationConfig(size_slotfills=4, groupby_p=0.0), seed=1
        ).generate()
        groupby = [p for p in pairs if p.family is Family.GROUPBY]
        # Only instances of dedicated GROUPBY templates remain.
        assert all(p.template_id.startswith("groupby") for p in groupby)

    def test_groupby_p_one_adds_variants(self, patients):
        none = Generator(
            patients, GenerationConfig(size_slotfills=4, groupby_p=0.0), seed=1
        ).generate()
        many = Generator(
            patients, GenerationConfig(size_slotfills=4, groupby_p=1.0), seed=1
        ).generate()
        share = lambda pairs: sum(p.family is Family.GROUPBY for p in pairs)
        assert share(many) > share(none)


class TestMultiSchema:
    def test_generate_for_schemas(self, patients, geography):
        pairs = generate_for_schemas(
            [patients, geography], GenerationConfig(size_slotfills=2), seed=0
        )
        names = {p.schema_name for p in pairs}
        assert names == {"patients", "geography"}

    def test_single_table_schema_skips_joins(self, patients):
        pairs = Generator(patients, GenerationConfig(size_slotfills=4), seed=0).generate()
        assert not any(p.family is Family.JOIN for p in pairs)

    def test_empty_templates_rejected(self, patients):
        with pytest.raises(GenerationError):
            Generator(patients, templates=[])
