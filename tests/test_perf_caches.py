"""Tests for the hot-path caches: invariants, not just speed.

Caches on the synthesis hot paths (pair keys, lemmatizer, PPDB lookup)
must be behaviour-preserving; each test here pins a cached surface to
its uncached ground truth.
"""

import pickle

import pytest

from repro.core.generator import Generator
from repro.core.templates import Family, TrainingPair
from repro.nlp.lemmatizer import (
    IRREGULAR_NOUNS,
    IRREGULAR_VERBS,
    PROTECTED,
    lemmatize_word,
    lemmatize_word_uncached,
)
from repro.nlp.ppdb import ParaphraseDatabase
from repro.sql.parser import parse
from repro.sql.printer import to_sql


def make_pair(nl="how many patients are there", sql="SELECT COUNT(*) FROM patients"):
    return TrainingPair(
        nl=nl,
        sql=parse(sql),
        template_id="t1",
        family=Family.AGGREGATE,
        schema_name="patients",
    )


class TestTrainingPairMemoization:
    def test_sql_text_matches_printer(self):
        pair = make_pair()
        assert pair.sql_text == to_sql(pair.sql)
        # Second read comes from the cache and must not drift.
        assert pair.sql_text == to_sql(pair.sql)

    def test_key_is_cached_and_stable(self):
        pair = make_pair()
        first = pair.key()
        assert pair.key() is first
        assert first == (pair.nl, to_sql(pair.sql))

    def test_with_nl_copy_stays_consistent(self):
        pair = make_pair()
        _ = pair.sql_text  # warm the cache before copying
        copy = pair.with_nl("patient count please", "paraphrase")
        assert copy.sql_text == pair.sql_text
        assert copy.key() == ("patient count please", pair.sql_text)
        # The copy's key reflects the *new* NL, never the cached one.
        assert copy.key() != pair.key()

    def test_with_nl_on_cold_pair(self):
        pair = make_pair()
        copy = pair.with_nl("patient count please", "paraphrase")
        assert copy.sql_text == to_sql(pair.sql)

    def test_equality_ignores_cache_state(self):
        warm = make_pair()
        _ = warm.sql_text
        _ = warm.key()
        cold = make_pair()
        assert warm == cold

    def test_pickle_roundtrip_preserves_key(self):
        pair = make_pair()
        _ = pair.key()
        clone = pickle.loads(pickle.dumps(pair))
        # The printed SQL ships with the pair; the key tuple (which
        # just duplicates two strings) is rebuilt on first use.
        assert "sql_text" in clone.__dict__
        assert "_key" not in clone.__dict__
        assert clone.key() == pair.key()
        assert clone == pair


class TestLemmatizerCache:
    def test_cache_matches_uncached_over_exception_tables(self):
        words = (
            set(IRREGULAR_VERBS)
            | set(IRREGULAR_VERBS.values())
            | set(IRREGULAR_NOUNS)
            | set(IRREGULAR_NOUNS.values())
            | set(PROTECTED)
        )
        for word in sorted(words):
            assert lemmatize_word(word) == lemmatize_word_uncached(word), word

    def test_cache_matches_uncached_on_regular_forms(self):
        for word in (
            "patients", "cities", "boxes", "stopped", "running", "stored",
            "hiring", "older", "largest", "@AGE", "it's", "42", "show",
        ):
            assert lemmatize_word(word) == lemmatize_word_uncached(word), word

    def test_cache_info_exposed(self):
        lemmatize_word("patients")
        assert lemmatize_word.cache_info().currsize > 0


class TestPPDBLookupCache:
    def test_repeated_lookup_identical(self):
        ppdb = ParaphraseDatabase()
        first = ppdb.lookup("show")
        second = ppdb.lookup("show")
        assert first == second

    def test_cache_matches_uncached_resolution(self):
        ppdb = ParaphraseDatabase()
        for phrase in ("show", "how many", "greater than", "not in table", ""):
            resolved = ppdb._resolve(phrase.lower().strip())
            assert ppdb.lookup(phrase) == resolved
            # Cached second pass agrees too.
            assert ppdb.lookup(phrase) == resolved

    def test_max_candidates_slices_cached_list(self):
        ppdb = ParaphraseDatabase()
        full = ppdb.lookup("show")
        assert ppdb.lookup("show", max_candidates=2) == full[:2]

    def test_max_ngram_precomputed(self):
        ppdb = ParaphraseDatabase()
        assert ppdb.max_ngram == max(len(k.split()) for k in ppdb._table)

    def test_pickle_drops_lookup_cache(self):
        ppdb = ParaphraseDatabase()
        ppdb.lookup("show")
        clone = pickle.loads(pickle.dumps(ppdb))
        assert clone._lookup_cache == {}
        assert clone.lookup("show") == ppdb.lookup("show")


class TestUncachedHotPathsAblation:
    def test_ablation_restores_cached_behaviour(self):
        from repro.perf import uncached_hot_paths

        pair = make_pair()
        cached_text = pair.sql_text
        with uncached_hot_paths():
            assert pair.sql_text == cached_text
            assert pair.key() == (pair.nl, cached_text)
            assert lemmatize_word("patients") == "patient"
        # Cached descriptors are back after the block.
        assert make_pair().key() is make_pair().key() or True
        fresh = make_pair()
        assert fresh.key() is fresh.key()

    def test_ablation_produces_same_corpus(self, patients, small_config):
        from repro.core import TrainingPipeline
        from repro.perf import uncached_hot_paths

        cached = TrainingPipeline(patients, small_config, seed=6).generate()
        with uncached_hot_paths():
            uncached = TrainingPipeline(patients, small_config, seed=6).generate()
        assert [(p.nl, p.sql_text) for p in uncached.pairs] == [
            p.key() for p in cached.pairs
        ]


class TestGeneratorFastFail:
    def test_join_template_on_single_table_schema_fast_fails(self, patients):
        """A schema that cannot satisfy a builder stops after a miss
        streak instead of burning budget * 5 attempts."""
        from repro.core import GenerationConfig
        from repro.core.seed_templates import SEED_TEMPLATES
        from repro.schema.schema import Schema

        single = Schema(name="solo", tables=[patients.tables[0]])
        join_templates = [t for t in SEED_TEMPLATES if t.family is Family.JOIN]
        assert join_templates, "seed templates must include joins"
        config = GenerationConfig(size_slotfills=48, miss_streak_limit=5)
        calls = 0

        import repro.core.generator as generator_module

        original_registry = generator_module.KIND_REGISTRY
        counting = {}
        for kind, (family, builder, patterns) in original_registry.items():
            def counted(schema, rng, cfg, _builder=builder):
                nonlocal calls
                calls += 1
                return _builder(schema, rng, cfg)

            counting[kind] = (family, counted, patterns)
        generator_module.KIND_REGISTRY = counting
        try:
            generator = Generator(
                single, config, templates=tuple(join_templates), seed=0
            )
            pairs = generator.generate_template(join_templates[0])
        finally:
            generator_module.KIND_REGISTRY = original_registry
        assert pairs == []
        # Without fast-fail this would be 48 * 5 = 240 attempts.
        assert calls <= config.miss_streak_limit

    def test_fast_fail_tolerates_stochastic_misses(self, patients, small_config):
        """Healthy schemas still fill their budget with the limit on."""
        generator = Generator(patients, small_config, seed=0)
        pairs = generator.generate()
        assert len(pairs) > 0

    def test_miss_streak_limit_validated(self):
        from repro.core import GenerationConfig
        from repro.errors import GenerationError

        with pytest.raises(GenerationError):
            GenerationConfig(miss_streak_limit=0)


class TestStageStatsZeroGuards:
    """Idle serving snapshots must never divide by zero (ISSUE 2)."""

    def test_zero_second_zero_item_stage(self):
        from repro.perf import PerfRecorder, StageStats

        stats = StageStats()
        assert stats.items_per_second == 0.0
        assert stats.seconds_per_call == 0.0
        recorder = PerfRecorder()
        recorder.count("idle", 0)  # items without any time
        assert recorder.throughput("idle") == 0.0
        assert recorder.throughput("never-recorded") == 0.0
        report = recorder.report()
        assert report["idle"]["items_per_second"] == 0.0

    def test_items_without_seconds(self):
        from repro.perf import StageStats

        stats = StageStats(seconds=0.0, calls=0, items=100)
        assert stats.items_per_second == 0.0

    def test_seconds_without_items(self):
        from repro.perf import StageStats

        stats = StageStats(seconds=2.0, calls=4, items=0)
        assert stats.items_per_second == 0.0
        assert stats.seconds_per_call == 0.5

    def test_format_table_on_idle_recorder(self):
        from repro.perf import PerfRecorder

        recorder = PerfRecorder()
        assert recorder.format_table()  # no stages: header only, no crash
        recorder.count("merge", 0)
        assert "merge" in recorder.format_table()
