"""Shared fixtures for the test suite.

Expensive objects (populated databases, generated corpora, a trained
retrieval model) are session-scoped; neural-model training tests build
their own tiny corpora instead.
"""

from __future__ import annotations

import pytest

from repro.core import GenerationConfig, TrainingPipeline
from repro.db import populate
from repro.schema import load_schema, patients_schema


@pytest.fixture(scope="session")
def patients():
    return patients_schema()


@pytest.fixture(scope="session")
def geography():
    return load_schema("geography")


@pytest.fixture(scope="session")
def retail():
    return load_schema("retail")


@pytest.fixture(scope="session")
def patients_db(patients):
    return populate(patients, rows_per_table=30, seed=3)


@pytest.fixture(scope="session")
def geography_db(geography):
    return populate(geography, rows_per_table=25, seed=5)


@pytest.fixture(scope="session")
def small_config():
    return GenerationConfig(size_slotfills=4)


@pytest.fixture(scope="session")
def patients_corpus(patients, small_config):
    return TrainingPipeline(patients, small_config, seed=1).generate()


@pytest.fixture(scope="session")
def geography_corpus(geography, small_config):
    return TrainingPipeline(geography, small_config, seed=2).generate()


@pytest.fixture(scope="session")
def retrieval_nlidb(patients_db):
    from repro.neural import RetrievalModel
    from repro.runtime import DBPal

    nlidb = DBPal(patients_db)
    nlidb.train(RetrievalModel(), config=GenerationConfig(size_slotfills=4), seed=0)
    return nlidb
