"""Code-table drift gate: DESIGN.md vs the source-of-truth registries.

Diagnostic codes (``repro.analysis.diagnostics.LINT_CODES``) and error
codes (``repro.errors.ERROR_CODES``) are public contract: tools parse
them out of reports and exit statuses.  This test renders both
registries and diffs them against the tables in ``DESIGN.md`` — an
undocumented code (added to source, not to docs) or a stale one
(documented, gone from source) fails tier-1.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.diagnostics import LINT_CODES
from repro.errors import ERROR_CODES

DESIGN = Path(__file__).resolve().parent.parent / "DESIGN.md"

LINT_ROW = re.compile(
    r"^\|\s*(L\d{3})\s*\|\s*([a-z]+)[¹²]*\s*\|\s*(.+?)\s*\|\s*$", re.MULTILINE
)
ERROR_ROW = re.compile(r"^\|\s*(E_[A-Z_]+)\s*\|\s*(.+?)\s*\|\s*$", re.MULTILINE)


def documented_lint_rows() -> dict[str, tuple[str, str]]:
    text = DESIGN.read_text(encoding="utf-8")
    rows: dict[str, tuple[str, str]] = {}
    for code, severity, meaning in LINT_ROW.findall(text):
        # A code documented twice (e.g. in an overview and a section
        # table) must at least agree on severity.
        if code in rows:
            assert rows[code][0] == severity, f"{code} documented twice, differently"
        rows[code] = (severity, meaning)
    return rows


def documented_error_rows() -> dict[str, str]:
    text = DESIGN.read_text(encoding="utf-8")
    return {code: meaning for code, meaning in ERROR_ROW.findall(text)}


def test_every_lint_code_documented():
    documented = documented_lint_rows()
    missing = sorted(set(LINT_CODES) - set(documented))
    assert not missing, f"codes in LINT_CODES but not DESIGN.md: {missing}"


def test_no_stale_lint_codes():
    documented = documented_lint_rows()
    stale = sorted(set(documented) - set(LINT_CODES))
    assert not stale, f"codes documented in DESIGN.md but gone from source: {stale}"


def test_lint_severities_match():
    documented = documented_lint_rows()
    for code, (severity, _description) in LINT_CODES.items():
        assert documented[code][0] == severity.value, (
            f"{code}: DESIGN.md says {documented[code][0]!r}, "
            f"registry says {severity.value!r}"
        )


def test_every_error_code_documented():
    documented = documented_error_rows()
    missing = sorted(set(ERROR_CODES) - set(documented))
    assert not missing, f"codes in ERROR_CODES but not DESIGN.md: {missing}"


def test_no_stale_error_codes():
    documented = documented_error_rows()
    stale = sorted(set(documented) - set(ERROR_CODES))
    assert not stale, f"codes documented in DESIGN.md but gone from source: {stale}"


def test_error_code_meanings_match():
    documented = documented_error_rows()
    for code, description in ERROR_CODES.items():
        assert documented[code] == description, (
            f"{code}: DESIGN.md says {documented[code]!r}, "
            f"registry says {description!r}"
        )


def test_registries_are_nontrivial():
    # Drift checks are vacuous if a refactor empties a registry.
    assert len(LINT_CODES) >= 30
    assert len(ERROR_CODES) >= 15
    assert {"L601", "L602", "L603", "L604", "L605", "L606"} <= set(LINT_CODES)
