"""Tests for the slot-fill lexicons."""

from repro.nlp.lexicons import (
    AGGREGATE_PHRASES,
    COMPARISON_PHRASES,
    DOMAIN_COMPARATIVES,
    DOMAIN_SUPERLATIVES,
    GENERIC_SUPERLATIVES,
    SELECT_PHRASES,
    WHERE_PHRASES,
    comparative_phrases,
    superlative_phrases,
)
from repro.schema.column import KNOWN_DOMAINS
from repro.sql import AggFunc, CompOp


class TestPhraseTables:
    def test_every_aggregate_has_phrases(self):
        for func in AggFunc:
            assert AGGREGATE_PHRASES[func], func

    def test_every_operator_has_phrases(self):
        for op in CompOp:
            assert COMPARISON_PHRASES[op], op

    def test_select_and_where_phrases_nonempty(self):
        assert len(SELECT_PHRASES) >= 5
        assert len(WHERE_PHRASES) >= 3

    def test_no_duplicate_phrases_within_tables(self):
        assert len(set(SELECT_PHRASES)) == len(SELECT_PHRASES)
        assert len(set(WHERE_PHRASES)) == len(WHERE_PHRASES)

    def test_domain_comparatives_cover_known_domains(self):
        assert set(DOMAIN_COMPARATIVES) == set(KNOWN_DOMAINS)
        for domain, mapping in DOMAIN_COMPARATIVES.items():
            assert CompOp.GT in mapping and CompOp.LT in mapping


class TestComparativePhrases:
    def test_domain_phrase_first(self):
        phrases = comparative_phrases(CompOp.GT, "age")
        assert phrases[0] == "older than"
        assert "greater than" in phrases

    def test_generic_only_without_domain(self):
        phrases = comparative_phrases(CompOp.GT)
        assert "older than" not in phrases
        assert "greater than" in phrases

    def test_eq_has_no_domain_variant(self):
        assert comparative_phrases(CompOp.EQ, "age") == COMPARISON_PHRASES[CompOp.EQ]

    def test_unknown_domain_falls_back(self):
        assert comparative_phrases(CompOp.LT, "") == COMPARISON_PHRASES[CompOp.LT]


class TestSuperlativePhrases:
    def test_domain_specific(self):
        assert superlative_phrases("age") == ("oldest", "youngest")
        assert superlative_phrases("price") == ("most expensive", "cheapest")

    def test_generic_fallback(self):
        assert superlative_phrases("") == GENERIC_SUPERLATIVES
        assert superlative_phrases("unknown") == GENERIC_SUPERLATIVES

    def test_all_superlative_domains_are_known(self):
        assert set(DOMAIN_SUPERLATIVES) <= set(KNOWN_DOMAINS)
