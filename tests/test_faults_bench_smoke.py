"""Tier-1 smoke run of the fault-tolerance benchmark.

``benchmarks/run_faults.py`` is executed end-to-end in miniature
(``--smoke`` shrinks the workload to one schema and eight templates) so
the benchmark cannot rot out from under the crash-safety layer: it
exercises the plain, checkpointed, recovery, and quarantine arms —
each with built-in byte-identity assertions — and must emit a
well-formed record.  The ≤5% overhead claim itself is judged on the
``full`` profile (``BENCH_faults.json``), not here.
"""

import json
import sys
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def test_smoke_run_writes_valid_record(tmp_path):
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        from run_faults import main
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))

    output = tmp_path / "BENCH_faults.json"
    exit_code = main(["--smoke", "--output", str(output)])
    assert exit_code == 0

    record = json.loads(output.read_text(encoding="utf-8"))
    assert record["benchmark"] == "fault_tolerance"
    assert record["profile"] == "smoke"
    modes = record["modes"]
    assert set(modes) == {"plain", "checkpointed", "recovery", "quarantine"}
    assert modes["plain"]["pairs"] == modes["checkpointed"]["pairs"]
    assert modes["checkpointed"]["status"] == "complete"
    # Recovery arm resumed past the injected interrupt and re-verified
    # byte identity inside the benchmark itself.
    recovery = modes["recovery"]
    assert recovery["byte_identical"] is True
    assert recovery["resumed_shards_skipped"] == recovery["interrupted_after_shards"]
    # Quarantine arm survived the poisoned shard and named the triple.
    quarantine = modes["quarantine"]
    assert quarantine["run_survived"] is True
    [failure] = quarantine["quarantined"]
    assert failure["code"] == "E_SHARD_CRASH"
    assert failure["schema"] and failure["template_id"]
    assert set(failure["seed"]) == {"entropy", "spawn_key"}
    assert "checkpoint_overhead_pct" in record
    assert record["overhead_target_pct"] == 5.0
