"""Tests for beam-search decoding."""

import pytest

from repro.neural import Seq2SeqModel, SyntaxAwareModel
from repro.sql import try_parse
from tests.test_neural_models import toy_pairs


@pytest.fixture(scope="module")
def beam_model():
    model = Seq2SeqModel(
        embed_dim=16, hidden_dim=32, epochs=100, batch_size=4, lr=5e-3,
        seed=0, beam_size=3,
    )
    model.fit(toy_pairs())
    return model


class TestBeamSearch:
    def test_memorizes_training_pairs(self, beam_model):
        correct = sum(
            try_parse(beam_model.translate(p.nl) or "") == p.sql
            for p in toy_pairs()
        )
        assert correct >= 7

    def test_beam_no_worse_than_greedy(self, beam_model):
        greedy = Seq2SeqModel(
            embed_dim=16, hidden_dim=32, epochs=100, batch_size=4, lr=5e-3,
            seed=0, beam_size=1,
        )
        greedy.fit(toy_pairs())
        beam_correct = sum(
            try_parse(beam_model.translate(p.nl) or "") == p.sql
            for p in toy_pairs()
        )
        greedy_correct = sum(
            try_parse(greedy.translate(p.nl) or "") == p.sql
            for p in toy_pairs()
        )
        assert beam_correct >= greedy_correct - 1  # allow tie-noise

    def test_beam_deterministic(self, beam_model):
        first = beam_model.translate("show all patients")
        second = beam_model.translate("show all patients")
        assert first == second

    def test_constrained_beam_parses(self):
        model = SyntaxAwareModel(
            embed_dim=16, hidden_dim=32, epochs=20, batch_size=4,
            seed=0, beam_size=3,
        )
        model.fit(toy_pairs())
        for pair in toy_pairs():
            output = model.translate(pair.nl)
            assert output is None or try_parse(output) is not None

    def test_empty_input(self, beam_model):
        assert beam_model.translate("") is None

    def test_checkpoint_preserves_beam_size(self, beam_model, tmp_path):
        from repro.neural import load_model, save_model

        path = tmp_path / "beam.npz"
        save_model(beam_model, path)
        restored = load_model(path)
        assert restored.beam_size == 3
        assert restored.translate("show all patients") == beam_model.translate(
            "show all patients"
        )
