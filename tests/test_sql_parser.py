"""Tests for the SQL parser."""

import pytest

from repro.errors import SqlParseError
from repro.sql import (
    AggFunc,
    Aggregate,
    And,
    Between,
    ColumnRef,
    CompOp,
    Comparison,
    Exists,
    InPredicate,
    Like,
    Literal,
    Or,
    Placeholder,
    Star,
    Subquery,
    parse,
    try_parse,
)


class TestBasicSelect:
    def test_select_star(self):
        q = parse("SELECT * FROM patients")
        assert q.select == (Star(),)
        assert q.from_tables == ("patients",)
        assert q.where is None

    def test_select_columns(self):
        q = parse("SELECT name, age FROM patients")
        assert q.select == (ColumnRef("name"), ColumnRef("age"))

    def test_qualified_column(self):
        q = parse("SELECT patients.name FROM patients")
        assert q.select == (ColumnRef("name", table="patients"),)

    def test_distinct(self):
        assert parse("SELECT DISTINCT name FROM t").distinct

    def test_multiple_tables(self):
        q = parse("SELECT * FROM a, b")
        assert q.from_tables == ("a", "b")

    def test_join_placeholder_table(self):
        q = parse("SELECT * FROM @JOIN")
        assert q.uses_join_placeholder


class TestAggregates:
    def test_count_star(self):
        q = parse("SELECT COUNT(*) FROM t")
        assert q.select == (Aggregate(AggFunc.COUNT, Star()),)

    def test_avg_column(self):
        q = parse("SELECT AVG(age) FROM t")
        assert q.select == (Aggregate(AggFunc.AVG, ColumnRef("age")),)

    def test_count_distinct(self):
        q = parse("SELECT COUNT(DISTINCT name) FROM t")
        assert q.select[0].distinct

    def test_qualified_agg_arg(self):
        q = parse("SELECT MAX(t.age) FROM t")
        assert q.select[0].arg == ColumnRef("age", table="t")


class TestPredicates:
    def test_comparison_with_literal(self):
        q = parse("SELECT * FROM t WHERE age = 20")
        assert q.where == Comparison(ColumnRef("age"), CompOp.EQ, Literal(20))

    def test_comparison_with_placeholder(self):
        q = parse("SELECT * FROM t WHERE age > @AGE")
        assert q.where == Comparison(ColumnRef("age"), CompOp.GT, Placeholder("AGE"))

    def test_string_literal(self):
        q = parse("SELECT * FROM t WHERE name = 'bob'")
        assert q.where.right == Literal("bob")

    def test_float_literal(self):
        q = parse("SELECT * FROM t WHERE x = 1.5")
        assert q.where.right == Literal(1.5)

    def test_and_chain(self):
        q = parse("SELECT * FROM t WHERE a = 1 AND b = 2 AND c = 3")
        assert isinstance(q.where, And)
        assert len(q.where.operands) == 3

    def test_or_precedence(self):
        q = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(q.where, Or)
        assert isinstance(q.where.operands[1], And)

    def test_parenthesized_or(self):
        q = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(q.where, And)
        assert isinstance(q.where.operands[0], Or)

    def test_between(self):
        q = parse("SELECT * FROM t WHERE age BETWEEN 10 AND 20")
        assert q.where == Between(ColumnRef("age"), Literal(10), Literal(20))

    def test_in_values(self):
        q = parse("SELECT * FROM t WHERE x IN (1, 2, 3)")
        assert isinstance(q.where, InPredicate)
        assert q.where.values == (Literal(1), Literal(2), Literal(3))

    def test_not_in(self):
        q = parse("SELECT * FROM t WHERE x NOT IN (1)")
        assert q.where.negated

    def test_like(self):
        q = parse("SELECT * FROM t WHERE name LIKE 'a%'")
        assert q.where == Like(ColumnRef("name"), Literal("a%"))

    def test_not_like(self):
        assert parse("SELECT * FROM t WHERE name NOT LIKE 'a%'").where.negated

    def test_join_condition(self):
        q = parse("SELECT * FROM a, b WHERE a.x = b.y")
        assert q.where == Comparison(
            ColumnRef("x", table="a"), CompOp.EQ, ColumnRef("y", table="b")
        )


class TestSubqueries:
    def test_scalar_subquery(self):
        q = parse(
            "SELECT name FROM t WHERE age = (SELECT MAX(age) FROM t)"
        )
        assert isinstance(q.where.right, Subquery)
        assert q.is_nested

    def test_in_subquery(self):
        q = parse("SELECT * FROM a WHERE x IN (SELECT y FROM b)")
        assert q.where.subquery is not None

    def test_exists(self):
        q = parse("SELECT * FROM a WHERE EXISTS (SELECT * FROM b WHERE z = 1)")
        assert isinstance(q.where, Exists)

    def test_not_exists(self):
        q = parse("SELECT * FROM a WHERE NOT EXISTS (SELECT * FROM b)")
        assert q.where.negated

    def test_inner_query_with_filter(self):
        q = parse(
            "SELECT name FROM m WHERE h = (SELECT MAX(h) FROM m WHERE s = @S)"
        )
        inner = q.where.right.query
        assert inner.where is not None


class TestClauses:
    def test_group_by(self):
        q = parse("SELECT d, COUNT(*) FROM t GROUP BY d")
        assert q.group_by == (ColumnRef("d"),)

    def test_group_by_multiple(self):
        q = parse("SELECT a, b FROM t GROUP BY a, b")
        assert len(q.group_by) == 2

    def test_having(self):
        q = parse("SELECT d FROM t GROUP BY d HAVING COUNT(*) > 2")
        assert isinstance(q.having, Comparison)
        assert isinstance(q.having.left, Aggregate)

    def test_order_by(self):
        q = parse("SELECT * FROM t ORDER BY age DESC, name")
        assert q.order_by[0].desc
        assert not q.order_by[1].desc

    def test_order_by_aggregate(self):
        q = parse("SELECT d FROM t GROUP BY d ORDER BY COUNT(*) DESC")
        assert isinstance(q.order_by[0].expr, Aggregate)

    def test_order_by_asc_keyword(self):
        q = parse("SELECT * FROM t ORDER BY age ASC")
        assert not q.order_by[0].desc

    def test_limit(self):
        assert parse("SELECT * FROM t LIMIT 5").limit == 5


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT",
            "SELECT FROM t",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE age >",
            "SELECT * FROM t GROUP age",
            "SELECT * FROM t LIMIT x",
            "SELECT * FROM t trailing",
            "UPDATE t SET x = 1",
            "SELECT * FROM t WHERE NOT",
            "SELECT * FROM t WHERE 1 BETWEEN 2 AND 3",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(SqlParseError):
            parse(bad)

    def test_try_parse_returns_none(self):
        assert try_parse("garbage input") is None

    def test_try_parse_returns_query(self):
        assert try_parse("SELECT * FROM t") is not None
