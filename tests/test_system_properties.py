"""Cross-module property-based tests (hypothesis).

These check invariants that span subsystems: executor semantics,
generator-output well-formedness, schema-slot anonymization
round-trips, and the pre-/post-processing constant cycle.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import GenerationConfig, Generator
from repro.db import execute, populate
from repro.neural import SchemaMap, SqlDecodingAutomaton
from repro.neural.base import sql_to_tokens, tokens_to_sql
from repro.nlp import lemmatize
from repro.runtime import ParameterHandler, PostProcessor
from repro.schema import load_schema, patients_schema
from repro.sql import parse, to_sql, try_parse

_SCHEMA = patients_schema()
_DB = populate(_SCHEMA, rows_per_table=30, seed=3)
_GEO = load_schema("geography")
_GEO_DB = populate(_GEO, rows_per_table=20, seed=4)

# A pool of generated (executable after binding) queries to draw from.
_PAIR_POOL = Generator(_SCHEMA, GenerationConfig(size_slotfills=3), seed=11).generate()
_GEO_POOL = Generator(
    _GEO, GenerationConfig(size_slotfills=2, size_tables=3), seed=12
).generate()


class TestExecutorProperties:
    @given(st.integers(0, 98))
    @settings(max_examples=30, deadline=None)
    def test_where_filters_are_subsets(self, threshold):
        everything = execute(parse("SELECT * FROM patients"), _DB)
        filtered = execute(
            parse(f"SELECT * FROM patients WHERE age > {threshold}"), _DB
        )
        keys = {tuple(sorted(r.items())) for r in everything}
        assert all(tuple(sorted(r.items())) in keys for r in filtered)
        assert len(filtered) <= len(everything)

    @given(st.integers(0, 98), st.integers(0, 98))
    @settings(max_examples=30, deadline=None)
    def test_between_equals_conjunction(self, a, b):
        low, high = min(a, b), max(a, b)
        between = execute(
            parse(f"SELECT name FROM patients WHERE age BETWEEN {low} AND {high}"),
            _DB,
        )
        conj = execute(
            parse(f"SELECT name FROM patients WHERE age >= {low} AND age <= {high}"),
            _DB,
        )
        assert between == conj

    @given(st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_limit_truncates(self, n):
        rows = execute(parse(f"SELECT name FROM patients LIMIT {n}"), _DB)
        assert len(rows) == min(n, 30)

    @given(st.integers(0, 98))
    @settings(max_examples=20, deadline=None)
    def test_count_matches_row_count(self, threshold):
        rows = execute(
            parse(f"SELECT * FROM patients WHERE age > {threshold}"), _DB
        )
        count = execute(
            parse(f"SELECT COUNT(*) FROM patients WHERE age > {threshold}"), _DB
        )
        assert count[0]["COUNT(*)"] == len(rows)

    def test_group_counts_sum_to_total(self):
        grouped = execute(
            parse("SELECT diagnosis, COUNT(*) FROM patients GROUP BY diagnosis"),
            _DB,
        )
        assert sum(r["COUNT(*)"] for r in grouped) == 30


class TestGeneratorProperties:
    @given(st.sampled_from(_PAIR_POOL + _GEO_POOL))
    @settings(max_examples=60, deadline=None)
    def test_sql_roundtrips_and_grammar_accepts(self, pair):
        assert try_parse(pair.sql_text) == pair.sql
        assert SqlDecodingAutomaton().accepts(sql_to_tokens(pair.sql_text))

    @given(st.sampled_from(_PAIR_POOL + _GEO_POOL))
    @settings(max_examples=60, deadline=None)
    def test_lemmatized_nl_is_stable(self, pair):
        # Runtime lemmatizes inputs: generated NL must be a fixed point
        # after one lemmatization (train/runtime distribution match).
        once = lemmatize(pair.nl)
        assert lemmatize(once) == once

    @given(st.sampled_from(_GEO_POOL))
    @settings(max_examples=40, deadline=None)
    def test_join_pairs_postprocess_to_executable(self, pair):
        post = PostProcessor(_GEO)
        processed = post.process(pair.sql_text)
        assert processed is not None
        if not processed.query.placeholders():
            execute(processed.query, _GEO_DB)  # must not raise


class TestSchemaSlotProperties:
    @given(st.sampled_from(_PAIR_POOL + _GEO_POOL))
    @settings(max_examples=60, deadline=None)
    def test_slot_mapping_roundtrip(self, pair):
        schema = _SCHEMA if pair.schema_name == "patients" else _GEO
        schema_map = SchemaMap(schema)
        tokens = sql_to_tokens(pair.sql_text)
        slots = schema_map.sql_tokens_to_slots(tokens)
        restored = schema_map.sql_tokens_from_slots(slots)
        assert restored == tokens

    @given(st.sampled_from(_PAIR_POOL + _GEO_POOL))
    @settings(max_examples=40, deadline=None)
    def test_slot_sql_still_parses(self, pair):
        schema = _SCHEMA if pair.schema_name == "patients" else _GEO
        schema_map = SchemaMap(schema)
        slot_sql = tokens_to_sql(
            schema_map.sql_tokens_to_slots(sql_to_tokens(pair.sql_text))
        )
        assert try_parse(slot_sql) is not None


class TestConstantCycleProperties:
    @given(st.sampled_from(sorted({r["diagnosis"] for r in _DB.rows("patients")})))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.data_too_large])
    def test_string_constant_roundtrip(self, diagnosis):
        """anonymize -> (identity translation) -> restore recovers the value."""
        handler = ParameterHandler(_DB)
        anonymized = handler.anonymize(f"patients with {diagnosis}")
        assert "@DIAGNOSIS" in anonymized.nl
        post = PostProcessor(_SCHEMA)
        processed = post.process(
            "SELECT * FROM patients WHERE diagnosis = @DIAGNOSIS",
            anonymized.bindings,
        )
        assert f"'{diagnosis}'" in processed.sql
        rows = execute(processed.query, _DB)
        assert all(r["diagnosis"] == diagnosis for r in rows)

    @given(st.sampled_from(sorted({r["age"] for r in _DB.rows("patients")})))
    @settings(max_examples=20, deadline=None)
    def test_numeric_constant_roundtrip(self, age):
        handler = ParameterHandler(_DB)
        anonymized = handler.anonymize(f"patients with age greater than {age}")
        post = PostProcessor(_SCHEMA)
        processed = post.process(
            "SELECT name FROM patients WHERE age > @AGE", anonymized.bindings
        )
        rows = execute(processed.query, _DB)
        expected = execute(
            parse(f"SELECT name FROM patients WHERE age > {age}"), _DB
        )
        assert rows == expected
