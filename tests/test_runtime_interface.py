"""Tests for the end-to-end DBPal facade (preprocess + translate + execute)."""

import pytest

from repro.errors import TranslationError
from repro.runtime import DBPal, Preprocessor


class TestPreprocessor:
    def test_anonymize_then_lemmatize(self, patients_db):
        pre = Preprocessor(patients_db)
        age = patients_db.rows("patients")[0]["age"]
        result = pre.preprocess(f"Show me the names of all patients with age {age}")
        assert "@AGE" in result.anonymized_nl
        assert result.model_input == (
            "show me the name of all patient with age @AGE"
        )
        assert result.bindings[0].value == age

    def test_original_preserved(self, patients_db):
        pre = Preprocessor(patients_db)
        result = pre.preprocess("Count the patients")
        assert result.original_nl == "Count the patients"


class TestDBPalFacade:
    def test_translate_produces_sql(self, retrieval_nlidb, patients_db):
        age = patients_db.rows("patients")[0]["age"]
        result = retrieval_nlidb.translate(f"how many patients have age {age}")
        assert result.ok
        assert result.sql is not None
        assert "@" not in result.sql  # constants restored

    def test_query_executes(self, retrieval_nlidb, patients_db):
        rows = retrieval_nlidb.query("how many patients are there")
        assert rows == [{"COUNT(*)": patients_db.row_count("patients")}]

    def test_constants_restored_correctly(self, retrieval_nlidb, patients_db):
        age = patients_db.rows("patients")[0]["age"]
        result = retrieval_nlidb.translate(
            f"show the names of all patients with age greater than {age}"
        )
        assert str(age) in result.sql

    def test_untrained_translate_raises(self, patients_db):
        with pytest.raises(TranslationError):
            DBPal(patients_db).translate("anything")

    def test_explain_mentions_stages(self, retrieval_nlidb):
        text = retrieval_nlidb.explain("how many patients are there")
        assert "model input" in text
        assert "final SQL" in text

    def test_max_rows(self, retrieval_nlidb):
        rows = retrieval_nlidb.query("show me all patients", max_rows=3)
        assert len(rows) <= 3

    def test_train_returns_corpus(self, patients_db):
        from repro.core import GenerationConfig
        from repro.neural import RetrievalModel

        nlidb = DBPal(patients_db)
        corpus = nlidb.train(
            RetrievalModel(), config=GenerationConfig(size_slotfills=2), seed=1
        )
        assert len(corpus) > 0
        assert nlidb.model is not None
