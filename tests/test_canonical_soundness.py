"""The canonicalizer soundness gate (differential fuzz).

Hard contract from the canonicalization design: the canonicalizer must
**never merge queries that can produce different results**.  This gate
attacks that claim three ways:

1. **Randomized schemas** — every catalog schema is populated at fixed
   seeds; schema-derived probe queries are expanded with
   equivalence-preserving syntactic shuffles (conjunct/disjunct
   reversal, ``BETWEEN`` ↔ chained comparison, ``IN`` ↔ ``OR``-of-=,
   operand flips, GROUP BY reorder).  Every pair of queries that lands
   on one ``canonical_key`` is executed and must agree exactly.
2. **Seed corpora** — every executable query both training corpora
   synthesize, shuffled the same way, grouped by canonical key, and
   differentially executed.
3. **Cache payload bit-identity** — a property check that the
   canonical coalescing tier in :class:`TranslationCache` never alters
   any observable payload relative to a canonical-tier-off cache fed
   the same randomized put/get sequence.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.analysis.equivalence import _ConstantBinder
from repro.db import populate
from repro.db.planner import execute_planned
from repro.errors import ReproError
from repro.runtime.postprocess import PostProcessor, _transform_query
from repro.schema import SCHEMA_FACTORIES, load_schema
from repro.serving.cache import TranslationCache
from repro.sql.ast import And, Between, Comparison, CompOp, InPredicate, Not, Or
from repro.sql.canonical import canonical_key, canonical_key_for_sql
from repro.sql.parser import parse
from repro.sql.printer import to_sql

pytestmark = pytest.mark.canonical


# ----------------------------------------------------------------------
# Equivalence-preserving shuffles (each sound by SQL semantics; the
# canonicalizer claims to absorb every one of them).
# ----------------------------------------------------------------------


def _shuffle_predicate(pred):
    if isinstance(pred, And):
        return And(tuple(reversed([_shuffle_predicate(p) for p in pred.operands])))
    if isinstance(pred, Or):
        return Or(tuple(reversed([_shuffle_predicate(p) for p in pred.operands])))
    if isinstance(pred, Not):
        return Not(_shuffle_predicate(pred.operand))
    if isinstance(pred, Between):
        return And(
            (
                Comparison(pred.column, CompOp.GE, pred.low),
                Comparison(pred.column, CompOp.LE, pred.high),
            )
        )
    if (
        isinstance(pred, InPredicate)
        and pred.subquery is None
        and not pred.negated
        and len(pred.values) >= 2
    ):
        return Or(
            tuple(
                Comparison(pred.column, CompOp.EQ, value)
                for value in reversed(pred.values)
            )
        )
    if isinstance(pred, Comparison):
        return Comparison(pred.right, pred.op.flipped(), pred.left)
    return pred


def equivalent_variants(query):
    """Syntactic shuffles of ``query`` with provably identical results."""
    variants = []
    if query.where is not None:
        variants.append(replace(query, where=_shuffle_predicate(query.where)))
    if len(query.group_by) > 1:
        variants.append(
            replace(query, group_by=tuple(reversed(query.group_by)))
        )
    return [v for v in variants if v != query]


# ----------------------------------------------------------------------
# Differential execution over canonical-key groups
# ----------------------------------------------------------------------


def _normalized_result(query, database):
    """(error-or-None, result values) — order kept only under ORDER BY."""
    try:
        rows = execute_planned(query, database)
    except ReproError as exc:
        return type(exc).__name__, None
    values = [tuple(row.values()) for row in rows]
    if not query.order_by:
        values = sorted(values, key=repr)
    return None, values


def assert_group_agrees(members, database):
    """Queries sharing a canonical key must be indistinguishable."""
    baseline = _normalized_result(members[0], database)
    for member in members[1:]:
        outcome = _normalized_result(member, database)
        assert outcome == baseline, (
            f"canonical key merged distinguishable queries:\n"
            f"  {to_sql(members[0])}\n  {to_sql(member)}"
        )


def _group_by_canonical_key(queries, schema):
    groups: dict[str, list] = {}
    seen: dict[str, set] = {}
    for query in queries:
        for candidate in (query, *equivalent_variants(query)):
            key = canonical_key(candidate, schema)
            text = to_sql(candidate)
            if text in seen.setdefault(key, set()):
                continue
            seen[key].add(text)
            groups.setdefault(key, []).append(candidate)
    return groups


# ----------------------------------------------------------------------
# 1. Randomized databases over every catalog schema
# ----------------------------------------------------------------------


def _probe_queries(database):
    """Filter/IN/BETWEEN/join/aggregate probes with real DB constants."""
    schema = database.schema
    queries = []

    def render(value):
        return f"'{value}'" if isinstance(value, str) else value

    for table in schema.tables:
        first = table.column_names[0]
        numeric = next((c.name for c in table.columns if c.is_numeric), None)
        queries.append(parse(f"SELECT * FROM {table.name}"))
        values = [
            v for v in database.column_values(table.name, first) if v is not None
        ]
        if values:
            a, b = render(values[0]), render(values[len(values) // 2])
            queries.append(
                parse(f"SELECT {first} FROM {table.name} WHERE {first} = {a}")
            )
            queries.append(
                parse(
                    f"SELECT {first} FROM {table.name} "
                    f"WHERE {first} = {a} OR {first} = {b}"
                )
            )
            queries.append(
                parse(
                    f"SELECT {first} FROM {table.name} "
                    f"WHERE {first} IN ({a}, {b})"
                )
            )
        if numeric:
            numbers = sorted(
                v
                for v in database.column_values(table.name, numeric)
                if v is not None
            )
            if numbers:
                lo, hi = numbers[0], numbers[-1]
                queries.append(
                    parse(
                        f"SELECT {first} FROM {table.name} "
                        f"WHERE {numeric} BETWEEN {lo} AND {hi}"
                    )
                )
            queries.append(
                parse(f"SELECT COUNT(*) FROM {table.name} WHERE {numeric} > 0")
            )
    for fk in schema.foreign_keys:
        join = f"{fk.table}.{fk.column} = {fk.ref_table}.{fk.ref_column}"
        left_col = f"{fk.table}.{schema.table(fk.table).column_names[0]}"
        right_col = f"{fk.ref_table}.{schema.table(fk.ref_table).column_names[0]}"
        queries.append(
            parse(
                f"SELECT {left_col}, {right_col} "
                f"FROM {fk.table}, {fk.ref_table} WHERE {join}"
            )
        )
        queries.append(
            parse(
                f"SELECT {right_col}, COUNT(*) "
                f"FROM {fk.table}, {fk.ref_table} WHERE {join} "
                f"GROUP BY {right_col}"
            )
        )
    return queries


def test_catalog_has_eleven_schemas():
    assert len(SCHEMA_FACTORIES) == 11


@pytest.mark.parametrize("schema_name", sorted(SCHEMA_FACTORIES))
@pytest.mark.parametrize("seed", [0, 17])
def test_randomized_schema_soundness(schema_name, seed):
    schema = load_schema(schema_name)
    database = populate(schema, rows_per_table=25, seed=seed)
    groups = _group_by_canonical_key(_probe_queries(database), schema)
    merged = [members for members in groups.values() if len(members) >= 2]
    # The shuffles must actually land in the same canonical groups —
    # otherwise this gate proves nothing.
    assert merged, f"no canonical merges exercised on {schema_name}"
    for members in merged:
        assert_group_agrees(members, database)


# ----------------------------------------------------------------------
# 2. Seed corpora of both training schemas
# ----------------------------------------------------------------------


def _executable_corpus_queries(corpus, database):
    post = PostProcessor(database.schema)
    binder = _ConstantBinder(database)
    queries, seen = [], set()
    for pair in corpus.pairs:
        processed = post.process(to_sql(pair.sql))
        if processed is None:
            continue
        query = _transform_query(processed.query, binder)
        if query.placeholders():
            continue  # unbindable slot: nothing to execute
        text = to_sql(query)
        if text not in seen:
            seen.add(text)
            queries.append(query)
    return queries


@pytest.mark.parametrize(
    "corpus_fixture, db_fixture",
    [
        ("patients_corpus", "patients_db"),
        ("geography_corpus", "geography_db"),
    ],
)
def test_corpus_soundness(request, corpus_fixture, db_fixture):
    corpus = request.getfixturevalue(corpus_fixture)
    database = request.getfixturevalue(db_fixture)
    queries = _executable_corpus_queries(corpus, database)
    assert len(queries) > 50
    groups = _group_by_canonical_key(queries, database.schema)
    merged = [members for members in groups.values() if len(members) >= 2]
    assert merged, "corpus gate is vacuous: no canonical merges"
    for members in merged:
        assert_group_agrees(members, database)


# ----------------------------------------------------------------------
# 3. Cache payload bit-identity (canonical tier on vs off)
# ----------------------------------------------------------------------


SQL_POOL = [
    "SELECT name FROM patients WHERE age = 20 OR age = 30",
    "SELECT name FROM patients WHERE age IN (20, 30)",
    "SELECT name FROM patients WHERE age IN (30, 20)",
    "SELECT name FROM patients WHERE age BETWEEN 20 AND 30",
    "SELECT name FROM patients WHERE age >= 20 AND age <= 30",
    "SELECT AVG(age) FROM patients",
    "SELECT * FROM patients",
    "completely unparseable ((((",
    None,
]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_cache_payload_bit_identity(seed):
    """Property: the coalescing tier never changes observable payloads.

    The same randomized put/get sequence runs against a canonical-tier
    cache and a plain one; every ``get`` must return an identical
    payload (same text, same hit/miss outcome) in both.
    """
    schema = load_schema("patients")

    def key_fn(sql):
        return canonical_key_for_sql(sql, schema)

    plain = TranslationCache(capacity=8, ttl=0)
    coalescing = TranslationCache(capacity=8, ttl=0, canonical_key_fn=key_fn)
    rng = random.Random(seed)
    for _ in range(300):
        key = f"nl-{rng.randrange(12)}"
        if rng.random() < 0.5:
            value = rng.choice(SQL_POOL)
            plain.put(key, value)
            coalescing.put(key, value)
        else:
            left = plain.get(key)
            right = coalescing.get(key)
            assert (left is None) == (right is None)
            if left is not None and right is not None:
                assert left.value == right.value
                assert left.stale == right.stale
    # The run must have exercised actual coalescing, and the stats
    # identity (also asserted by the serving tier's reconciliation)
    # must hold.
    stats = coalescing.stats()
    assert stats["canonical_hits"] > 0
    assert stats["canonical_probes"] == (
        stats["canonical_hits"]
        + stats["canonical_variants"]
        + stats["canonical_new"]
        + stats["canonical_skipped"]
    )
    assert "canonical_probes" not in plain.stats()


def test_cache_interning_shares_payload_objects():
    """Equal payloads for one canonical query collapse to one string."""
    schema = load_schema("patients")
    cache = TranslationCache(
        capacity=8,
        ttl=0,
        canonical_key_fn=lambda sql: canonical_key_for_sql(sql, schema),
    )
    text = "SELECT name FROM patients WHERE age IN (20, 30)"
    cache.put("a", text)
    cache.put("b", "SELECT name FROM patients " + "WHERE age IN (20, 30)")
    first = cache.get("a")
    second = cache.get("b")
    assert first is not None and second is not None
    assert first.value == second.value
    assert first.value is second.value  # interned, not just equal
    # A canonically-equal but textually different payload is preserved
    # verbatim (payload fidelity beats interning).
    variant = "SELECT name FROM patients WHERE age IN (30, 20)"
    cache.put("c", variant)
    third = cache.get("c")
    assert third is not None and third.value == variant
    assert cache.canonical_variants == 1
