"""Tests for in-memory row storage."""

import pytest

from repro.db import Database
from repro.errors import ExecutionError, SchemaError
from repro.schema import Schema, Table, floating, integer, text


def make_db():
    schema = Schema(
        "s",
        [Table("t", [integer("a", primary_key=True), text("b"), floating("c")])],
    )
    return Database(schema)


class TestInsert:
    def test_insert_and_read(self):
        db = make_db()
        db.insert("t", {"a": 1, "b": "x", "c": 2.5})
        assert db.rows("t") == [{"a": 1, "b": "x", "c": 2.5}]

    def test_missing_columns_become_null(self):
        db = make_db()
        db.insert("t", {"a": 1})
        assert db.rows("t")[0]["b"] is None

    def test_unknown_column_rejected(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.insert("t", {"a": 1, "zz": 2})

    def test_integer_coercion(self):
        db = make_db()
        db.insert("t", {"a": "7"})
        assert db.rows("t")[0]["a"] == 7

    def test_float_coercion(self):
        db = make_db()
        db.insert("t", {"a": 1, "c": 3})
        assert db.rows("t")[0]["c"] == 3.0

    def test_bad_type_rejected(self):
        db = make_db()
        with pytest.raises(ExecutionError):
            db.insert("t", {"a": "not a number"})
        with pytest.raises(ExecutionError):
            db.insert("t", {"a": 1, "b": 42})
        with pytest.raises(ExecutionError):
            db.insert("t", {"a": True})

    def test_insert_many(self):
        db = make_db()
        db.insert_many("t", [{"a": i} for i in range(5)])
        assert db.row_count("t") == 5


class TestRead:
    def test_rows_are_copies(self):
        db = make_db()
        db.insert("t", {"a": 1})
        db.rows("t")[0]["a"] = 999
        assert db.rows("t")[0]["a"] == 1

    def test_unknown_table_raises(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.rows("missing")
        with pytest.raises(SchemaError):
            db.row_count("missing")

    def test_column_values_skip_nulls(self):
        db = make_db()
        db.insert("t", {"a": 1, "b": "x"})
        db.insert("t", {"a": 2})
        assert db.column_values("t", "b") == ["x"]

    def test_column_values_unknown_column(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.column_values("t", "zz")

    def test_repr_shows_sizes(self):
        db = make_db()
        db.insert("t", {"a": 1})
        assert "'t': 1" in repr(db)


class TestScan:
    """The zero-copy read path behind the executors."""

    def test_scan_returns_live_views_not_copies(self):
        db = make_db()
        db.insert("t", {"a": 1})
        view = db.scan("t")
        assert view[0] is db.scan("t")[0]  # same underlying dict, no copy

    def test_scan_view_is_cached_per_version(self):
        db = make_db()
        db.insert("t", {"a": 1})
        assert db.scan("t") is db.scan("t")
        db.insert("t", {"a": 2})
        assert len(db.scan("t")) == 2

    def test_scan_unknown_table_raises(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.scan("missing")

    def test_version_bumps_on_insert_only(self):
        db = make_db()
        before = db.version
        db.rows("t")
        db.scan("t")
        assert db.version == before
        db.insert("t", {"a": 1})
        assert db.version == before + 1

    def test_rows_still_returns_mutation_safe_copies(self):
        db = make_db()
        db.insert("t", {"a": 1})
        copies = db.rows("t")
        copies[0]["a"] = 999
        assert db.scan("t")[0]["a"] == 1

class TestColumnStore:
    """The lazily built columnar view behind the vectorized executor."""

    def test_store_is_cached_per_version(self):
        db = make_db()
        db.insert("t", {"a": 1, "b": "x", "c": 1.5})
        store = db.column_store("t")
        assert db.column_store("t") is store
        db.insert("t", {"a": 2, "b": "y", "c": 2.5})
        rebuilt = db.column_store("t")
        assert rebuilt is not store
        assert rebuilt.length == 2

    def test_column_kinds_and_null_mask(self):
        db = make_db()
        db.insert("t", {"a": 1, "b": "x", "c": 1.5})
        db.insert("t", {"a": 2, "c": 2.5})
        store = db.column_store("t")
        assert store.column("a").kind == "int"
        assert store.column("a").nulls is None
        b = store.column("b")
        assert b.kind == "str"
        assert list(b.nulls) == [False, True]
        assert store.column("c").kind == "float"

    def test_unknown_column_raises(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.column_store("t").column("zz")
        with pytest.raises(SchemaError):
            db.column_store("missing")

    def test_insert_coercion_keeps_float_column_exact(self):
        db = make_db()
        db.insert("t", {"a": 1, "c": 1.5})
        db.insert("t", {"a": 2, "c": 2})  # coerced to 2.0 on insert
        store = db.column_store("t")
        # Mixed types can only enter by bypassing insert(); the coerced
        # column stays exact (the dtype-edge suite covers the bypass).
        assert store.column("c").exact
        assert store.column("a").exact

    def test_factorize_codes_and_null_top_code(self):
        db = make_db()
        for b in ("x", "y", None, "x"):
            db.insert("t", {"a": db.row_count("t"), "b": b})
        codes, card, dictionary = db.column_store("t").factorize("b")
        # Dictionary over the fill-valued array: the "" NULL-fill slot
        # is present but unused (NULL rows take the top code instead).
        assert card == 4
        assert list(dictionary) == ["", "x", "y"]
        assert codes[0] == codes[3] != codes[1]
        assert codes[2] == card - 1  # NULL takes the dedicated top code

    def test_factorize_is_cached(self):
        db = make_db()
        db.insert("t", {"a": 1, "b": "x"})
        store = db.column_store("t")
        first = store.factorize("b")
        assert store.factorize("b") is first

    def test_column_values_served_from_store_matches_rows(self):
        db = make_db()
        db.insert("t", {"a": 1, "b": "x"})
        db.insert("t", {"a": 2})
        before = db.column_values("t", "b")  # row path: no store yet
        store = db.column_store("t")
        store.non_null_values("b")  # populate the cached list
        assert db.column_values("t", "b") == before == ["x"]

    def test_column_values_invalidated_by_insert(self):
        db = make_db()
        db.insert("t", {"a": 1, "b": "x"})
        db.column_store("t").non_null_values("b")
        assert db.column_values("t", "b") == ["x"]
        db.insert("t", {"a": 2, "b": "y"})  # drops the cached store
        assert db.column_values("t", "b") == ["x", "y"]
