"""Edge-case tests for synthetic data population and the executor."""

import pytest

from repro.db import Database, execute, populate
from repro.db.datagen import DOMAIN_RANGES, _dependency_order
from repro.errors import ExecutionError
from repro.schema import ForeignKey, Schema, Table, floating, integer, text
from repro.sql import parse


class TestDependencyOrder:
    def test_parents_first(self, geography):
        order = [t.name for t in _dependency_order(geography)]
        assert order.index("state") < order.index("city")
        assert order.index("state") < order.index("mountain")

    def test_chain(self):
        a = Table("a", [integer("a_id", primary_key=True), integer("b_id")])
        b = Table("b", [integer("b_id", primary_key=True), integer("c_id")])
        c = Table("c", [integer("c_id", primary_key=True), text("x")])
        schema = Schema(
            "chain",
            [a, b, c],
            [ForeignKey("a", "b_id", "b", "b_id"), ForeignKey("b", "c_id", "c", "c_id")],
        )
        order = [t.name for t in _dependency_order(schema)]
        assert order == ["c", "b", "a"]

    def test_cycle_does_not_hang(self):
        a = Table("a", [integer("a_id", primary_key=True), integer("b_id")])
        b = Table("b", [integer("b_id", primary_key=True), integer("a_id")])
        schema = Schema(
            "cycle",
            [a, b],
            [ForeignKey("a", "b_id", "b", "b_id"), ForeignKey("b", "a_id", "a", "a_id")],
        )
        order = _dependency_order(schema)
        assert {t.name for t in order} == {"a", "b"}


class TestDomainRanges:
    def test_float_columns_respect_ranges(self):
        schema = Schema(
            "s", [Table("t", [floating("height", domain="height")])]
        )
        db = populate(schema, rows_per_table=50, seed=1)
        low, high = DOMAIN_RANGES["height"]
        for value in db.column_values("t", "height"):
            assert low <= value <= high

    def test_rating_columns_bounded(self):
        schema = Schema("s", [Table("t", [floating("rating")])])
        db = populate(schema, rows_per_table=30, seed=1)
        for value in db.column_values("t", "rating"):
            assert 1.0 <= value <= 5.0


class TestExecutorEdgeCases:
    def test_empty_table(self):
        schema = Schema("s", [Table("t", [integer("x")])])
        db = Database(schema)
        assert execute(parse("SELECT * FROM t"), db) == []
        assert execute(parse("SELECT COUNT(*) FROM t"), db)[0]["COUNT(*)"] == 0
        assert execute(parse("SELECT AVG(x) FROM t"), db)[0]["AVG(x)"] is None

    def test_group_by_on_empty_table(self):
        schema = Schema("s", [Table("t", [integer("x"), text("g")])])
        db = Database(schema)
        assert execute(parse("SELECT g, COUNT(*) FROM t GROUP BY g"), db) == []

    def test_scalar_subquery_on_empty_table(self):
        schema = Schema("s", [Table("t", [integer("x")])])
        db = Database(schema)
        rows = execute(
            parse("SELECT x FROM t WHERE x = (SELECT MAX(x) FROM t)"), db
        )
        assert rows == []

    def test_cross_product_guard(self):
        schema = Schema(
            "s",
            [Table("a", [integer("x")]), Table("b", [integer("y")]),
             Table("c", [integer("z")]), Table("d", [integer("w")])],
        )
        db = Database(schema)
        for table, col in (("a", "x"), ("b", "y"), ("c", "z"), ("d", "w")):
            db.insert_many(table, [{col: i} for i in range(60)])
        with pytest.raises(ExecutionError):
            execute(parse("SELECT * FROM a, b, c, d"), db)

    def test_order_by_mixed_nulls_ascending(self):
        schema = Schema("s", [Table("t", [integer("x"), text("n")])])
        db = Database(schema)
        db.insert_many(
            "t", [{"x": 2, "n": "b"}, {"x": None, "n": "null"}, {"x": 1, "n": "a"}]
        )
        rows = execute(parse("SELECT n FROM t ORDER BY x"), db)
        assert [r["n"] for r in rows] == ["a", "b", "null"]

    def test_distinct_star(self):
        schema = Schema("s", [Table("t", [integer("x")])])
        db = Database(schema)
        db.insert_many("t", [{"x": 1}, {"x": 1}, {"x": 2}])
        rows = execute(parse("SELECT DISTINCT * FROM t"), db)
        assert len(rows) == 2

    def test_having_without_group_by(self):
        schema = Schema("s", [Table("t", [integer("x")])])
        db = Database(schema)
        db.insert_many("t", [{"x": 1}, {"x": 2}])
        rows = execute(
            parse("SELECT COUNT(*) FROM t HAVING COUNT(*) > 1"), db
        )
        assert rows == [{"COUNT(*)": 2}]
        rows = execute(
            parse("SELECT COUNT(*) FROM t HAVING COUNT(*) > 5"), db
        )
        assert rows == []
