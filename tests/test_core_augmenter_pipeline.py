"""Tests for the augmentation orchestrator and the end-to-end pipeline."""

import pytest

from repro.core import (
    Augmenter,
    GenerationConfig,
    Generator,
    TrainingCorpus,
    TrainingPipeline,
)
from repro.core.templates import Family, TrainingPair
from repro.nlp import ParaphraseDatabase
from repro.sql import parse, try_parse


class TestAugmenter:
    def test_original_always_first(self, patients):
        augmenter = Augmenter(patients, GenerationConfig(), seed=0)
        source = TrainingPair(
            nl="show the names of all patients with age greater than @AGE",
            sql=parse("SELECT name FROM patients WHERE age > @AGE"),
            template_id="t",
            family=Family.FILTER,
            schema_name="patients",
        )
        variants = augmenter.augment_pair(source)
        assert variants[0] == source

    def test_grows_training_set(self, patients, small_config):
        base = Generator(patients, small_config, seed=1).generate()
        augmented = Augmenter(patients, small_config, seed=1).augment(base)
        assert len(augmented) > len(base)

    def test_all_augmentation_kinds_present(self, patients):
        config = GenerationConfig(size_slotfills=6)
        base = Generator(patients, config, seed=1).generate()
        augmented = Augmenter(patients, config, seed=1).augment(base)
        kinds = {p.augmentation for p in augmented}
        assert {"none", "paraphrase", "dropout", "comparative"} <= kinds

    def test_no_duplicates(self, patients, small_config):
        base = Generator(patients, small_config, seed=1).generate()
        augmented = Augmenter(patients, small_config, seed=1).augment(base)
        keys = [p.key() for p in augmented]
        assert len(keys) == len(set(keys))

    def test_augmentation_disabled_returns_base(self, patients):
        config = GenerationConfig(
            size_slotfills=4, size_para=0, num_para=0, num_missing=0, rand_drop_p=0.0
        )
        base = Generator(patients, config, seed=1).generate()
        augmented = Augmenter(patients, config, seed=1).augment(base)
        # Only comparatives (independent of those knobs) may add pairs.
        assert {p.augmentation for p in augmented} <= {"none", "comparative"}


class TestTrainingCorpus:
    def make(self, patients, small_config):
        return TrainingPipeline(patients, small_config, seed=1).generate()

    def test_family_counts(self, patients_corpus):
        counts = patients_corpus.family_counts()
        assert sum(counts.values()) == len(patients_corpus)

    def test_merge_deduplicates(self, patients_corpus):
        merged = patients_corpus.merged_with(patients_corpus.pairs)
        assert len(merged) == len(patients_corpus)

    def test_subsample(self, patients_corpus):
        sample = patients_corpus.subsample(10, seed=0)
        assert len(sample) == 10
        assert set(p.key() for p in sample) <= set(
            p.key() for p in patients_corpus
        )

    def test_subsample_larger_than_corpus(self, patients_corpus):
        sample = patients_corpus.subsample(10**9)
        assert len(sample) == len(patients_corpus)

    def test_split_partitions(self, patients_corpus):
        train, test = patients_corpus.split(0.25, seed=0)
        assert len(train) + len(test) == len(patients_corpus)
        assert abs(len(test) - 0.25 * len(patients_corpus)) <= 1
        train_keys = {p.key() for p in train}
        assert not any(p.key() in train_keys for p in test)


class TestTrainingPipeline:
    def test_lemmatized_output(self, patients_corpus):
        # "patients" should appear lemmatized as "patient" in NL.
        assert any(" patient " in f" {p.nl} " for p in patients_corpus.pairs)
        assert not any(" patients " in f" {p.nl} " for p in patients_corpus.pairs)

    def test_lemmatization_can_be_disabled(self, patients, small_config):
        pipeline = TrainingPipeline(
            patients, small_config, apply_lemmatizer=False, seed=1
        )
        corpus = pipeline.generate()
        assert any(" patients " in f" {p.nl} " for p in corpus.pairs)

    def test_all_sql_parses(self, patients_corpus):
        for p in patients_corpus.pairs:
            assert try_parse(p.sql_text) is not None

    def test_deterministic(self, patients, small_config):
        first = TrainingPipeline(patients, small_config, seed=7).generate()
        second = TrainingPipeline(patients, small_config, seed=7).generate()
        assert [p.key() for p in first.pairs] == [p.key() for p in second.pairs]

    def test_pluggable_model_contract(self, patients, small_config):
        class SpyModel:
            def __init__(self):
                self.fitted_with = None

            def fit(self, pairs, **kwargs):
                self.fitted_with = list(pairs)

        model = SpyModel()
        corpus = TrainingPipeline(patients, small_config, seed=1).train(model)
        assert model.fitted_with is not None
        assert len(model.fitted_with) == len(corpus)

    def test_manual_pairs_mixed_in(self, patients, small_config):
        class SpyModel:
            def fit(self, pairs, **kwargs):
                self.pairs = list(pairs)

        manual = TrainingPair(
            nl="Who are the sickest patients?",
            sql=parse("SELECT name FROM patients ORDER BY length_of_stay DESC"),
            template_id="manual",
            family=Family.ORDER,
            schema_name="patients",
            augmentation="manual",
        )
        model = SpyModel()
        corpus = TrainingPipeline(patients, small_config, seed=1).train(
            model, manual_pairs=[manual]
        )
        manual_in_corpus = [p for p in corpus.pairs if p.augmentation == "manual"]
        assert len(manual_in_corpus) == 1
        # Manual NL is lemmatized like everything else.
        assert manual_in_corpus[0].nl == "who be the sick patient ?"

    def test_multiple_schemas(self, patients, geography, small_config):
        corpus = TrainingPipeline(
            [patients, geography], small_config, seed=1
        ).generate()
        assert {p.schema_name for p in corpus.pairs} == {"patients", "geography"}

    def test_custom_ppdb_respected(self, patients):
        config = GenerationConfig(size_slotfills=3)
        loud = TrainingPipeline(
            patients,
            config,
            ppdb=ParaphraseDatabase(noise_rate=0.0),
            seed=1,
        ).generate()
        assert len(loud) > 0
