"""Checkpointed resume: crash-safety and bit-identical recovery.

The acceptance property: a generation run interrupted at an arbitrary
point — a shard boundary (Ctrl-C between commits) or mid-shard (the
writer process SIGKILLed halfway through appending a shard's bytes) —
must resume to a corpus **byte-identical** to the uninterrupted
``workers=0`` reference, without re-counting generator misses or
re-admitting pairs that a completed shard already deduplicated.
"""

import itertools
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import (
    GenerationConfig,
    ResilienceConfig,
    SynthesisEngine,
    TrainingPipeline,
    generate_checkpointed,
    manifest_path_for,
    save_jsonl,
)
from repro.core import faults as F
from repro.core.checkpoint import (
    STATUS_COMPLETE,
    STATUS_INTERRUPTED,
    STATUS_QUARANTINE,
    CorpusManifest,
    run_fingerprint,
)
from repro.core.faults import FaultPlan, FaultSpec
from repro.errors import GracefulExit, ManifestMismatchError

TEMPLATES_N = 8
SEED = 3
CONFIG = GenerationConfig(size_slotfills=2)


def make_pipeline(patients):
    from repro.core.seed_templates import SEED_TEMPLATES

    return TrainingPipeline(
        patients, CONFIG, templates=SEED_TEMPLATES[:TEMPLATES_N], seed=SEED
    )


@pytest.fixture(scope="module")
def reference_bytes(request, tmp_path_factory):
    """The uninterrupted ``workers=0`` corpus, via the PR 1 plain path."""
    patients = request.getfixturevalue("patients")
    path = tmp_path_factory.mktemp("ref") / "ref.jsonl"
    pipeline = make_pipeline(patients)
    save_jsonl(
        itertools.chain.from_iterable(pipeline.generate_stream(workers=0)),
        path,
    )
    return path.read_bytes()


class TestUninterrupted:
    def test_checkpointed_equals_plain_write(
        self, patients, tmp_path, reference_bytes
    ):
        out = tmp_path / "corpus.jsonl"
        report = make_pipeline(patients).generate_checkpointed(out)
        assert report.status == STATUS_COMPLETE
        assert out.read_bytes() == reference_bytes
        assert report.manifest_path == tmp_path / "corpus.manifest.json"

    def test_manifest_records_every_shard(self, patients, tmp_path):
        out = tmp_path / "corpus.jsonl"
        report = make_pipeline(patients).generate_checkpointed(out)
        manifest = CorpusManifest.load(report.manifest_path)
        assert manifest.status == STATUS_COMPLETE
        assert [r["index"] for r in manifest.shards] == list(range(TEMPLATES_N))
        assert manifest.pairs_written == report.pairs_written
        # Per-shard seed provenance: entropy + spawn key.
        assert manifest.shards[4]["seed"] == {"entropy": SEED, "spawn_key": [4]}
        # bytes_end is monotonically increasing and ends at file size.
        ends = [r["bytes_end"] for r in manifest.shards]
        assert ends == sorted(ends)
        assert ends[-1] == out.stat().st_size

    def test_resume_of_complete_run_is_a_noop(
        self, patients, tmp_path, reference_bytes
    ):
        out = tmp_path / "corpus.jsonl"
        make_pipeline(patients).generate_checkpointed(out)
        report = make_pipeline(patients).generate_checkpointed(out, resume=True)
        assert report.new_pairs == 0
        assert report.resumed_shards == TEMPLATES_N
        assert out.read_bytes() == reference_bytes


class TestBoundaryInterrupt:
    @pytest.mark.parametrize("interrupt_at", [0, 3, TEMPLATES_N - 2])
    def test_interrupt_then_resume_is_byte_identical(
        self, patients, tmp_path, reference_bytes, interrupt_at
    ):
        out = tmp_path / "corpus.jsonl"
        plan = FaultPlan((FaultSpec(F.INTERRUPT, shard_index=interrupt_at),))
        pipeline = make_pipeline(patients)
        with pytest.raises(GracefulExit):
            pipeline.generate_checkpointed(out, faults=plan)
        manifest = CorpusManifest.load(manifest_path_for(out))
        assert manifest.status == STATUS_INTERRUPTED
        assert len(manifest.shards) == interrupt_at + 1

        report = make_pipeline(patients).generate_checkpointed(out, resume=True)
        assert report.status == STATUS_COMPLETE
        assert report.resumed_shards == interrupt_at + 1
        assert out.read_bytes() == reference_bytes

    def test_interrupted_manifest_is_flushed_before_raise(
        self, patients, tmp_path
    ):
        out = tmp_path / "corpus.jsonl"
        plan = FaultPlan((FaultSpec(F.INTERRUPT, shard_index=2),))
        # Even with an effectively-infinite flush interval the interrupt
        # path must commit what it has.
        with pytest.raises(GracefulExit):
            make_pipeline(patients).generate_checkpointed(
                out, faults=plan, flush_every=10_000
            )
        manifest = CorpusManifest.load(manifest_path_for(out))
        assert manifest.status == STATUS_INTERRUPTED
        assert manifest.shards  # progress was not lost


_KILL_DRIVER = """
import sys
from repro.core import GenerationConfig, TrainingPipeline
from repro.core import faults as F
from repro.core.faults import FaultPlan, FaultSpec
from repro.core.seed_templates import SEED_TEMPLATES
from repro.schema import patients_schema

out, kill_shard = sys.argv[1], int(sys.argv[2])
pipeline = TrainingPipeline(
    patients_schema(),
    GenerationConfig(size_slotfills=2),
    templates=SEED_TEMPLATES[:{templates}],
    seed={seed},
)
plan = FaultPlan((FaultSpec(F.PARTIAL_WRITE, shard_index=kill_shard),))
pipeline.generate_checkpointed(out, faults=plan, flush_every=1)
raise SystemExit("unreachable: partial-write fault did not fire")
"""


class TestMidShardKill:
    @pytest.mark.parametrize("kill_shard", [1, 4])
    def test_sigkill_mid_write_then_resume_is_byte_identical(
        self, tmp_path, reference_bytes, kill_shard, patients
    ):
        """The brutal case: the process dies halfway through a shard's
        bytes (torn write).  Resume must discard the torn tail via the
        manifest's cumulative hash and regenerate exactly the missing
        shards."""
        out = tmp_path / "corpus.jsonl"
        driver = _KILL_DRIVER.format(templates=TEMPLATES_N, seed=SEED)
        proc = subprocess.run(
            [sys.executable, "-c", driver, str(out), str(kill_shard)],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": str(
                    Path(__file__).resolve().parent.parent / "src"
                ),
                "PATH": "/usr/bin:/bin",
            },
            timeout=300,
        )
        assert proc.returncode == 1, proc.stderr  # os._exit(1) mid-commit
        assert out.exists()
        # The file genuinely holds a torn tail: more bytes than the
        # last committed shard, fewer than the shard would have added.
        manifest = CorpusManifest.load(manifest_path_for(out))
        committed_end = max(
            (r["bytes_end"] for r in manifest.shards), default=0
        )
        assert out.stat().st_size > committed_end

        report = make_pipeline(patients).generate_checkpointed(
            out, resume=True
        )
        assert report.status == STATUS_COMPLETE
        assert report.resumed_shards == kill_shard
        assert out.read_bytes() == reference_bytes


class TestCorruptionAndMismatch:
    def test_resume_refuses_foreign_manifest(self, patients, tmp_path):
        out = tmp_path / "corpus.jsonl"
        make_pipeline(patients).generate_checkpointed(out)
        other = TrainingPipeline(patients, CONFIG, seed=SEED + 1)
        with pytest.raises(ManifestMismatchError):
            other.generate_checkpointed(out, resume=True)

    def test_fingerprint_covers_the_run_identity(self, patients):
        from repro.core.seed_templates import SEED_TEMPLATES

        base = SynthesisEngine(
            patients, CONFIG, templates=SEED_TEMPLATES[:4], seed=1
        )
        same = SynthesisEngine(
            patients, CONFIG, templates=SEED_TEMPLATES[:4], seed=1
        )
        other_seed = SynthesisEngine(
            patients, CONFIG, templates=SEED_TEMPLATES[:4], seed=2
        )
        other_cfg = SynthesisEngine(
            patients,
            CONFIG.with_overrides(size_slotfills=3),
            templates=SEED_TEMPLATES[:4],
            seed=1,
        )
        assert run_fingerprint(base.state, "jsonl") == run_fingerprint(
            same.state, "jsonl"
        )
        assert run_fingerprint(base.state, "jsonl") != run_fingerprint(
            other_seed.state, "jsonl"
        )
        assert run_fingerprint(base.state, "jsonl") != run_fingerprint(
            other_cfg.state, "jsonl"
        )
        assert run_fingerprint(base.state, "jsonl") != run_fingerprint(
            base.state, "tsv"
        )

    def test_tampered_prefix_is_regenerated(
        self, patients, tmp_path, reference_bytes
    ):
        """A corrupted byte inside a committed shard invalidates that
        shard and everything after it — resume silently regenerates
        rather than trusting a file whose hash disagrees."""
        out = tmp_path / "corpus.jsonl"
        plan = FaultPlan((FaultSpec(F.INTERRUPT, shard_index=5),))
        with pytest.raises(GracefulExit):
            make_pipeline(patients).generate_checkpointed(out, faults=plan)
        data = bytearray(out.read_bytes())
        manifest = CorpusManifest.load(manifest_path_for(out))
        # Flip a byte inside shard 3's span.
        offset = manifest.shards[2]["bytes_end"]
        data[offset + 5] ^= 0xFF
        out.write_bytes(data)

        report = make_pipeline(patients).generate_checkpointed(
            out, resume=True
        )
        assert report.status == STATUS_COMPLETE
        # Shards 0-2 survived; 3+ regenerated.
        assert report.resumed_shards == 3
        assert out.read_bytes() == reference_bytes

    def test_missing_output_regenerates_everything(
        self, patients, tmp_path, reference_bytes
    ):
        out = tmp_path / "corpus.jsonl"
        make_pipeline(patients).generate_checkpointed(out)
        out.unlink()
        report = make_pipeline(patients).generate_checkpointed(
            out, resume=True
        )
        assert report.resumed_shards == 0
        assert out.read_bytes() == reference_bytes


class TestDedupeAndMissStreakUnderResume:
    """A resumed run must not re-admit pairs a completed shard deduped,
    and shard-granular resume must not re-count generator misses
    (``miss_streak_limit`` state never crosses a shard boundary)."""

    def test_no_duplicate_keys_after_resume(self, patients, tmp_path):
        out = tmp_path / "corpus.jsonl"
        plan = FaultPlan((FaultSpec(F.INTERRUPT, shard_index=3),))
        with pytest.raises(GracefulExit):
            make_pipeline(patients).generate_checkpointed(out, faults=plan)
        make_pipeline(patients).generate_checkpointed(out, resume=True)
        keys = [
            (r["nl"], r["sql"])
            for r in map(json.loads, out.read_text().splitlines())
        ]
        assert len(keys) == len(set(keys))

    def test_resume_matches_streamed_dedupe_exactly(
        self, patients, tmp_path, reference_bytes
    ):
        # The reference stream threads ONE seen-set through all shards;
        # equality proves the resumed run reconstructed that set
        # correctly from the file prefix instead of starting empty.
        out = tmp_path / "corpus.jsonl"
        plan = FaultPlan((FaultSpec(F.INTERRUPT, shard_index=2),))
        with pytest.raises(GracefulExit):
            make_pipeline(patients).generate_checkpointed(out, faults=plan)
        make_pipeline(patients).generate_checkpointed(out, resume=True)
        assert out.read_bytes() == reference_bytes

    def test_miss_streak_isolated_per_shard_under_resume(self, tmp_path):
        """A schema/template combination that fast-fails via
        ``miss_streak_limit`` yields an empty shard; interrupting after
        it and resuming must not change that verdict (no re-counting
        against a different streak budget)."""
        from repro.core.seed_templates import SEED_TEMPLATES
        from repro.schema import load_schema

        # geography is single-table-heavy: join templates fast-fail.
        geography = load_schema("geography")
        config = GenerationConfig(size_slotfills=2, miss_streak_limit=2)
        templates = SEED_TEMPLATES[:TEMPLATES_N]

        def build():
            return TrainingPipeline(
                geography, config, templates=templates, seed=7
            )

        ref = tmp_path / "ref.jsonl"
        save_jsonl(
            itertools.chain.from_iterable(build().generate_stream(workers=0)),
            ref,
        )
        out = tmp_path / "resumed.jsonl"
        plan = FaultPlan((FaultSpec(F.INTERRUPT, shard_index=4),))
        with pytest.raises(GracefulExit):
            build().generate_checkpointed(out, faults=plan)
        build().generate_checkpointed(out, resume=True)
        assert out.read_bytes() == ref.read_bytes()


class TestQuarantineInManifest:
    def test_quarantine_recorded_and_sticky_on_resume(
        self, patients, tmp_path
    ):
        out = tmp_path / "corpus.jsonl"
        poison = FaultPlan((FaultSpec(F.CRASH, shard_index=2, attempts=99),))
        resilience = ResilienceConfig(max_attempts=2, backoff_base=0.01)
        report = make_pipeline(patients).generate_checkpointed(
            out, faults=poison, resilience=resilience
        )
        assert report.status == STATUS_QUARANTINE
        assert not report.ok
        manifest = CorpusManifest.load(report.manifest_path)
        assert manifest.status == STATUS_QUARANTINE
        [failed] = manifest.failed_shards
        assert failed["shard_index"] == 2
        assert failed["code"] == "E_SHARD_CRASH"
        assert failed["schema"] == "patients"
        assert failed["seed"] == {"entropy": SEED, "spawn_key": [2]}

        # Resuming (without the fault) must NOT retry the quarantined
        # shard: later shards are already committed, so appending shard
        # 2 now would break canonical order.
        resumed = make_pipeline(patients).generate_checkpointed(
            out, resume=True
        )
        assert resumed.status == STATUS_QUARANTINE
        assert resumed.new_pairs == 0
        assert [f.shard_index for f in resumed.quarantined] == [2]

    def test_trailing_quarantine_is_retried_on_resume(
        self, patients, tmp_path, reference_bytes
    ):
        """If the quarantined shard is *after* every committed shard,
        retrying it on resume is order-safe — and a resume without the
        fault plan must heal the corpus completely."""
        out = tmp_path / "corpus.jsonl"
        last = TEMPLATES_N - 1
        poison = FaultPlan((FaultSpec(F.CRASH, shard_index=last, attempts=99),))
        resilience = ResilienceConfig(max_attempts=2, backoff_base=0.01)
        report = make_pipeline(patients).generate_checkpointed(
            out, faults=poison, resilience=resilience
        )
        assert report.status == STATUS_QUARANTINE
        healed = make_pipeline(patients).generate_checkpointed(
            out, resume=True
        )
        assert healed.status == STATUS_COMPLETE
        assert out.read_bytes() == reference_bytes
