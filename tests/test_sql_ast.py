"""Tests for SQL AST node helpers."""

import pytest

from repro.sql import (
    AggFunc,
    Aggregate,
    ColumnRef,
    CompOp,
    Comparison,
    Literal,
    Placeholder,
    Star,
    conjoin,
    conjuncts,
    parse,
)
from repro.sql.ast import And


class TestCompOp:
    def test_flipped_involution(self):
        for op in CompOp:
            assert op.flipped().flipped() is op

    def test_negated_involution(self):
        for op in CompOp:
            assert op.negated().negated() is op

    def test_flip_examples(self):
        assert CompOp.LT.flipped() is CompOp.GT
        assert CompOp.LE.flipped() is CompOp.GE
        assert CompOp.EQ.flipped() is CompOp.EQ

    def test_negate_examples(self):
        assert CompOp.EQ.negated() is CompOp.NE
        assert CompOp.GT.negated() is CompOp.LE


class TestNodeStr:
    def test_column_ref(self):
        assert str(ColumnRef("age")) == "age"
        assert str(ColumnRef("age", table="p")) == "p.age"

    def test_literal_quoting(self):
        assert str(Literal(5)) == "5"
        assert str(Literal("o'brien")) == "'o''brien'"

    def test_placeholder(self):
        assert str(Placeholder("AGE")) == "@AGE"

    def test_placeholder_parts(self):
        dotted = Placeholder("STATE.NAME")
        assert dotted.table == "state"
        assert dotted.column == "name"
        plain = Placeholder("AGE")
        assert plain.table is None
        assert plain.column == "age"

    def test_aggregate(self):
        assert str(Aggregate(AggFunc.COUNT, Star())) == "COUNT(*)"
        assert (
            str(Aggregate(AggFunc.AVG, ColumnRef("age"), distinct=True))
            == "AVG(DISTINCT age)"
        )


class TestConjoin:
    def c(self, name, value):
        return Comparison(ColumnRef(name), CompOp.EQ, Literal(value))

    def test_empty(self):
        assert conjoin([]) is None

    def test_single(self):
        pred = self.c("a", 1)
        assert conjoin([pred]) is pred

    def test_multiple_flattens(self):
        nested = And((self.c("a", 1), self.c("b", 2)))
        result = conjoin([nested, self.c("c", 3)])
        assert isinstance(result, And)
        assert len(result.operands) == 3

    def test_conjuncts_inverse(self):
        preds = [self.c("a", 1), self.c("b", 2), self.c("c", 3)]
        assert conjuncts(conjoin(preds)) == preds
        assert conjuncts(None) == []


class TestQueryHelpers:
    def test_placeholders_deterministic_order(self):
        q = parse("SELECT * FROM t WHERE a = @A AND b = @B")
        first = [p.name for p in q.placeholders()]
        second = [p.name for p in q.placeholders()]
        assert first == second
        assert set(first) == {"A", "B"}

    def test_placeholders_include_nested(self):
        q = parse(
            "SELECT name FROM t WHERE x = (SELECT MAX(x) FROM t WHERE s = @S)"
        )
        assert [p.name for p in q.placeholders()] == ["S"]

    def test_placeholders_in_between_and_in(self):
        q = parse(
            "SELECT * FROM t WHERE a BETWEEN @LO AND @HI AND b IN (@X, @Y)"
        )
        assert {p.name for p in q.placeholders()} == {"LO", "HI", "X", "Y"}

    def test_column_refs_cover_clauses(self):
        q = parse(
            "SELECT a, MAX(b) FROM t WHERE c = 1 GROUP BY a "
            "HAVING COUNT(*) > 2 ORDER BY d"
        )
        names = {r.column for r in q.column_refs()}
        assert {"a", "b", "c", "d"} <= names

    def test_referenced_tables(self):
        q = parse("SELECT a.x FROM @JOIN WHERE b.y = @B.Y")
        assert q.referenced_tables() == ["a", "b"]

    def test_aggregates_collected(self):
        q = parse(
            "SELECT d, AVG(x) FROM t GROUP BY d HAVING COUNT(*) > 1 "
            "ORDER BY MAX(x)"
        )
        funcs = sorted(a.func.value for a in q.aggregates())
        assert funcs == ["AVG", "COUNT", "MAX"]

    def test_is_nested(self):
        assert parse("SELECT x FROM t WHERE y = (SELECT MAX(y) FROM t)").is_nested
        assert not parse("SELECT x FROM t").is_nested

    def test_uses_join_placeholder(self):
        assert parse("SELECT a.x FROM @JOIN").uses_join_placeholder
        assert not parse("SELECT x FROM t").uses_join_placeholder

    def test_query_hashable_and_frozen(self):
        q = parse("SELECT * FROM t")
        with pytest.raises(AttributeError):
            q.limit = 5
        assert hash(q) == hash(parse("SELECT * FROM t"))
