"""Tests for the fault-injection harness (matching and determinism)."""

import pytest

from repro.core import faults as F
from repro.core.faults import NO_FAULTS, FaultPlan, FaultSpec
from repro.errors import E_FAULT_INJECTED, FaultInjected


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec("explode")

    def test_rejects_nonpositive_attempts(self):
        with pytest.raises(ValueError):
            FaultSpec(F.CRASH, attempts=0)

    def test_wildcard_selectors_match_everything(self):
        spec = FaultSpec(F.CRASH)
        assert spec.matches(0, "patients", "t0", attempt=0)
        assert spec.matches(17, "geography", "t9", attempt=0)

    def test_attempt_window(self):
        spec = FaultSpec(F.CRASH, shard_index=3, attempts=2)
        assert spec.matches(3, "s", "t", attempt=0)
        assert spec.matches(3, "s", "t", attempt=1)
        assert not spec.matches(3, "s", "t", attempt=2)

    def test_selector_mismatch(self):
        spec = FaultSpec(F.CRASH, schema_name="patients", template_id="t1")
        assert spec.matches(5, "patients", "t1", attempt=0)
        assert not spec.matches(5, "geography", "t1", attempt=0)
        assert not spec.matches(5, "patients", "t2", attempt=0)


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not NO_FAULTS
        assert NO_FAULTS.find(F.SHARD_KINDS, 0, "s", "t", 0) is None

    def test_find_filters_by_kind_family(self):
        plan = FaultPlan(
            (
                FaultSpec(F.PARTIAL_WRITE, shard_index=1),
                FaultSpec(F.CRASH, shard_index=1),
            )
        )
        found = plan.find(F.SHARD_KINDS, 1, "s", "t", 0)
        assert found is not None and found.kind == F.CRASH
        found = plan.find(F.WRITER_KINDS, 1, "s", "t", 0)
        assert found is not None and found.kind == F.PARTIAL_WRITE

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan((FaultSpec(F.HANG, shard_index=2, hang_seconds=1.0),))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan


class TestFire:
    def test_crash_raises_fault_injected(self):
        with pytest.raises(FaultInjected) as excinfo:
            F.fire_shard_fault(FaultSpec(F.CRASH), shard_index=7)
        assert excinfo.value.code == E_FAULT_INJECTED
        assert "shard 7" in str(excinfo.value)

    def test_hang_returns_after_duration(self):
        import time

        start = time.monotonic()
        F.fire_shard_fault(
            FaultSpec(F.HANG, hang_seconds=0.05), shard_index=0
        )
        assert time.monotonic() - start >= 0.05
