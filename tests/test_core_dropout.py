"""Tests for the missing-information word dropout (§3.2.2)."""

import numpy as np

from repro.core import GenerationConfig, WordDropout
from repro.core.templates import Family, TrainingPair
from repro.sql import parse


def pair(nl="show the names of all patients diagnosed with @DIAGNOSIS"):
    return TrainingPair(
        nl=nl,
        sql=parse("SELECT name FROM patients WHERE diagnosis = @DIAGNOSIS"),
        template_id="t",
        family=Family.FILTER,
        schema_name="patients",
    )


def dropout(num_missing=3, rand_drop_p=1.0, seed=0):
    config = GenerationConfig(num_missing=num_missing, rand_drop_p=rand_drop_p)
    return WordDropout(config, np.random.default_rng(seed))


class TestDrop:
    def test_produces_duplicates(self):
        duplicates = dropout().drop(pair())
        assert duplicates
        assert all(d.augmentation == "dropout" for d in duplicates)

    def test_words_removed(self):
        source = pair()
        for duplicate in dropout().drop(source):
            assert len(duplicate.nl.split()) < len(source.nl.split())

    def test_placeholders_never_dropped(self):
        for duplicate in dropout().drop(pair()):
            assert "@DIAGNOSIS" in duplicate.nl

    def test_sql_unchanged(self):
        source = pair()
        for duplicate in dropout().drop(source):
            assert duplicate.sql == source.sql

    def test_rand_drop_p_zero_disables(self):
        assert dropout(rand_drop_p=0.0).drop(pair()) == []

    def test_num_missing_zero_disables(self):
        assert dropout(num_missing=0).drop(pair()) == []

    def test_num_missing_bounds_duplicates(self):
        assert len(dropout(num_missing=2).drop(pair())) <= 2

    def test_too_short_inputs_skipped(self):
        short = pair(nl="patients @DIAGNOSIS")
        assert dropout().drop(short) == []

    def test_attribute_before_placeholder_dropped_sometimes(self):
        """The §3.2.2 canonical case: the attribute mention in front of a
        placeholder gets removed ("diagnosed with" -> gone)."""
        source = pair()
        seen = set()
        for seed in range(15):
            for duplicate in dropout(seed=seed).drop(source):
                seen.add(duplicate.nl)
        assert any(
            "diagnosed" not in nl and "@DIAGNOSIS" in nl for nl in seen
        )

    def test_deterministic(self):
        first = [d.nl for d in dropout(seed=4).drop(pair())]
        second = [d.nl for d in dropout(seed=4).drop(pair())]
        assert first == second

    def test_no_duplicate_outputs(self):
        nls = [d.nl for d in dropout(num_missing=5).drop(pair())]
        assert len(nls) == len(set(nls))
