"""Dtype edges of the vectorized columnar engine.

The columnar arm promises bit-identical output to the planned row arm
*including* on data the array layer cannot represent faithfully: NULLs,
values smuggled past ``insert()``'s coercion (mixed int/float, strings
in numeric columns), NaN, integers beyond int64, strings with embedded
quotes or NUL bytes.  Representable edges must stay vectorized and
agree; unrepresentable ones must be *refused* by the column builder so
the per-step row fallback runs — this suite pins both the agreement and
the fallback decision (via :class:`ColumnarTrace` / session stats), so
a regression that silently vectorizes an unsafe dtype fails loudly.
"""

from __future__ import annotations

import pytest

from repro.db import COLUMNAR_MIN_ROWS, Database
from repro.db.planner import ExecutorSession, execute_planned, explain
from repro.db.vectorized import available as columnar_available
from repro.schema import Schema, Table, floating, integer, text
from repro.sql.parser import parse

pytestmark = pytest.mark.skipif(
    not columnar_available(), reason="numpy not installed"
)


def make_db() -> Database:
    schema = Schema(
        "edge",
        [
            Table(
                "t",
                [
                    integer("a", primary_key=True),
                    text("b"),
                    floating("c"),
                    integer("d"),
                ],
            ),
            Table("u", [integer("a", primary_key=True), text("label")]),
        ],
    )
    return Database(schema)


def inject(db: Database, table: str, row: dict) -> None:
    """Bypass ``insert()`` coercion — how mixed-type rows really arrive
    (tests, external loaders poking ``_rows``)."""
    db._rows[table].append(row)
    db._views.pop(table, None)
    db._column_stores.pop(table, None)
    db._version += 1


def assert_columnar_identical(db: Database, sql: str) -> ExecutorSession:
    """Forced-columnar output must equal the planned row arm's, value
    for value and row for row.  Returns the session for trace checks."""
    query = parse(sql)
    expected = execute_planned(query, db, columnar=False)
    session = ExecutorSession(db, columnar=True)
    assert session.execute(query) == expected, sql
    return session


def fallback_reasons(session: ExecutorSession) -> dict[str, int]:
    return session.stats()["columnar"]["fallback_reasons"]


class TestNullEdges:
    """NULLs are representable: these stay vectorized and agree."""

    def fill(self, db):
        rows = [
            (0, "x", 1.5, 7),
            (1, None, 2.5, None),
            (2, "y", None, 3),
            (3, "x", 0.5, None),
            (4, None, None, 7),
        ]
        for a, b, c, d in rows:
            db.insert("t", {"a": a, "b": b, "c": c, "d": d})

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t WHERE d = 7",
            "SELECT a FROM t WHERE d > 0 ORDER BY a",
            "SELECT a, b FROM t ORDER BY b, a",
            "SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY b",
            "SELECT b, SUM(d) FROM t GROUP BY b",
            "SELECT DISTINCT b FROM t",
            "SELECT COUNT(d), COUNT(*) FROM t",
            "SELECT a FROM t WHERE d BETWEEN 3 AND 9",
            "SELECT a FROM t WHERE b IN ('x', 'z')",
        ],
    )
    def test_nulls_identical_and_vectorized(self, sql):
        db = make_db()
        self.fill(db)
        session = assert_columnar_identical(db, sql)
        assert session.columnar_vectorized_steps > 0
        assert not fallback_reasons(session)

    def test_null_join_keys_match_nothing(self):
        db = make_db()
        self.fill(db)
        for a, label in [(7, "seven"), (3, "three")]:
            db.insert("u", {"a": a, "label": label})
        session = assert_columnar_identical(
            db,
            "SELECT t.a, u.label FROM t, u WHERE t.d = u.a ORDER BY t.a",
        )
        assert session.columnar_vectorized_steps > 0
        assert not fallback_reasons(session)


class TestUnrepresentableDtypes:
    """Refused by ``_build_column``: row fallback, identical output."""

    def seed(self, db):
        db.insert("t", {"a": 0, "b": "x", "c": 1.5, "d": 1})
        db.insert("t", {"a": 1, "b": "y", "c": 2.5, "d": 2})

    def check(self, db, sql, expected_reason_fragment):
        session = assert_columnar_identical(db, sql)
        reasons = fallback_reasons(session)
        assert any(
            expected_reason_fragment in reason for reason in reasons
        ), (sql, reasons)
        return session

    def test_mixed_str_and_int_column(self):
        db = make_db()
        self.seed(db)
        inject(db, "t", {"a": 2, "b": 99, "c": 3.5, "d": 3})
        self.check(
            db, "SELECT a, b FROM t ORDER BY a", "not vectorizable"
        )

    def test_mixed_int_float_column_projection_falls_back(self):
        db = make_db()
        self.seed(db)
        inject(db, "t", {"a": 2, "b": "z", "c": 2, "d": 3})  # int in FLOAT
        # The array holds 2.0 where storage holds int 2 — materializing
        # from it would change the value's type, so projection refuses.
        self.check(db, "SELECT c FROM t ORDER BY a", "inexact")

    def test_nan_refused(self):
        db = make_db()
        self.seed(db)
        db.insert("t", {"a": 2, "b": "z", "c": float("nan"), "d": 3})
        self.check(
            db, "SELECT a FROM t WHERE c > 0 ORDER BY a", "not vectorizable"
        )

    def test_huge_int_refused(self):
        db = make_db()
        self.seed(db)
        db.insert("t", {"a": 2, "b": "z", "c": 3.5, "d": 2**66})
        self.check(
            db, "SELECT a, d FROM t WHERE d > 0", "not vectorizable"
        )

    def test_embedded_nul_string_refused(self):
        db = make_db()
        self.seed(db)
        db.insert("t", {"a": 2, "b": "nul\x00byte", "c": 3.5, "d": 3})
        self.check(db, "SELECT DISTINCT b FROM t", "not vectorizable")

    def test_oversized_string_refused(self):
        db = make_db()
        self.seed(db)
        db.insert("t", {"a": 2, "b": "w" * 600, "c": 3.5, "d": 3})
        self.check(db, "SELECT a, b FROM t ORDER BY b", "not vectorizable")

    def test_fallback_join_key_still_identical(self):
        db = make_db()
        self.seed(db)
        inject(db, "t", {"a": 2, "b": "z", "c": 3.5, "d": "three"})
        db.insert("u", {"a": 1, "label": "one"})
        db.insert("u", {"a": 3, "label": "three"})
        self.check(
            db,
            "SELECT t.a, u.label FROM t, u WHERE t.d = u.a ORDER BY t.a",
            "not vectorizable",
        )


class TestRepresentableOddStrings:
    """Quotes and unicode round-trip the U-dtype: stay vectorized."""

    def test_embedded_quotes_sort_group_distinct(self):
        db = make_db()
        values = ['he said "hi"', "O'Brien", 'mix "of\' both', "plain", ""]
        for i, b in enumerate(values + values):
            db.insert("t", {"a": i, "b": b, "c": 0.5, "d": i})
        for sql in [
            "SELECT a, b FROM t ORDER BY b, a",
            "SELECT DISTINCT b FROM t ORDER BY b",
            "SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY b",
        ]:
            session = assert_columnar_identical(db, sql)
            assert session.columnar_vectorized_steps > 0
            assert not fallback_reasons(session)


class TestModeAndExplain:
    def big_db(self):
        db = make_db()
        db.insert_many(
            "t",
            (
                {"a": i, "b": f"b{i % 5}", "c": i / 2, "d": i % 3}
                for i in range(COLUMNAR_MIN_ROWS + 10)
            ),
        )
        return db

    def test_auto_threshold(self):
        small = make_db()
        small.insert("t", {"a": 0, "b": "x", "c": 1.5, "d": 1})
        session = ExecutorSession(small)  # auto
        session.execute(parse("SELECT a FROM t"))
        assert session.last_columnar_trace is None  # below threshold

        session = ExecutorSession(self.big_db())  # auto, above threshold
        session.execute(parse("SELECT a FROM t WHERE d = 1"))
        assert session.last_columnar_trace is not None
        assert session.columnar_vectorized_steps > 0
        assert session.stats()["columnar"]["mode"] == "auto"

    def test_off_mode_never_engages(self):
        session = ExecutorSession(self.big_db(), columnar=False)
        session.execute(parse("SELECT a FROM t WHERE d = 1"))
        assert session.last_columnar_trace is None
        assert session.stats()["columnar"]["mode"] == "off"

    def test_explain_annotates_arms(self):
        db = self.big_db()
        db.insert_many(
            "u", ({"a": i, "label": f"l{i}"} for i in range(4))
        )
        plan = explain(
            parse(
                "SELECT t.a, u.label FROM t, u "
                "WHERE t.d = u.a AND t.b = 'b1'"
            ),
            db,
        )
        assert "[vectorized]" in plan
        assert "columnar auto: engaged" in plan
        assert "finish vectorized" in plan

    def test_explain_annotates_row_fallback(self):
        db = self.big_db()
        inject(
            db,
            "t",
            {"a": -1, "b": 5, "c": 0.0, "d": 0},  # int in TEXT column
        )
        plan = explain(parse("SELECT a FROM t WHERE b = 'b1'"), db)
        assert "[row: " in plan

    def test_explain_below_threshold(self):
        db = make_db()
        db.insert("t", {"a": 0, "b": "x", "c": 1.5, "d": 1})
        plan = explain(parse("SELECT a FROM t"), db)
        assert f"below threshold ({COLUMNAR_MIN_ROWS} rows)" in plan
