"""The query planner and optimized executor (repro.db.planner)."""

from __future__ import annotations

import pytest

from repro.db import populate
from repro.db.executor import MAX_CROSS_PRODUCT, execute
from repro.db.index import ValueIndex
from repro.db.planner import (
    ExecutorSession,
    build_plan,
    execute_planned,
    explain,
)
from repro.errors import ExecutionError
from repro.sql.parser import parse


@pytest.fixture(scope="module")
def retail_db():
    from repro.schema import load_schema

    return populate(load_schema("retail"), rows_per_table=40, seed=11)


# ----------------------------------------------------------------------
# Plan shapes
# ----------------------------------------------------------------------


def test_single_table_filter_is_pushed_into_scan(retail_db):
    plan = build_plan(parse("SELECT name FROM customer WHERE age > 30"), retail_db)
    assert plan.base.table == "customer"
    assert len(plan.base.filters) == 1
    assert not plan.joins and not plan.residual


def test_equality_literal_becomes_eq_lookup(retail_db):
    plan = build_plan(
        parse("SELECT name FROM customer WHERE age = 34 AND city = 'salem'"),
        retail_db,
    )
    assert set(plan.base.eq_lookups) == {("age", 34), ("city", "salem")}
    assert not plan.base.filters


def test_fk_conjunct_becomes_hash_join(retail_db):
    plan = build_plan(
        parse(
            "SELECT customer.name FROM customer, orders "
            "WHERE orders.customer_id = customer.customer_id"
        ),
        retail_db,
    )
    (join,) = plan.joins
    assert join.is_hash_join
    ((bound, new),) = join.keys
    assert bound.table == "customer" and new.table == "orders"
    assert not plan.residual


def test_three_table_star_joins_in_from_order(retail_db):
    plan = build_plan(
        parse(
            "SELECT customer.name FROM customer, product, orders "
            "WHERE orders.customer_id = customer.customer_id "
            "AND orders.product_id = product.product_id"
        ),
        retail_db,
    )
    assert [j.scan.table for j in plan.joins] == ["product", "orders"]
    # product has no join key to customer: guarded cross product, then
    # orders hash-joins against both bound tables at once.
    assert not plan.joins[0].is_hash_join
    assert len(plan.joins[1].keys) == 2


def test_pushdown_keeps_predicate_on_its_table(retail_db):
    plan = build_plan(
        parse(
            "SELECT customer.name FROM customer, orders "
            "WHERE orders.customer_id = customer.customer_id "
            "AND orders.quantity > 2"
        ),
        retail_db,
    )
    assert not plan.base.filters
    assert len(plan.joins[0].scan.filters) == 1


def test_subquery_predicate_stays_residual(retail_db):
    plan = build_plan(
        parse(
            "SELECT name FROM customer "
            "WHERE age > (SELECT AVG(age) FROM customer)"
        ),
        retail_db,
    )
    assert not plan.base.filters and not plan.base.eq_lookups
    assert len(plan.residual) == 1


def test_unknown_column_stays_residual_and_raises_like_naive(retail_db):
    query = parse("SELECT name FROM customer WHERE customer.missing = 1")
    plan = build_plan(query, retail_db)
    assert len(plan.residual) == 1
    with pytest.raises(ExecutionError, match="unknown column"):
        execute_planned(query, retail_db)
    with pytest.raises(ExecutionError, match="unknown column"):
        execute(query, retail_db)


def test_duplicate_from_table_falls_back_to_naive(retail_db):
    plan = build_plan(parse("SELECT name FROM customer, customer"), retail_db)
    assert plan.uses_naive_fallback
    assert "duplicate" in plan.fallback_reason


# ----------------------------------------------------------------------
# Execution equivalence
# ----------------------------------------------------------------------

EQUIV_SQL = (
    "SELECT name FROM customer WHERE age > 30 ORDER BY age DESC, name",
    "SELECT customer.name, orders.order_id FROM customer, orders "
    "WHERE orders.customer_id = customer.customer_id",
    "SELECT customer.name, product.product_name FROM customer, product, orders "
    "WHERE orders.customer_id = customer.customer_id "
    "AND orders.product_id = product.product_id AND product.price > 15",
    "SELECT customer.city, COUNT(*) FROM customer, orders "
    "WHERE orders.customer_id = customer.customer_id GROUP BY customer.city",
    "SELECT DISTINCT product.category FROM product, orders "
    "WHERE orders.product_id = product.product_id ORDER BY product.category",
    "SELECT name FROM customer WHERE age = 34",
    "SELECT COUNT(*) FROM orders WHERE quantity > 1 AND quantity < 5",
)


@pytest.mark.parametrize("sql", EQUIV_SQL)
def test_planned_matches_naive_bit_for_bit(retail_db, sql):
    query = parse(sql)
    assert execute_planned(query, retail_db) == execute(query, retail_db)


def test_planned_with_session_matches_naive(retail_db):
    session = ExecutorSession(retail_db)
    for sql in EQUIV_SQL:
        query = parse(sql)
        assert session.execute(query) == execute(query, retail_db)


def test_cross_product_guard_names_count_and_missing_join():
    from repro.schema import load_schema

    database = populate(load_schema("retail"), rows_per_table=160, seed=1)
    query = parse("SELECT customer.name FROM customer, product, orders")
    with pytest.raises(ExecutionError) as excinfo:
        execute_planned(query, database)
    message = str(excinfo.value)
    assert f"limit {MAX_CROSS_PRODUCT:,}" in message
    assert "estimated" in message
    assert "add a join predicate" in message
    assert "orders.customer_id = customer.customer_id" in message


def test_planner_survives_where_cross_product_guard_trips():
    """The planned arm's reason to exist: a join query whose raw cross
    product trips the naive guard executes fine through hash joins."""
    from repro.schema import load_schema

    database = populate(load_schema("retail"), rows_per_table=160, seed=1)
    query = parse(
        "SELECT customer.name FROM customer, product, orders "
        "WHERE orders.customer_id = customer.customer_id "
        "AND orders.product_id = product.product_id"
    )
    with pytest.raises(ExecutionError):
        execute(query, database)  # 160^3 > MAX_CROSS_PRODUCT
    rows = execute_planned(query, database)
    assert len(rows) == database.row_count("orders")


# ----------------------------------------------------------------------
# Sessions: cache, indexes, value-index pruning
# ----------------------------------------------------------------------


def test_session_cache_hits_on_canonical_equivalents(retail_db):
    session = ExecutorSession(retail_db)
    first = session.execute(parse("SELECT name FROM customer WHERE age = 34"))
    # Different surface text, same canonical SQL: flip the comparison.
    second = session.execute(parse("SELECT name FROM customer WHERE 34 = age"))
    assert first == second
    assert session.cache_hits == 1 and session.cache_misses == 1


def test_session_cache_returns_fresh_copies(retail_db):
    session = ExecutorSession(retail_db)
    query = parse("SELECT name FROM customer LIMIT 1")
    first = session.execute(query)
    first[0]["name"] = "mutated"
    assert session.execute(query)[0]["name"] != "mutated"


def test_session_cache_invalidated_by_insert(retail):
    database = populate(retail, rows_per_table=10, seed=2)
    session = ExecutorSession(database)
    query = parse("SELECT COUNT(*) FROM customer")
    before = session.execute(query)
    database.insert(
        "customer",
        {"customer_id": 9999, "name": "new", "city": "salem", "age": 1},
    )
    after = session.execute(query)
    assert next(iter(after[0].values())) == next(iter(before[0].values())) + 1
    assert session.cache_hits == 0 and session.cache_misses == 2


def test_session_cache_is_bounded(retail_db):
    session = ExecutorSession(retail_db, cache_size=2)
    for age in (20, 30, 40, 50):
        session.execute(parse(f"SELECT name FROM customer WHERE age = {age}"))
    assert len(session._cache) == 2


def test_value_index_prunes_impossible_constant(retail_db):
    index = ValueIndex(retail_db)
    session = ExecutorSession(retail_db, value_index=index)
    query = parse("SELECT name FROM customer WHERE city = 'xyzzy-nowhere'")
    assert session.execute(query) == execute(query, retail_db) == []


def test_value_index_does_not_prune_present_constant(retail_db):
    city = retail_db.column_values("customer", "city")[0]
    index = ValueIndex(retail_db)
    session = ExecutorSession(retail_db, value_index=index)
    query = parse(f"SELECT name FROM customer WHERE city = '{city}'")
    rows = session.execute(query)
    assert rows == execute(query, retail_db)
    assert rows  # the constant exists, so pruning must not fire


def test_session_records_stage_timings(retail_db):
    session = ExecutorSession(retail_db)
    session.execute(
        parse(
            "SELECT customer.city, COUNT(*) FROM customer, orders "
            "WHERE orders.customer_id = customer.customer_id "
            "GROUP BY customer.city ORDER BY customer.city"
        )
    )
    stages = session.stats()["stages"]
    assert {"scan", "join", "group", "sort"} <= set(stages)


# ----------------------------------------------------------------------
# ORDER BY type safety (satellite: no bare TypeError out of sort)
# ----------------------------------------------------------------------


def test_order_by_mixed_types_raises_execution_error():
    # Storage coerces column types, so mixed-type sort keys can only
    # come from upstream bugs or hand-built rows; the sorter must fail
    # with a named ExecutionError, not a bare TypeError off list.sort.
    from repro.db.executor import _order_rows

    query = parse("SELECT name FROM customer ORDER BY age")
    rows = [
        {"name": "a", "__order__age": 7},
        {"name": "b", "__order__age": "old"},
    ]
    with pytest.raises(ExecutionError, match="ORDER BY key 'age'"):
        _order_rows(rows, query)


def test_order_by_desc_mixed_types_raises_execution_error():
    from repro.db.executor import _order_rows

    query = parse("SELECT name FROM customer ORDER BY age DESC")
    rows = [
        {"name": "a", "__order__age": "old"},
        {"name": "b", "__order__age": 7},
    ]
    with pytest.raises(ExecutionError, match="ORDER BY key 'age'"):
        _order_rows(rows, query)


def test_order_by_nulls_sort_last_and_stably(retail):
    database = populate(retail, rows_per_table=6, seed=4)
    database.insert(
        "customer", {"customer_id": 888, "name": "n", "city": "salem", "age": None}
    )
    query = parse("SELECT name, age FROM customer ORDER BY age")
    rows = execute_planned(query, database)
    assert rows == execute(query, database)
    assert rows[-1]["age"] is None


# ----------------------------------------------------------------------
# EXPLAIN
# ----------------------------------------------------------------------


def test_explain_renders_plan_operators(retail_db):
    text = explain(
        parse(
            "SELECT customer.city, COUNT(*) FROM customer, orders "
            "WHERE orders.customer_id = customer.customer_id "
            "AND orders.quantity > 2 AND customer.city = 'salem' "
            "GROUP BY customer.city ORDER BY customer.city LIMIT 5"
        ),
        retail_db,
    )
    assert "plan for:" in text
    assert "scan customer" in text
    assert "index eq customer.city = 'salem'" in text
    assert "hash join" in text
    assert "orders.quantity > 2" in text
    assert "hash group by" in text
    assert "sort by" in text
    assert "limit 5" in text


def test_explain_shows_naive_fallback(retail_db):
    text = explain(parse("SELECT name FROM customer, customer"), retail_db)
    assert "naive cross-product execution" in text


def test_explain_marks_guarded_cross_product(retail_db):
    text = explain(parse("SELECT customer.name FROM customer, product"), retail_db)
    assert "cross product" in text and "guarded" in text


# ----------------------------------------------------------------------
# CLI: repro db explain
# ----------------------------------------------------------------------


def test_cli_db_explain(capsys):
    from repro.cli import main

    exit_code = main(
        [
            "db",
            "explain",
            "retail",
            "SELECT customer.name, orders.order_id FROM @JOIN "
            "WHERE orders.quantity > 1",
            "--rows-per-table",
            "12",
            "--execute",
        ]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "hash join" in out
    assert "row(s)" in out
    assert "executor perf" in out


def test_cli_db_explain_rejects_bad_sql(capsys):
    from repro.cli import main

    exit_code = main(["db", "explain", "retail", "SELEC nonsense"])
    assert exit_code == 1
    assert "error" in capsys.readouterr().err
