"""Property-based tests for the SQL subsystem (hypothesis).

Random ASTs are built from a recursive strategy; the key invariants:

* print -> parse is the identity on ASTs;
* normalization is idempotent and preserved by print/parse;
* pattern signatures are invariant under identifier renaming;
* the grammar automaton accepts every printed query's token stream.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.neural.base import sql_to_tokens
from repro.neural.grammar import SqlDecodingAutomaton
from repro.sql import normalize, parse, pattern_signature, to_sql
from repro.sql.ast import (
    AggFunc,
    Aggregate,
    And,
    Between,
    ColumnRef,
    CompOp,
    Comparison,
    InPredicate,
    Like,
    Literal,
    Or,
    OrderItem,
    Placeholder,
    Query,
    Star,
    Subquery,
)

_names = st.sampled_from(["age", "name", "size", "price", "city", "kind"])
_tables = st.sampled_from(["alpha", "beta", "gamma"])


def _columns(qualified: bool):
    if qualified:
        return st.builds(ColumnRef, _names, _tables)
    return st.builds(ColumnRef, _names)


_literals = st.one_of(
    st.integers(min_value=-999, max_value=999).map(Literal),
    st.sampled_from(["x", "flu", "a'b"]).map(Literal),
)
_placeholders = st.sampled_from(["AGE", "NAME", "STATE.NAME", "AGE.LOW"]).map(
    Placeholder
)
_values = st.one_of(_literals, _placeholders)
_ops = st.sampled_from(list(CompOp))


def _comparisons(qualified: bool):
    return st.builds(Comparison, _columns(qualified), _ops, _values)


def _atoms(qualified: bool):
    return st.one_of(
        _comparisons(qualified),
        st.builds(
            Between,
            _columns(qualified),
            st.integers(0, 50).map(Literal),
            st.integers(51, 99).map(Literal),
        ),
        st.builds(
            Like,
            _columns(qualified),
            st.sampled_from(["a%", "_x"]).map(Literal),
            st.booleans(),
        ),
        st.builds(
            InPredicate,
            _columns(qualified),
            st.lists(_literals, min_size=2, max_size=3, unique_by=str).map(tuple),
            st.none(),
            st.booleans(),
        ),
    )


def _predicates(qualified: bool):
    """Alternating And/Or nesting.

    ``And`` directly inside ``And`` (and Or in Or) is avoided: the
    printer emits flat chains for those, so the parser rightly returns
    the flattened AST and identity-roundtrip cannot hold for the
    nested spelling.  Alternating nesting is the canonical form.
    """
    atoms = _atoms(qualified)
    ors = st.lists(atoms, min_size=2, max_size=3).map(tuple).map(Or)
    ands = (
        st.lists(st.one_of(atoms, ors), min_size=2, max_size=3)
        .map(tuple)
        .map(And)
    )
    return st.one_of(atoms, ors, ands)


_aggregates = st.builds(
    Aggregate,
    st.sampled_from(list(AggFunc)),
    st.one_of(st.builds(ColumnRef, _names), st.just(Star())),
    st.booleans(),
)


@st.composite
def queries(draw) -> Query:
    multi = draw(st.booleans())
    if multi:
        from_tables = tuple(sorted(draw(st.sets(_tables, min_size=2, max_size=3))))
    else:
        from_tables = (draw(_tables),)
    qualified = multi
    n_items = draw(st.integers(1, 2))
    select = tuple(
        draw(st.one_of(_columns(qualified), _aggregates)) for _ in range(n_items)
    )
    where = draw(st.one_of(st.none(), _predicates(qualified)))
    group_by = ()
    having = None
    if draw(st.booleans()) and not multi:
        group_by = (draw(_columns(False)),)
        if draw(st.booleans()):
            having = Comparison(
                Aggregate(AggFunc.COUNT, Star()), draw(_ops), Literal(draw(st.integers(0, 9)))
            )
    order_by = ()
    if draw(st.booleans()):
        order_by = (OrderItem(draw(_columns(qualified)), draw(st.booleans())),)
    limit = draw(st.one_of(st.none(), st.integers(1, 99)))
    return Query(
        select=select,
        from_tables=from_tables,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=limit,
        distinct=draw(st.booleans()),
    )


@settings(max_examples=150, deadline=None)
@given(queries())
def test_print_parse_roundtrip(query: Query):
    assert parse(to_sql(query)) == query


@settings(max_examples=100, deadline=None)
@given(queries())
def test_normalize_idempotent(query: Query):
    once = normalize(query)
    assert normalize(once) == once


@settings(max_examples=100, deadline=None)
@given(queries())
def test_normalized_form_survives_roundtrip(query: Query):
    normalized = normalize(query)
    assert normalize(parse(to_sql(normalized))) == normalized


@settings(max_examples=100, deadline=None)
@given(queries())
def test_grammar_automaton_accepts_printed_queries(query: Query):
    tokens = sql_to_tokens(to_sql(query))
    assert SqlDecodingAutomaton().accepts(tokens), to_sql(query)


_RENAME = {"age": "years", "name": "label", "size": "extent", "price": "fee",
           "city": "town", "kind": "sort_of", "alpha": "one", "beta": "two",
           "gamma": "three"}


@settings(max_examples=80, deadline=None)
@given(queries())
def test_pattern_signature_invariant_under_renaming(query: Query):
    sql = to_sql(query)
    renamed = sql
    for old, new in _RENAME.items():
        renamed = renamed.replace(old, new)
    assert pattern_signature(parse(sql)) == pattern_signature(parse(renamed))
