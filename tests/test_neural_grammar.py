"""Tests for the SQL decoding grammar automaton."""

import pytest

from repro.neural import SqlDecodingAutomaton, classify
from repro.neural.base import sql_to_tokens
from repro.neural.grammar import END, GrammarMask, GrammarViolation
from repro.nlp.vocab import Vocab


def accepts(sql_text: str) -> bool:
    return SqlDecodingAutomaton().accepts(sql_to_tokens(sql_text))


class TestClassify:
    def test_keywords(self):
        assert classify("SELECT") == "SELECT"
        assert classify("COUNT") == "COUNT"

    def test_categories(self):
        assert classify("@AGE") == "PLACEHOLDER"
        assert classify("@JOIN") == "JOIN_PH"
        assert classify("42") == "NUMBER"
        assert classify("3.5") == "NUMBER"
        assert classify("'text'") == "STRING"
        assert classify(">=") == "OP"
        assert classify("patients") == "IDENT"
        assert classify("(") == "("


class TestAccepts:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM patients",
            "SELECT name, age FROM patients",
            "SELECT DISTINCT name FROM patients",
            "SELECT COUNT(*) FROM patients WHERE age > @AGE",
            "SELECT AVG(t.age) FROM t GROUP BY t.d HAVING COUNT(*) > @NUM",
            "SELECT * FROM a, b WHERE a.x = b.y ORDER BY a.x DESC LIMIT 5",
            "SELECT name FROM t WHERE age = (SELECT MAX(age) FROM t)",
            "SELECT * FROM t WHERE x IN (SELECT y FROM u WHERE z = 1)",
            "SELECT * FROM t WHERE x IN (1, 2, 3)",
            "SELECT * FROM t WHERE EXISTS (SELECT * FROM u)",
            "SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM u)",
            "SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)",
            "SELECT * FROM t WHERE x BETWEEN @X.LOW AND @X.HIGH",
            "SELECT * FROM t WHERE name NOT LIKE 'a%'",
            "SELECT AVG(p.age) FROM @JOIN WHERE d.name = @D.NAME",
        ],
    )
    def test_valid_accepted(self, sql):
        assert accepts(sql)

    @pytest.mark.parametrize(
        "tokens",
        [
            ["FROM", "t"],
            ["SELECT", "FROM", "t"],
            ["SELECT", "*"],
            ["SELECT", "*", "FROM"],
            ["SELECT", "*", "FROM", "t", "WHERE"],
            ["SELECT", "*", "FROM", "t", "WHERE", "a", "="],
            ["SELECT", "*", "FROM", "t", "LIMIT", "x"],
            ["SELECT", "*", "FROM", "t", "GROUP", "name"],
            ["SELECT", "*", "FROM", "t", "ORDER", "BY"],
            ["SELECT", "*", "FROM", "t", ")"],
            ["SELECT", "COUNT", "*", "FROM", "t"],
            ["SELECT", "*", "FROM", "t", "WHERE", "a", "=", "1", "1"],
            ["SELECT", "*", "FROM", "t", "HAVING", "COUNT", "(", "*", ")", ">", "1"],
        ],
    )
    def test_invalid_rejected(self, tokens):
        assert not SqlDecodingAutomaton().accepts(tokens)

    def test_incomplete_not_accepted(self):
        automaton = SqlDecodingAutomaton()
        for token in ["SELECT", "*", "FROM"]:
            automaton.advance(token)
        assert END not in automaton.allowed_symbols()

    def test_clause_order_enforced(self):
        # GROUP BY cannot precede WHERE.
        assert not SqlDecodingAutomaton().accepts(
            "SELECT * FROM t GROUP BY d WHERE a = 1".split()
        )

    def test_advance_raises_on_violation(self):
        automaton = SqlDecodingAutomaton()
        with pytest.raises(GrammarViolation):
            automaton.advance("FROM")


class TestAllowedSymbols:
    def test_start_allows_only_select(self):
        assert SqlDecodingAutomaton().allowed_symbols() == {"SELECT"}

    def test_end_allowed_after_complete_query(self):
        automaton = SqlDecodingAutomaton()
        for token in sql_to_tokens("SELECT * FROM t"):
            automaton.advance(token)
        assert END in automaton.allowed_symbols()

    def test_subquery_close_required(self):
        automaton = SqlDecodingAutomaton()
        for token in sql_to_tokens("SELECT name FROM t WHERE age = ( SELECT MAX ( age ) FROM t"):
            automaton.advance(token)
        allowed = automaton.allowed_symbols()
        assert ")" in allowed
        assert END not in allowed


class TestGrammarMask:
    def make_vocab(self):
        return Vocab(
            "SELECT FROM WHERE * t name age = @AGE COUNT ( ) GROUP BY".split()
        )

    def test_mask_start(self):
        vocab = self.make_vocab()
        mask = GrammarMask(vocab).mask_for([])
        allowed_tokens = {vocab.token_of(i) for i in range(len(vocab)) if mask[i]}
        assert allowed_tokens == {"SELECT"}

    def test_eos_masked_until_complete(self):
        vocab = self.make_vocab()
        gm = GrammarMask(vocab)
        mid = gm.mask_for(["SELECT", "*", "FROM"])
        assert not mid[vocab.eos_id]
        done = gm.mask_for(["SELECT", "*", "FROM", "t"])
        assert done[vocab.eos_id]

    def test_specials_never_allowed(self):
        vocab = self.make_vocab()
        gm = GrammarMask(vocab)
        mask = gm.mask_for(["SELECT"])
        assert not mask[vocab.pad_id]
        assert not mask[vocab.bos_id]
        assert not mask[vocab.unk_id]

    def test_invalid_prefix_returns_none(self):
        gm = GrammarMask(self.make_vocab())
        assert gm.mask_for(["FROM", "FROM"]) is None
