"""Tests for the vocabulary and the PPMI+SVD embeddings."""

import numpy as np
import pytest

from repro.nlp import BOS, EOS, PAD, UNK, Vocab, WordEmbeddings


class TestVocab:
    def test_specials_reserved(self):
        vocab = Vocab(["a", "b"])
        assert vocab.token_of(0) == PAD
        assert vocab.token_of(1) == BOS
        assert vocab.token_of(2) == EOS
        assert vocab.token_of(3) == UNK

    def test_frequency_order(self):
        vocab = Vocab(["b", "a", "b"])
        assert vocab.id_of("b") < vocab.id_of("a")

    def test_alphabetical_tiebreak(self):
        vocab = Vocab(["b", "a"])
        assert vocab.id_of("a") < vocab.id_of("b")

    def test_unknown_maps_to_unk(self):
        vocab = Vocab(["a"])
        assert vocab.id_of("zzz") == vocab.unk_id

    def test_min_count(self):
        vocab = Vocab(["a", "a", "b"], min_count=2)
        assert "a" in vocab and "b" not in vocab

    def test_encode_decode_roundtrip(self):
        vocab = Vocab(["a", "b", "c"])
        ids = vocab.encode(["a", "c"], add_bos=True, add_eos=True)
        assert ids[0] == vocab.bos_id and ids[-1] == vocab.eos_id
        assert vocab.decode(ids) == ["a", "c"]

    def test_decode_keep_specials(self):
        vocab = Vocab(["a"])
        ids = vocab.encode(["a"], add_eos=True)
        assert vocab.decode(ids, strip_special=False)[-1] == EOS

    def test_from_sequences(self):
        vocab = Vocab.from_sequences([["a", "b"], ["a"]])
        assert vocab.id_of("a") < vocab.id_of("b")

    def test_serialization_roundtrip(self):
        vocab = Vocab(["alpha", "beta"])
        clone = Vocab.from_dict(vocab.to_dict())
        assert clone.tokens == vocab.tokens
        assert clone.id_of("beta") == vocab.id_of("beta")

    def test_deterministic(self):
        assert Vocab(["x", "y", "x"]).tokens == Vocab(["x", "x", "y"]).tokens


def _corpus():
    patterns = [
        ["show", "me", "the", "patients"],
        ["display", "me", "the", "patients"],
        ["show", "all", "cities"],
        ["display", "all", "cities"],
        ["show", "me", "the", "rivers"],
        ["display", "me", "the", "rivers"],
        ["count", "the", "mountains"],
        ["tally", "the", "mountains"],
    ]
    return patterns * 6


class TestWordEmbeddings:
    def test_synonyms_close(self):
        emb = WordEmbeddings.fit(_corpus(), dim=8, min_count=2)
        assert emb.similarity("show", "display") > emb.similarity("show", "patients")

    def test_unknown_word_zero_vector(self):
        emb = WordEmbeddings.fit(_corpus(), dim=8, min_count=2)
        assert not np.any(emb.vector("xyzzy"))
        assert emb.similarity("xyzzy", "show") == 0.0

    def test_vectors_unit_norm(self):
        emb = WordEmbeddings.fit(_corpus(), dim=8, min_count=2)
        norm = np.linalg.norm(emb.vector("show"))
        assert norm == pytest.approx(1.0, abs=1e-6)

    def test_nearest(self):
        emb = WordEmbeddings.fit(_corpus(), dim=8, min_count=2)
        neighbours = [w for w, _ in emb.nearest("show", k=3)]
        assert "display" in neighbours

    def test_nearest_unknown_word_empty(self):
        emb = WordEmbeddings.fit(_corpus(), dim=8, min_count=2)
        assert emb.nearest("xyzzy") == []

    def test_min_count_filters(self):
        emb = WordEmbeddings.fit([["rare", "words"]], dim=4, min_count=2)
        assert "rare" not in emb

    def test_empty_corpus(self):
        emb = WordEmbeddings.fit([], dim=4)
        assert len(emb) == 0
        assert emb.vector("x").shape == (4,)

    def test_matrix_for(self):
        emb = WordEmbeddings.fit(_corpus(), dim=8, min_count=2)
        matrix = emb.matrix_for(["show", "me"])
        assert matrix.shape == (2, 8)

    def test_deterministic(self):
        first = WordEmbeddings.fit(_corpus(), dim=8, min_count=2, seed=4)
        second = WordEmbeddings.fit(_corpus(), dim=8, min_count=2, seed=4)
        assert np.allclose(first.vector("show"), second.vector("show"))
