"""The budgeted execute–verify–repair loop (:mod:`repro.serving.repair`).

Covers the pipeline's three stages and every terminal outcome, the
deterministic fault hooks (slow-execute, oscillation, adapter crash),
the service integration (counters, accounting identities, trace
plumbing, zero-attempt bit-identity), the lint-gated keyword fallback,
and the cross-shard repair rollup.
"""

import json
import pickle
import threading

import pytest

from repro.adapters import MemoryAdapter
from repro.analysis import FixHint, Severity, analyze_query
from repro.core.faults import (
    ADAPTER_CRASH,
    NO_REPAIR_FAULTS,
    REPAIR_OSCILLATE,
    SLOW_EXECUTE,
    RepairFaultPlan,
    RepairFaultSpec,
)
from repro.db import populate
from repro.db.index import ValueIndex
from repro.errors import (
    E_REPAIR_BUDGET,
    E_REPAIR_EXEC,
    E_REPAIR_OSCILLATION,
    E_REPAIR_UNFIXABLE,
    ServingError,
)
from repro.neural.base import TranslationModel
from repro.runtime import DBPal
from repro.schema import load_schema
from repro.serving import (
    KeywordFallback,
    RepairBudget,
    RepairPipeline,
    ServingConfig,
    TranslationService,
    merge_shard_stats,
)
from repro.sql import parse, to_sql

pytestmark = pytest.mark.repair


@pytest.fixture(scope="module")
def university():
    return load_schema("university")


@pytest.fixture(scope="module")
def university_db(university):
    return populate(university, rows_per_table=25, seed=4)


def make_pipeline(db, **kwargs):
    kwargs.setdefault("adapter", MemoryAdapter(db))
    kwargs.setdefault("value_index", ValueIndex(db))
    return RepairPipeline(db.schema, **kwargs)


# ----------------------------------------------------------------------
# Budget
# ----------------------------------------------------------------------


class TestRepairBudget:
    def test_defaults_enabled(self):
        assert RepairBudget().enabled

    def test_zero_attempts_disables(self):
        assert not RepairBudget(max_attempts=0).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": -1},
            {"deadline": 0.0},
            {"execute_timeout": 0.0},
            {"max_candidates": 0},
            {"max_rows": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ServingError):
            RepairBudget(**kwargs)


class TestRepairFaultSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RepairFaultSpec("meteor_strike")

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            RepairFaultSpec(SLOW_EXECUTE, attempts=0)

    def test_matching(self):
        spec = RepairFaultSpec(ADAPTER_CRASH, run_index=3, attempts=2)
        assert spec.matches(3, 0) and spec.matches(3, 1)
        assert not spec.matches(3, 2)  # step past attempts
        assert not spec.matches(4, 0)  # wrong run
        plan = RepairFaultPlan((spec,))
        assert plan and plan.find(ADAPTER_CRASH, 3, 0) is spec
        assert plan.find(SLOW_EXECUTE, 3, 0) is None
        assert not NO_REPAIR_FAULTS


# ----------------------------------------------------------------------
# Fix hints (machine-readable repair keys on diagnostics)
# ----------------------------------------------------------------------


class TestFixHints:
    def test_unknown_column_hint(self, patients):
        diags = analyze_query(parse("SELECT nmae FROM patients"), patients)
        errors = [d for d in diags if d.severity is Severity.ERROR]
        assert errors and errors[0].fix == FixHint("unknown_column", subject="nmae")
        assert errors[0].to_dict()["fix"]["kind"] == "unknown_column"

    def test_unknown_table_hint(self, patients):
        diags = analyze_query(parse("SELECT x FROM starships"), patients)
        kinds = {d.fix.kind for d in diags if d.fix is not None}
        assert "unknown_table" in kinds

    def test_scope_hint_names_table(self, university):
        diags = analyze_query(parse("SELECT student.name FROM course"), university)
        hints = [d.fix for d in diags if d.fix is not None]
        assert any(
            h.kind == "table_not_in_scope" and h.table == "student" for h in hints
        )


# ----------------------------------------------------------------------
# Pipeline outcomes
# ----------------------------------------------------------------------


class TestPipelineOutcomes:
    def test_clean_passthrough(self, patients_db):
        pipe = make_pipeline(patients_db)
        report = pipe.run(parse("SELECT COUNT(*) FROM patients"))
        assert report.outcome == "clean" and not report.accepted
        assert report.trace.to_dict()["outcome"] == "clean"
        assert report.trace.budget["attempts_used"] == 0

    def test_unknown_column_repaired_and_verified(self, patients_db):
        pipe = make_pipeline(patients_db)
        report = pipe.run(parse("SELECT nmae FROM patients"))
        assert report.outcome == "repaired" and report.verified
        assert report.sql == "SELECT name FROM patients"
        trace = report.trace.to_dict()
        assert trace["codes_tried"] == ["L102"]
        assert trace["edits"][0]["action"] == "rename_column"
        assert trace["executions"][0]["verdict"] == "ok"
        assert trace["budget"]["attempts_used"] >= 1

    def test_unknown_table_repaired(self, patients_db):
        pipe = make_pipeline(patients_db)
        report = pipe.run(parse("SELECT COUNT(*) FROM patient"))
        assert report.outcome == "repaired" and report.verified
        assert report.sql == "SELECT COUNT(*) FROM patients"

    def test_sum_on_text_becomes_count(self, patients_db):
        pipe = make_pipeline(patients_db)
        report = pipe.run(parse("SELECT SUM(name) FROM patients"))
        assert report.outcome == "repaired"
        assert report.sql == "SELECT COUNT(name) FROM patients"

    def test_aggregate_in_where_moves_to_having(self, patients_db):
        pipe = make_pipeline(patients_db)
        report = pipe.run(parse("SELECT name FROM patients WHERE COUNT(*) > 2"))
        assert report.outcome == "repaired"
        assert "HAVING COUNT(*) > 2" in report.sql
        assert "GROUP BY name" in report.sql

    def test_out_of_scope_table_joined_in(self, university_db):
        pipe = make_pipeline(university_db)
        report = pipe.run(parse("SELECT student.name FROM department"))
        assert report.outcome == "repaired"
        assert "student" in report.query.from_tables
        # The FK equality condition was inferred, not a cross product.
        assert "WHERE" in report.sql

    def test_unfixable_abandons_with_original(self, patients_db):
        pipe = make_pipeline(patients_db)
        original = "SELECT warp_core FROM starships"
        report = pipe.run(parse(original))
        assert report.outcome == "abandoned" and not report.accepted
        assert report.sql == original  # never downgrades the caller's answer
        assert report.trace.error_code == E_REPAIR_UNFIXABLE

    def test_run_never_raises(self, patients_db):
        class ExplodingAdapter:
            def execute(self, query, max_rows=None):
                raise RuntimeError("boom")

        pipe = make_pipeline(patients_db, adapter=ExplodingAdapter())
        report = pipe.run(parse("SELECT nmae FROM patients"))
        # Execution refuted the candidate; the original is served.
        assert report.outcome == "abandoned"
        assert report.trace.error_code == E_REPAIR_EXEC
        assert report.sql == "SELECT nmae FROM patients"

    def test_no_adapter_serves_unverified(self, patients_db):
        pipe = make_pipeline(patients_db, adapter=None)
        report = pipe.run(parse("SELECT nmae FROM patients"))
        assert report.outcome == "repaired" and not report.verified
        assert report.trace.executions == []


# ----------------------------------------------------------------------
# Budget exhaustion and fault hooks
# ----------------------------------------------------------------------


class TestBudgetEdges:
    def test_deadline_before_repair_exhausts(self, patients_db):
        ticks = iter(i * 0.3 for i in range(100))
        pipe = make_pipeline(
            patients_db,
            budget=RepairBudget(max_attempts=2, deadline=0.25),
            clock=lambda: next(ticks),
        )
        report = pipe.run(parse("SELECT nmae FROM patients"))
        assert report.outcome == "budget_exhausted"
        assert report.trace.error_code == E_REPAIR_BUDGET
        assert report.trace.budget["exhausted"]
        assert report.sql == "SELECT nmae FROM patients"

    def test_slow_execute_charges_virtual_time_no_sleep(self, patients_db):
        faults = RepairFaultPlan(
            (RepairFaultSpec(SLOW_EXECUTE, slow_seconds=3600.0),)
        )
        pipe = make_pipeline(patients_db, faults=faults)
        report = pipe.run(parse("SELECT nmae FROM patients"))
        # The candidate's execution "took an hour": verdict demoted to
        # timeout, but the lint-clean candidate is still served
        # (best-unverified beats nothing).
        assert report.outcome == "repaired" and not report.verified
        assert report.trace.executions[0]["verdict"] == "timeout"
        assert report.trace.budget["spent_seconds"] >= 3600.0
        assert report.trace.budget["exhausted"]

    def test_oscillation_fault_abandons(self, patients_db):
        faults = RepairFaultPlan((RepairFaultSpec(REPAIR_OSCILLATE, attempts=5),))
        pipe = make_pipeline(patients_db, faults=faults)
        report = pipe.run(parse("SELECT nmae FROM patients"))
        assert report.outcome == "abandoned"
        assert report.trace.error_code == E_REPAIR_OSCILLATION

    def test_adapter_crash_fault_mid_rerank(self, patients_db):
        faults = RepairFaultPlan((RepairFaultSpec(ADAPTER_CRASH, attempts=5),))
        pipe = make_pipeline(patients_db, faults=faults)
        report = pipe.run(parse("SELECT nmae FROM patients"))
        assert report.outcome == "abandoned"
        assert report.trace.error_code == E_REPAIR_EXEC
        assert "FaultInjected" in report.trace.executions[0]["detail"]

    def test_fault_scoped_to_one_run(self, patients_db):
        faults = RepairFaultPlan((RepairFaultSpec(ADAPTER_CRASH, run_index=0),))
        pipe = make_pipeline(patients_db, faults=faults)
        first = pipe.run(parse("SELECT nmae FROM patients"))
        second = pipe.run(parse("SELECT nmae FROM patients"))
        assert first.outcome == "abandoned"
        assert second.outcome == "repaired" and second.verified


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------


class ScriptedModel(TranslationModel):
    def __init__(self, sql="SELECT COUNT(*) FROM patients"):
        self.sql = sql
        self.mode = "ok"
        self._lock = threading.Lock()

    def fit(self, pairs, **kwargs):
        pass

    def translate(self, nl):
        return self.translate_batch([nl])[0]

    def translate_batch(self, nls):
        if self.mode == "crash":
            raise RuntimeError("injected model crash")
        return [self.sql for _ in nls]


def make_service(patients_db, sql="SELECT COUNT(*) FROM patients", **config_kwargs):
    model = ScriptedModel(sql)
    defaults = dict(workers=2, batch_window=0.002, request_timeout=5.0)
    defaults.update(config_kwargs)
    service = TranslationService(DBPal(patients_db, model), ServingConfig(**defaults))
    return service, model


class TestServiceIntegration:
    def test_clean_output_untouched(self, patients_db):
        service, _ = make_service(patients_db)
        with service:
            response = service.translate("how many patients are there")
        assert response.ok and response.sql == "SELECT COUNT(*) FROM patients"
        assert response.repair is not None
        assert response.repair["outcome"] == "clean"
        assert service.metrics.counter("repair.clean") == 1
        assert service.metrics.counter("repair.attempted") == 0

    def test_broken_output_repaired(self, patients_db):
        service, _ = make_service(patients_db, sql="SELECT nmae FROM patients")
        with service:
            response = service.translate("show the name of every patient")
        assert response.ok and response.sql == "SELECT name FROM patients"
        assert response.result.repaired
        assert response.repair["outcome"] == "repaired"
        assert response.repair["verified"]
        assert service.metrics.counter("repair.repaired") == 1
        record = response.to_dict()
        assert record["repair"]["outcome"] == "repaired"
        json.dumps(record)  # trace must be JSON-ready

    def test_response_with_trace_pickles(self, patients_db):
        # Sharded serving ships responses through a process pipe.
        service, _ = make_service(patients_db, sql="SELECT nmae FROM patients")
        with service:
            response = service.translate("show the name of every patient")
        clone = pickle.loads(pickle.dumps(response))
        assert clone.repair == response.repair

    def test_zero_attempt_budget_is_bit_identical(self, patients_db):
        enabled, _ = make_service(patients_db)
        disabled, _ = make_service(patients_db, repair_attempts=0)
        question = "how many patients are there"
        with enabled, disabled:
            on = enabled.translate(question)
            off = disabled.translate(question)
        assert off.repair is None
        assert "repair" not in off.to_dict()
        assert on.payload() == off.payload()
        # And the whole JSON view matches a pre-repair service's,
        # modulo the per-process request id and latency.
        off_record = off.to_dict()
        assert set(off_record) == {
            "request_id", "nl", "status", "source", "sql", "failure", "latency",
        }
        # Disabled loop: no pipeline, no counters, no identities.
        stats = disabled.stats()
        assert stats["repair"] is None
        assert all(
            not item["identity"].startswith("repair.")
            for item in stats["accounting"]["identities"]
        )

    def test_accounting_identities_hold(self, patients_db):
        service, model = make_service(patients_db, sql="SELECT nmae FROM patients")
        with service:
            service.translate("show the name of every patient")
            model.sql = "SELECT warp_core FROM starships"
            service.translate("how many patients are there")
        stats = service.stats()
        names = [i["identity"] for i in stats["accounting"]["identities"]]
        assert "repair.requests == repair.clean + repair.attempted" in names
        assert (
            "repair.attempted == repair.repaired + repair.abandoned"
            " + repair.budget_exhausted" in names
        )
        assert stats["accounting"]["consistent"], stats["accounting"]
        counters = stats["counters"]
        assert counters["repair.requests"] == 2
        assert counters["repair.repaired"] == 1
        assert counters["repair.abandoned"] == 1
        assert stats["repair"]["enabled"]
        assert stats["repair"]["last_trace"]["outcome"] == "abandoned"

    def test_repair_runs_under_tripped_breaker(self, patients_db):
        # Model down, breaker open: the fallback leg still goes through
        # the repair pipeline and every response stays structured.
        service, model = make_service(patients_db, failure_threshold=1)
        model.mode = "crash"
        with service:
            first = service.translate("show the age of all patients")
            second = service.translate("show the diagnosis of all patients")
        assert first.status == "degraded" and second.status == "degraded"
        assert service.breaker.stats()["state"] == "open"
        assert service.metrics.counter("repair.requests") == 2
        stats = service.stats()
        assert stats["accounting"]["consistent"]

    def test_service_with_faulted_repair_never_raises(self, patients_db):
        from repro.serving.service import TranslationService as Svc

        model = ScriptedModel("SELECT nmae FROM patients")
        faults = RepairFaultPlan((RepairFaultSpec(ADAPTER_CRASH, attempts=5),))
        service = Svc(
            DBPal(patients_db, model),
            ServingConfig(workers=2, batch_window=0.002),
            repair_faults=faults,
        )
        with service:
            response = service.translate("show the name of every patient")
        # Repair refuted by the injected crash: original answer served.
        assert response.ok and response.sql == "SELECT nmae FROM patients"
        assert response.repair["outcome"] == "abandoned"


# ----------------------------------------------------------------------
# Lint-gated keyword fallback (satellite)
# ----------------------------------------------------------------------


class TestFallbackLintGate:
    def test_verify_accepts_clean(self, patients):
        fallback = KeywordFallback(patients)
        assert fallback._verify("SELECT name FROM patients")

    def test_verify_rejects_unknown_column(self, patients):
        fallback = KeywordFallback(patients)
        assert not fallback._verify("SELECT warp_core FROM patients")
        assert not fallback._verify("SELECT name FROM starships")
        assert not fallback._verify("SELECT FROM WHERE")

    def test_translate_output_is_always_lint_clean(self, patients):
        fallback = KeywordFallback(patients)
        questions = [
            "show the name of every patient",
            "what is the average age",
            "diagnosis and length of stay",
            "colorless green ideas sleep furiously",
        ]
        produced = 0
        for question in questions:
            sql = fallback.translate(question)
            if sql is None:
                continue
            produced += 1
            diags = analyze_query(parse(sql), patients)
            assert not any(d.severity is Severity.ERROR for d in diags), sql
        assert produced > 0  # the gate must not silence everything


# ----------------------------------------------------------------------
# Cross-shard rollup
# ----------------------------------------------------------------------


class TestShardMerge:
    def test_repair_counters_roll_up(self):
        def snap(requests, clean, repaired, abandoned, exhausted):
            return {
                "counters": {
                    "requests_total": requests,
                    "repair.requests": requests,
                    "repair.clean": clean,
                    "repair.attempted": repaired + abandoned + exhausted,
                    "repair.repaired": repaired,
                    "repair.abandoned": abandoned,
                    "repair.budget_exhausted": exhausted,
                },
                "repair": {"enabled": True},
                "latency_samples": [0.01],
            }

        merged = merge_shard_stats(
            [snap(10, 6, 3, 1, 0), snap(6, 2, 2, 1, 1)], elapsed=1.0
        )
        rollup = merged["repair"]
        assert rollup["requests"] == 16
        assert rollup["clean"] == 8
        assert rollup["repaired"] == 5
        assert rollup["abandoned"] == 2
        assert rollup["budget_exhausted"] == 1
        assert rollup["repair_rate"] == round(5 / 16, 4)

    def test_no_repair_section_when_disabled(self):
        merged = merge_shard_stats(
            [{"counters": {"requests_total": 3}, "repair": None}], elapsed=1.0
        )
        assert merged["repair"] is None
