"""`translate_batch` contract audit across every registered model.

The serving layer micro-batches concurrent requests into one
``translate_batch`` call, so the batch path must be *observationally
identical* to N independent ``translate`` calls — same outputs, same
order, duplicates included, empty input returning an empty list.  A
model that violated this would corrupt cached translations for every
rider of the batch.
"""

import pytest

from repro.core import GenerationConfig, TrainingPipeline
from repro.neural import (
    CrossDomainModel,
    RetrievalModel,
    Seq2SeqModel,
    SyntaxAwareModel,
)


@pytest.fixture(scope="module")
def tiny_pairs(patients):
    corpus = TrainingPipeline(
        patients, GenerationConfig(size_slotfills=2), seed=11
    ).generate()
    return corpus.subsample(60, seed=11).pairs


def _fitted_models(patients, pairs):
    retrieval = RetrievalModel()
    retrieval.fit(pairs)
    seq2seq = Seq2SeqModel(embed_dim=8, hidden_dim=12, epochs=1, seed=0)
    seq2seq.fit(pairs)
    syntax = SyntaxAwareModel(embed_dim=8, hidden_dim=12, epochs=1, seed=0)
    syntax.fit(pairs)
    cross = CrossDomainModel(
        SyntaxAwareModel(embed_dim=8, hidden_dim=12, epochs=1, seed=0),
        [patients],
        default_schema=patients,
    )
    cross.fit(pairs)
    return {
        "retrieval": retrieval,
        "seq2seq": seq2seq,
        "syntax": syntax,
        "crossdomain": cross,
    }


@pytest.fixture(scope="module")
def fitted_models(patients, tiny_pairs):
    return _fitted_models(patients, tiny_pairs)


MODEL_NAMES = ("retrieval", "seq2seq", "syntax", "crossdomain")


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestTranslateBatchContract:
    def test_empty_input_returns_empty_list(self, fitted_models, name):
        model = fitted_models[name]
        assert model.translate_batch([]) == []

    def test_batch_matches_independent_translate_calls(
        self, fitted_models, tiny_pairs, name
    ):
        model = fitted_models[name]
        inputs = [pair.nl for pair in tiny_pairs[:5]]
        expected = [model.translate(nl) for nl in inputs]
        assert model.translate_batch(inputs) == expected

    def test_duplicates_translate_identically(self, fitted_models, tiny_pairs, name):
        model = fitted_models[name]
        question = tiny_pairs[0].nl
        other = tiny_pairs[1].nl
        batch = model.translate_batch([question, other, question, question])
        assert len(batch) == 4
        assert batch[0] == batch[2] == batch[3] == model.translate(question)
        assert batch[1] == model.translate(other)

    def test_unseen_and_empty_strings_are_per_item(self, fitted_models, name):
        model = fitted_models[name]
        inputs = ["", "zyx qwv unknowntoken"]
        batch = model.translate_batch(inputs)
        assert len(batch) == 2
        assert batch == [model.translate(nl) for nl in inputs]

    def test_output_length_always_matches(self, fitted_models, tiny_pairs, name):
        model = fitted_models[name]
        for size in (1, 2, 7):
            inputs = [pair.nl for pair in tiny_pairs[:size]]
            assert len(model.translate_batch(inputs)) == size
