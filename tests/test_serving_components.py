"""Unit tests for the serving-layer building blocks.

Everything time-dependent is driven by a fake clock — no sleeps.
"""

import threading

import pytest

from repro.errors import ServingError
from repro.serving import (
    BatchRequest,
    CircuitBreaker,
    KeywordFallback,
    MetricsRegistry,
    MicroBatcher,
    ServingConfig,
    TokenBucket,
    TranslationCache,
    percentile,
)
from repro.serving.limits import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestServingConfig:
    def test_defaults_valid(self):
        config = ServingConfig()
        assert config.workers >= 1
        assert set(config.to_dict()) >= {"workers", "batch_window", "cache_ttl"}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"max_batch_size": 0},
            {"batch_window": -0.1},
            {"queue_capacity": -1},
            {"request_timeout": 0},
            {"rate_limit": -1.0},
            {"burst": 0},
            {"failure_threshold": 0},
            {"cooldown": -1.0},
            {"cache_capacity": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ServingError):
            ServingConfig(**kwargs)


class TestTranslationCache:
    def test_hit_miss_and_lru_eviction(self):
        cache = TranslationCache(capacity=2, ttl=0)
        cache.put("a", "SQL A")
        cache.put("b", "SQL B")
        assert cache.get("a").value == "SQL A"  # refreshes a's recency
        cache.put("c", "SQL C")  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a").value == "SQL A"
        assert cache.get("c").value == "SQL C"
        assert cache.evictions == 1

    def test_ttl_expiry_and_stale_serving(self):
        clock = FakeClock()
        cache = TranslationCache(capacity=8, ttl=10.0, clock=clock)
        cache.put("k", "SQL")
        clock.advance(9.9)
        assert cache.get("k").value == "SQL"
        clock.advance(0.2)
        assert cache.get("k") is None  # expired
        stale = cache.get("k", allow_expired=True)
        assert stale is not None and stale.stale and stale.value == "SQL"

    def test_negative_entries_cached(self):
        cache = TranslationCache(capacity=4, ttl=0)
        cache.put("k", None)
        hit = cache.get("k")
        assert hit is not None and hit.value is None

    def test_stats_zero_guarded(self):
        cache = TranslationCache(capacity=4)
        stats = cache.stats()
        assert stats["hit_rate"] == 0.0 and stats["size"] == 0


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [True] * 3
        assert not bucket.try_acquire()
        clock.advance(0.5)  # +1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_disabled_when_rate_zero(self):
        bucket = TokenBucket(rate=0.0, burst=1)
        assert all(bucket.try_acquire() for _ in range(100))


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=5.0, clock=clock)
        assert breaker.state == CLOSED
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(5.1)
        assert breaker.allow()  # half-open probe slot
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.stats()["opened_count"] == 2

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=1.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED


class TestMetricsRegistry:
    def test_idle_snapshot_is_all_zeros(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        snap = registry.snapshot()  # elapsed == 0: every rate must guard
        assert snap["qps"] == 0.0
        assert snap["latency"]["p50"] == 0.0
        assert snap["cache_hit_rate"] == 0.0
        assert snap["mean_batch_size"] == 0.0

    def test_percentiles_and_qps(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        for i in range(100):
            registry.record_request("ok", "model", seconds=(i + 1) / 1000.0)
        clock.advance(10.0)
        snap = registry.snapshot()
        assert snap["qps"] == pytest.approx(10.0)
        assert snap["latency"]["p50"] == pytest.approx(0.050)
        assert snap["latency"]["p99"] == pytest.approx(0.099)
        assert snap["latency"]["max"] == pytest.approx(0.100)
        assert snap["counters"]["status.ok"] == 100

    def test_batch_histogram(self):
        registry = MetricsRegistry()
        for size in (1, 4, 4, 8):
            registry.record_batch(size)
        snap = registry.snapshot()
        assert snap["batch_size_histogram"] == {"1": 1, "4": 2, "8": 1}
        assert snap["mean_batch_size"] == pytest.approx((1 + 4 + 4 + 8) / 4)

    def test_percentile_edge_cases(self):
        assert percentile([], 50) == 0.0
        assert percentile([3.0], 99) == 3.0
        assert percentile([1.0, 2.0], 0) == 1.0

    def test_format_table_idle(self):
        assert "requests" in MetricsRegistry().format_table()


class TestKeywordFallback:
    def test_matches_table_and_columns(self, patients_db):
        fallback = KeywordFallback(patients_db.schema)
        sql = fallback.translate("show the age of all patient")
        assert sql is not None and "FROM patients" in sql and "age" in sql

    def test_parseable_output(self, patients_db, geography_db):
        from repro.sql.parser import try_parse

        for db, question in (
            (patients_db, "name of every patient"),
            (geography_db, "what city have the biggest population"),
        ):
            sql = KeywordFallback(db.schema).translate(question)
            assert sql is not None and try_parse(sql) is not None

    def test_no_match_returns_none(self, patients_db):
        fallback = KeywordFallback(patients_db.schema)
        assert fallback.translate("quux flibber zot") is None
        assert fallback.translate("") is None


class TestMicroBatcher:
    def test_batches_respect_max_size(self):
        seen: list[list[str]] = []
        done = threading.Event()

        def process(batch):
            seen.append([r.key for r in batch])
            for request in batch:
                request.future.set_result(("model_ok", request.key.upper()))
            if sum(len(b) for b in seen) >= 10:
                done.set()

        batcher = MicroBatcher(
            process, workers=1, max_batch_size=4, batch_window=0.05
        )
        batcher.start()
        try:
            requests = [BatchRequest(key=f"q{i}", model_input=f"q{i}") for i in range(10)]
            for request in requests:
                assert batcher.submit(request)
            done.wait(timeout=5.0)
            results = [r.future.result(timeout=5.0) for r in requests]
        finally:
            batcher.stop()
        assert [value for _status, value in results] == [f"Q{i}" for i in range(10)]
        assert max(len(batch) for batch in seen) <= 4
        # The window coalesced at least one multi-request batch.
        assert any(len(batch) > 1 for batch in seen)

    def test_crashing_callback_resolves_futures(self):
        def process(batch):
            raise RuntimeError("boom")

        batcher = MicroBatcher(process, workers=1, max_batch_size=2, batch_window=0.0)
        batcher.start()
        try:
            request = BatchRequest(key="k", model_input="k")
            batcher.submit(request)
            with pytest.raises(RuntimeError):
                request.future.result(timeout=5.0)
        finally:
            batcher.stop()

    def test_queue_full_sheds(self):
        release = threading.Event()

        def process(batch):
            release.wait(timeout=5.0)
            for request in batch:
                request.future.set_result(("model_ok", None))

        batcher = MicroBatcher(
            process, workers=1, max_batch_size=1, batch_window=0.0, queue_capacity=1
        )
        batcher.start()
        try:
            first = BatchRequest(key="a", model_input="a")
            assert batcher.submit(first)
            first_running = False
            # Wait until the worker picked up the first request.
            for _ in range(200):
                if batcher._queue.empty():
                    first_running = True
                    break
                release.wait(timeout=0.005)
            assert first_running
            assert batcher.submit(BatchRequest(key="b", model_input="b"))
            assert not batcher.submit(BatchRequest(key="c", model_input="c"))
        finally:
            release.set()
            batcher.stop()

    def test_submit_requires_start(self):
        batcher = MicroBatcher(lambda batch: None)
        with pytest.raises(ServingError):
            batcher.submit(BatchRequest(key="k", model_input="k"))
