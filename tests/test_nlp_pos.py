"""Tests for the rule-based POS tagger and extensions."""

import pytest

from repro.nlp.extra_paraphrases import (
    EXTRA_PARAPHRASE_GROUPS,
    combined_paraphrase_database,
)
from repro.nlp.pos import (
    ADJ,
    ADP,
    AUX,
    DET,
    DROPPABLE_TAGS,
    NOUN,
    NUM,
    PLACEHOLDER,
    PUNCT,
    VERB,
    WH,
    tag,
    tag_word,
)


class TestTagWord:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("the", DET),
            ("of", ADP),
            ("is", AUX),
            ("what", WH),
            ("show", VERB),
            ("average", ADJ),
            ("patient", NOUN),
            ("42", NUM),
            ("3.5", NUM),
            ("@AGE", PLACEHOLDER),
            ("?", PUNCT),
            ("quickly", ADJ if False else "ADV"),
            ("diagnosed", VERB),
            ("information", NOUN),
            ("beautiful", ADJ),
        ],
    )
    def test_examples(self, word, expected):
        assert tag_word(word) == expected

    def test_unknown_defaults_to_noun(self):
        assert tag_word("zorblax") == NOUN

    def test_case_insensitive(self):
        assert tag_word("The") == DET


class TestTagSentence:
    def test_full_question(self):
        tags = dict(tag("show the age of all patients with @AGE"))
        assert tags["show"] == VERB
        assert tags["the"] == DET
        assert tags["of"] == ADP
        assert tags["@AGE"] == PLACEHOLDER
        assert tags["patients"] == NOUN

    def test_droppable_tags_exclude_nouns(self):
        assert NOUN not in DROPPABLE_TAGS
        assert PLACEHOLDER not in DROPPABLE_TAGS
        assert DET in DROPPABLE_TAGS


class TestPosAwareDropout:
    def test_nouns_never_dropped(self):
        import numpy as np

        from repro.core import GenerationConfig, WordDropout
        from repro.core.templates import Family, TrainingPair
        from repro.sql import parse

        pair = TrainingPair(
            nl="show the diagnosis of all patients having age @AGE",
            sql=parse("SELECT diagnosis FROM patients WHERE age = @AGE"),
            template_id="t",
            family=Family.FILTER,
            schema_name="patients",
        )
        dropout = WordDropout(
            GenerationConfig(num_missing=5, rand_drop_p=1.0),
            np.random.default_rng(0),
            pos_aware=True,
        )
        for duplicate in dropout.drop(pair):
            assert "diagnosis" in duplicate.nl
            assert "patients" in duplicate.nl

    def test_pipeline_flag_wires_through(self, patients):
        from repro.core import GenerationConfig, TrainingPipeline

        pipeline = TrainingPipeline(
            patients,
            GenerationConfig(size_slotfills=2),
            seed=0,
            pos_aware_dropout=True,
        )
        corpus = pipeline.generate()
        assert len(corpus) > 0


class TestExtraParaphrases:
    def test_combined_database_includes_both_sources(self):
        ppdb = combined_paraphrase_database(noise_rate=0.0)
        assert ppdb.contains("show")  # main source
        assert ppdb.contains("pull up")  # extra source
        phrases = {e.phrase for e in ppdb.lookup("show me")}
        assert "pull up" in phrases
        assert "give me" in phrases  # main source still present

    def test_extra_groups_disjoint_from_human_style(self):
        from repro.bench import HUMAN_STYLE

        extras = {p for group in EXTRA_PARAPHRASE_GROUPS for p in group}
        for replacement in HUMAN_STYLE.values():
            assert replacement not in extras

    def test_pipeline_accepts_combined_database(self, patients):
        from repro.core import GenerationConfig, TrainingPipeline

        pipeline = TrainingPipeline(
            patients,
            GenerationConfig(size_slotfills=2),
            ppdb=combined_paraphrase_database(),
            seed=0,
        )
        assert len(pipeline.generate()) > 0
