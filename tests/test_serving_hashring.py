"""Property tests for the consistent-hash ring (ISSUE 8).

The three properties the sharded serving tier leans on:

1. every key routes to exactly one shard (and deterministically so,
   across ring instances — the hash is ``blake2b``, not the
   ``PYTHONHASHSEED``-perturbed builtin);
2. the key distribution is within 2x of uniform on a realistic key
   population at the default vnode count;
3. removing one shard remaps only the keys that lived on it, and
   adding a shard steals only roughly its fair share — everyone
   else's keys stay put (warm caches survive resizes).
"""

from __future__ import annotations

import pytest

from repro.errors import ServingError
from repro.serving import HashRing

#: A realistic key population: anonymized question shapes x paraphrase
#: markers, deterministic (no RNG, no builtin hash).
KEYS = [
    f"show me the {noun} of all patients with {attr} @V{i}"
    for noun in ("name", "age", "count", "average", "stay", "diagnosis")
    for attr in ("age", "length_of_stay", "name", "gender")
    for i in range(40)
]


def test_every_key_routes_to_exactly_one_node():
    ring = HashRing(["shard-0", "shard-1", "shard-2"])
    for key in KEYS:
        owner = ring.route(key)
        assert owner in ("shard-0", "shard-1", "shard-2")
        # Deterministic: same key, same owner, every time and on a
        # freshly built ring with the same membership.
        assert ring.route(key) == owner
    rebuilt = HashRing(["shard-2", "shard-0", "shard-1"])  # order-independent
    assert all(rebuilt.route(k) == ring.route(k) for k in KEYS)


@pytest.mark.parametrize("nodes", [2, 3, 4])
def test_distribution_within_2x_of_uniform(nodes):
    ring = HashRing([f"shard-{i}" for i in range(nodes)])
    counts = ring.distribution(KEYS)
    assert sum(counts.values()) == len(KEYS)
    fair = len(KEYS) / nodes
    for node, count in counts.items():
        assert count <= 2 * fair, (node, counts)
        assert count >= fair / 2, (node, counts)


def test_removing_one_node_remaps_only_its_keys():
    ring = HashRing(["shard-0", "shard-1", "shard-2", "shard-3"])
    before = {key: ring.route(key) for key in KEYS}
    ring.remove("shard-2")
    moved = 0
    for key in KEYS:
        after = ring.route(key)
        if before[key] == "shard-2":
            moved += 1
            assert after != "shard-2"
        else:
            # The consistent-hash contract: survivors keep their keys.
            assert after == before[key], key
    assert moved == sum(1 for owner in before.values() if owner == "shard-2")


def test_adding_a_node_steals_only_a_bounded_share():
    ring = HashRing(["shard-0", "shard-1", "shard-2"])
    before = {key: ring.route(key) for key in KEYS}
    ring.add("shard-3")
    stolen = 0
    for key in KEYS:
        after = ring.route(key)
        if after != before[key]:
            # Keys only ever move *to* the new node, never between
            # the incumbents.
            assert after == "shard-3", key
            stolen += 1
    # Expected share is 1/4; allow 2x for hash lumpiness.
    assert stolen <= 2 * len(KEYS) / 4, stolen
    assert stolen > 0  # the new node actually takes traffic


def test_empty_ring_and_membership_errors():
    ring = HashRing()
    with pytest.raises(ServingError):
        ring.route("anything")
    ring.add("shard-0")
    with pytest.raises(ServingError):
        ring.add("shard-0")  # duplicate
    with pytest.raises(ServingError):
        ring.remove("shard-9")  # unknown
    assert "shard-0" in ring
    assert len(ring) == 1
    assert ring.stats()["points"] == ring.vnodes


def test_vnodes_validation():
    with pytest.raises(ServingError):
        HashRing(vnodes=0)
