"""AST edit helpers (:mod:`repro.sql.edits`) used by the repair loop."""

import pytest

from repro.sql import (
    AggFunc,
    Aggregate,
    ColumnRef,
    add_group_by,
    map_column_refs,
    map_placeholders,
    move_aggregate_conjuncts_to_having,
    move_having_to_where,
    parse,
    qualify_column,
    rename_column,
    rename_table,
    replace_aggregate_func,
    set_from,
    to_sql,
)

pytestmark = pytest.mark.repair


def roundtrip(sql: str):
    return parse(sql)


class TestRenameColumn:
    def test_renames_everywhere(self):
        q = roundtrip(
            "SELECT nmae FROM patients WHERE nmae = 'x' ORDER BY nmae"
        )
        out = rename_column(q, "nmae", "name")
        assert to_sql(out) == (
            "SELECT name FROM patients WHERE name = 'x' ORDER BY name"
        )

    def test_respects_old_table_qualifier(self):
        q = roundtrip(
            "SELECT patients.nmae, other.nmae FROM patients, other"
        )
        out = rename_column(q, "nmae", "name", old_table="patients")
        assert to_sql(out) == (
            "SELECT patients.name, other.nmae FROM patients, other"
        )

    def test_can_requalify(self):
        q = roundtrip("SELECT nmae FROM patients")
        out = rename_column(q, "nmae", "name", new_table="patients")
        assert to_sql(out) == "SELECT patients.name FROM patients"

    def test_renames_matching_placeholder_segment(self):
        q = roundtrip("SELECT name FROM patients WHERE nmae = @NMAE")
        out = rename_column(q, "nmae", "name")
        assert to_sql(out) == "SELECT name FROM patients WHERE name = @NAME"

    def test_renames_inside_aggregate(self):
        q = roundtrip("SELECT AVG(agee) FROM patients")
        out = rename_column(q, "agee", "age")
        assert to_sql(out) == "SELECT AVG(age) FROM patients"

    def test_untouched_query_is_equal(self):
        q = roundtrip("SELECT name FROM patients")
        assert rename_column(q, "zzz", "name") == q


class TestRenameTable:
    def test_renames_from_and_qualifiers(self):
        q = roundtrip("SELECT patient.name FROM patient WHERE patient.age > 3")
        out = rename_table(q, "patient", "patients")
        assert to_sql(out) == (
            "SELECT patients.name FROM patients WHERE patients.age > 3"
        )

    def test_renames_dotted_placeholder_head(self):
        q = roundtrip("SELECT name FROM patient WHERE name = @PATIENT.NAME")
        out = rename_table(q, "patient", "patients")
        assert "@PATIENTS.NAME" in to_sql(out)
        assert "FROM patients" in to_sql(out)


class TestClauseRewrites:
    def test_qualify_column(self):
        q = roundtrip("SELECT name FROM patients, doctors")
        out = qualify_column(q, "name", "patients")
        assert to_sql(out) == "SELECT patients.name FROM patients, doctors"

    def test_set_from(self):
        q = roundtrip("SELECT name FROM patients")
        out = set_from(q, ("patients", "visits"))
        assert out.from_tables == ("patients", "visits")

    def test_move_aggregate_conjuncts_to_having(self):
        q = roundtrip(
            "SELECT name FROM patients WHERE age > 3 AND COUNT(*) > 2"
        )
        out = move_aggregate_conjuncts_to_having(q)
        assert to_sql(out) == (
            "SELECT name FROM patients WHERE age > 3 HAVING COUNT(*) > 2"
        )

    def test_move_having_to_where_refuses_aggregates(self):
        q = roundtrip("SELECT name FROM patients HAVING COUNT(*) > 2")
        assert move_having_to_where(q) == q

    def test_move_having_to_where_moves_plain_predicates(self):
        q = roundtrip("SELECT name FROM patients HAVING age > 2")
        out = move_having_to_where(q)
        assert to_sql(out) == "SELECT name FROM patients WHERE age > 2"

    def test_add_group_by_skips_present_keys(self):
        q = roundtrip("SELECT name, COUNT(*) FROM patients GROUP BY name")
        out = add_group_by(q, (ColumnRef("name"),))
        assert out == q

    def test_add_group_by_appends(self):
        q = roundtrip("SELECT name, COUNT(*) FROM patients")
        out = add_group_by(q, (ColumnRef("name"),))
        assert "GROUP BY name" in to_sql(out)

    def test_replace_aggregate_func(self):
        q = roundtrip("SELECT SUM(name) FROM patients")
        old = q.aggregates()[0]
        new = Aggregate(AggFunc.COUNT, old.arg)
        out = replace_aggregate_func(q, old, new)
        assert to_sql(out) == "SELECT COUNT(name) FROM patients"


class TestStructuralMaps:
    def test_map_column_refs_visits_subqueries(self):
        q = roundtrip(
            "SELECT name FROM patients WHERE age IN "
            "(SELECT age FROM patients WHERE nmae = 'x')"
        )
        seen = []

        def spy(ref):
            seen.append(ref.column)
            return ref

        map_column_refs(q, spy)
        assert "nmae" in seen

    def test_map_placeholders(self):
        q = roundtrip("SELECT name FROM patients WHERE age = @AGE")
        out = map_placeholders(
            q, lambda ph: type(ph)("LENGTH_OF_STAY") if ph.name == "AGE" else ph
        )
        assert "@LENGTH_OF_STAY" in to_sql(out)
