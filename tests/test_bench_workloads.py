"""Tests for workload containers and the public API surface."""

import pytest

from repro.bench import Workload, WorkloadItem
from repro.sql import Difficulty, parse


def make_items():
    return [
        WorkloadItem(
            nl="show all patient",
            sql=parse("SELECT * FROM patients"),
            schema_name="patients",
            category="naive",
        ),
        WorkloadItem(
            nl="count patient per diagnosis",
            sql=parse("SELECT diagnosis, COUNT(*) FROM patients GROUP BY diagnosis"),
            schema_name="patients",
            category="naive",
        ),
        WorkloadItem(
            nl="river of state @STATE_NAME",
            sql=parse("SELECT river_name FROM river WHERE state_name = @STATE_NAME"),
            schema_name="geography",
            category="missing",
        ),
    ]


class TestWorkloadItem:
    def test_sql_text(self):
        assert make_items()[0].sql_text == "SELECT * FROM patients"

    def test_difficulty_computed(self):
        assert make_items()[0].difficulty is Difficulty.EASY
        assert make_items()[1].difficulty is Difficulty.MEDIUM

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_items()[0].nl = "x"


class TestWorkload:
    def test_filters(self):
        workload = Workload("w", make_items())
        assert len(workload.by_category("naive")) == 2
        assert len(workload.by_schema("geography")) == 1
        assert len(workload.by_difficulty(Difficulty.EASY)) == 2

    def test_filter_names(self):
        workload = Workload("w", make_items())
        assert workload.by_category("naive").name == "w/naive"

    def test_categories_order_preserving(self):
        workload = Workload("w", make_items())
        assert workload.categories() == ["naive", "missing"]

    def test_iteration(self):
        workload = Workload("w", make_items())
        assert len(list(workload)) == 3

    def test_subsample_deterministic(self):
        workload = Workload("w", make_items())
        first = workload.subsample(2, seed=1)
        second = workload.subsample(2, seed=1)
        assert [i.nl for i in first] == [i.nl for i in second]


class TestPublicApi:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_exports_resolve(self):
        import importlib

        for module_name in (
            "repro.schema",
            "repro.sql",
            "repro.db",
            "repro.nlp",
            "repro.core",
            "repro.neural",
            "repro.runtime",
            "repro.eval",
            "repro.bench",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (module_name, name)

    def test_version(self):
        import repro

        assert repro.__version__
