"""Tests for query-pattern signatures (Table 4 machinery)."""

from repro.sql import parse, pattern_set, pattern_signature


def sig(sql):
    return pattern_signature(parse(sql))


class TestSignatureInvariance:
    def test_identifier_renaming_invariant(self):
        assert sig("SELECT name FROM patients WHERE age = @AGE") == sig(
            "SELECT title FROM movies WHERE year = @YEAR"
        )

    def test_constant_invariant(self):
        assert sig("SELECT * FROM t WHERE x = 5") == sig(
            "SELECT * FROM t WHERE x = @X"
        )
        assert sig("SELECT * FROM t WHERE x = 'a'") == sig(
            "SELECT * FROM t WHERE x = 7"
        )

    def test_comparison_direction_invariant(self):
        # After normalization both compare column CMP value.
        assert sig("SELECT * FROM t WHERE x > 5") == sig(
            "SELECT * FROM t WHERE 5 < x"
        )

    def test_conjunct_order_invariant(self):
        assert sig("SELECT * FROM t WHERE a = 1 AND b > 2") == sig(
            "SELECT * FROM t WHERE b > 2 AND a = 1"
        )


class TestSignatureDiscrimination:
    def test_aggregate_function_matters(self):
        assert sig("SELECT AVG(x) FROM t") != sig("SELECT SUM(x) FROM t")
        assert sig("SELECT COUNT(*) FROM t") != sig("SELECT COUNT(x) FROM t")

    def test_operator_class_matters(self):
        assert sig("SELECT * FROM t WHERE x = 1") != sig(
            "SELECT * FROM t WHERE x > 1"
        )

    def test_nesting_matters(self):
        assert sig("SELECT name FROM t WHERE x = 1") != sig(
            "SELECT name FROM t WHERE x = (SELECT MAX(x) FROM t)"
        )

    def test_negation_matters(self):
        assert sig("SELECT * FROM t WHERE x LIKE 'a'") != sig(
            "SELECT * FROM t WHERE x NOT LIKE 'a'"
        )

    def test_groupby_matters(self):
        assert sig("SELECT d, COUNT(*) FROM t GROUP BY d") != sig(
            "SELECT d, COUNT(*) FROM t GROUP BY d HAVING COUNT(*) > 1"
        )

    def test_limit_and_order_matter(self):
        plain = sig("SELECT * FROM t")
        ordered = sig("SELECT * FROM t ORDER BY x")
        limited = sig("SELECT * FROM t ORDER BY x LIMIT 1")
        assert len({plain, ordered, limited}) == 3

    def test_join_matters(self):
        assert sig("SELECT a.x FROM a, b WHERE a.i = b.i") != sig(
            "SELECT x FROM a"
        )

    def test_between_vs_two_comparisons(self):
        assert sig("SELECT * FROM t WHERE x BETWEEN 1 AND 2") != sig(
            "SELECT * FROM t WHERE x >= 1 AND x <= 2"
        )


class TestPatternSet:
    def test_accepts_strings_and_queries(self):
        patterns = pattern_set(
            ["SELECT * FROM t", parse("SELECT * FROM u")]
        )
        assert len(patterns) == 1  # same pattern

    def test_distinct_patterns_counted(self):
        patterns = pattern_set(
            ["SELECT * FROM t", "SELECT COUNT(*) FROM t", "SELECT x FROM t"]
        )
        assert len(patterns) == 3
