"""Mutation suite for the template, schema, and corpus passes.

Each test seeds one defect into an otherwise healthy artifact and
asserts the analyzer reports it under its stable ``L###`` code — the
acceptance contract is that 100% of seeded defects are caught.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    audit_corpus,
    explain_dead_template,
    lint_schema,
    lint_templates,
    placeholder_mismatch,
    probe_builder,
)
from repro.core.seed_templates import SEED_TEMPLATES
from repro.core.templates import Family, SeedTemplate
from repro.schema.column import Column, ColumnType
from repro.schema.schema import Schema
from repro.schema.table import ForeignKey, Table


def template(tid, kind, nl, family=Family.SELECT):
    return SeedTemplate(tid=tid, family=family, sql_kind=kind, nl_pattern=nl)


def codes(diagnostics):
    return [d.code for d in diagnostics]


# ----------------------------------------------------------------------
# Template lint (L2xx)
# ----------------------------------------------------------------------

def test_missing_slot_is_L201(patients):
    bad = template("mut-00", "select_all", "{select_phrase} all {table} {bogus}")
    diags = lint_templates([patients], [bad])
    assert "L201" in codes(diags)
    (diag,) = [d for d in diags if d.code == "L201"]
    assert "bogus" in diag.message
    assert diag.severity.value == "error"


def test_unknown_kind_is_L206(patients):
    bad = template("mut-01", "no_such_kind", "show all {table}")
    diags = lint_templates([patients], [bad])
    assert codes(diags) == ["L206"]


def test_dead_template_on_one_schema_is_L203_and_everywhere_L204(patients):
    join = next(t for t in SEED_TEMPLATES if t.sql_kind == "join_select")
    diags = lint_templates([patients], [join])
    # Dead on the single-table patients schema (L203) and — patients
    # being the only schema provided — dead everywhere (L204).  Both
    # are warnings: structurally impossible kinds are expected.
    assert set(codes(diags)) == {"L203", "L204"}
    assert all(d.severity.value == "warning" for d in diags)


def test_dead_template_alive_elsewhere_has_no_L204(patients, geography):
    join = next(t for t in SEED_TEMPLATES if t.sql_kind == "join_select")
    diags = lint_templates([patients, geography], [join])
    assert "L203" in codes(diags)  # still dead on patients
    assert "L204" not in codes(diags)  # alive on geography


def test_duplicate_same_kind_pattern_is_L205_error(patients):
    original = next(t for t in SEED_TEMPLATES if t.sql_kind == "select_all")
    clone = template("mut-02", "select_all", original.nl_pattern)
    diags = lint_templates([patients], [original, clone])
    dups = [d for d in diags if d.code == "L205"]
    assert dups and all(d.severity.value == "error" for d in dups)


def test_duplicate_cross_kind_pattern_is_L205_warning(patients):
    a = template("mut-03", "select_all", "{select_phrase} all {table}")
    b = template("mut-04", "count_all", "{select_phrase} all {table}")
    diags = lint_templates([patients], [a, b])
    dups = [d for d in diags if d.code == "L205"]
    assert dups and all(d.severity.value == "warning" for d in dups)


def test_explain_dead_template_cites_stable_codes(patients):
    join = next(t for t in SEED_TEMPLATES if t.sql_kind == "join_select")
    diags = explain_dead_template(join, patients)
    assert diags and set(codes(diags)) <= {"L203", "L204"}


def test_probe_builder_is_deterministic(patients):
    first = probe_builder("filter_select_all", patients)
    second = probe_builder("filter_select_all", patients)
    assert first and [f.slots for f in first] == [f.slots for f in second]


def test_placeholder_mismatch_multiset():
    sql_only, nl_only = placeholder_mismatch(
        "patients older than @AGE", ["AGE", "DIAGNOSIS"]
    )
    assert sql_only == ["diagnosis"]
    assert nl_only == []
    sql_only, nl_only = placeholder_mismatch("between @AGE.LOW and @AGE.HIGH", [])
    assert sql_only == []
    assert sorted(nl_only) == ["age.high", "age.low"]


# ----------------------------------------------------------------------
# Schema lint (L4xx)
# ----------------------------------------------------------------------

def test_fk_type_mismatch_is_L401():
    schema = Schema(
        "mut",
        [
            Table(
                "a",
                [
                    Column("a_id", ColumnType.INTEGER, primary_key=True),
                    Column("b_ref", ColumnType.TEXT),
                ],
            ),
            Table("b", [Column("b_id", ColumnType.INTEGER, primary_key=True)]),
        ],
        [ForeignKey("a", "b_ref", "b", "b_id")],
    )
    assert codes(lint_schema(schema)) == ["L401"]


def test_fk_target_not_primary_key_is_L402():
    schema = Schema(
        "mut",
        [
            Table(
                "a",
                [
                    Column("a_id", ColumnType.INTEGER, primary_key=True),
                    Column("b_tag", ColumnType.TEXT),
                ],
            ),
            Table(
                "b",
                [
                    Column("b_id", ColumnType.INTEGER, primary_key=True),
                    Column("tag", ColumnType.TEXT),
                ],
            ),
        ],
        [ForeignKey("a", "b_tag", "b", "tag")],
    )
    assert codes(lint_schema(schema)) == ["L402"]


def test_ambiguous_nl_phrase_is_L403():
    schema = Schema(
        "mut",
        [
            Table(
                "a",
                [
                    Column(
                        "a_id",
                        ColumnType.INTEGER,
                        primary_key=True,
                        annotation="identifier",
                    ),
                    Column("x", ColumnType.INTEGER, annotation="identifier"),
                ],
            ),
        ],
    )
    assert "L403" in codes(lint_schema(schema))


def test_disconnected_table_is_L404():
    schema = Schema(
        "mut",
        [
            Table("a", [Column("a_id", ColumnType.INTEGER, primary_key=True)]),
            Table("b", [Column("b_id", ColumnType.INTEGER, primary_key=True)]),
        ],
    )
    assert "L404" in codes(lint_schema(schema))


def test_catalog_schemas_are_clean(patients, geography):
    assert lint_schema(patients) == []
    assert lint_schema(geography) == []


# ----------------------------------------------------------------------
# Corpus audit (L3xx)
# ----------------------------------------------------------------------

GOOD = {"nl": "show all patients", "sql": "SELECT * FROM patients", "schema": "patients"}


def write_jsonl(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            if isinstance(record, str):
                handle.write(record + "\n")
            else:
                handle.write(json.dumps(record) + "\n")
    return path


def test_clean_corpus_audits_clean(tmp_path):
    path = write_jsonl(tmp_path / "clean.jsonl", [GOOD])
    assert audit_corpus(path) == []


def test_unparseable_sql_is_L301(tmp_path):
    path = write_jsonl(
        tmp_path / "c.jsonl", [GOOD, {**GOOD, "nl": "x", "sql": "SELEC * FRM"}]
    )
    assert codes(audit_corpus(path)) == ["L301"]


def test_unrestorable_placeholder_is_L302(tmp_path):
    record = {
        "nl": "no constant mentioned",
        "sql": "SELECT * FROM patients WHERE age = @AGE",
        "schema": "patients",
    }
    path = write_jsonl(tmp_path / "c.jsonl", [record])
    diags = audit_corpus(path)
    assert codes(diags) == ["L302"]
    assert diags[0].severity.value == "error"


def test_malformed_record_is_L303(tmp_path):
    path = write_jsonl(tmp_path / "c.jsonl", [GOOD, "{not json"])
    assert codes(audit_corpus(path)) == ["L303"]


def test_duplicate_pair_is_L304(tmp_path):
    path = write_jsonl(tmp_path / "c.jsonl", [GOOD, GOOD])
    diags = audit_corpus(path)
    assert codes(diags) == ["L304"]
    assert diags[0].severity.value == "warning"


def test_semantic_errors_resurface_with_line_locations(tmp_path):
    record = {
        "nl": "whose name is @NAME",
        "sql": "SELECT bogus FROM patients WHERE name = @NAME",
        "schema": "patients",
    }
    path = write_jsonl(tmp_path / "c.jsonl", [record])
    (diag,) = audit_corpus(path)
    assert diag.code == "L102"
    assert diag.location.endswith(":1")


def test_tsv_corpus_audit(tmp_path, patients):
    path = tmp_path / "c.tsv"
    path.write_text(
        "show all patients\tSELECT * FROM patients\n"
        "broken row with no tab\n",
        encoding="utf-8",
    )
    diags = audit_corpus(path, default_schema=patients)
    assert codes(diags) == ["L303"]


def test_audit_caps_findings(tmp_path):
    bad = {**GOOD, "sql": "SELEC"}
    records = [dict(bad, nl=f"q{i}") for i in range(20)]
    path = write_jsonl(tmp_path / "c.jsonl", records)
    diags = audit_corpus(path, max_diagnostics=5)
    assert len(diags) == 6  # 5 findings + the "audit stopped" notice
    assert diags[-1].code == "L303"
    assert "stopped" in diags[-1].message


def test_unknown_schema_is_single_warning(tmp_path):
    records = [
        {"nl": "q one", "sql": "SELECT * FROM t", "schema": "mystery"},
        {"nl": "q two", "sql": "SELECT * FROM t", "schema": "mystery"},
    ]
    path = write_jsonl(tmp_path / "c.jsonl", records)
    diags = audit_corpus(path)
    assert codes(diags) == ["L303"]
    assert diags[0].severity.value == "warning"
