"""Tests for repro.schema.table."""

import pytest

from repro.errors import SchemaError
from repro.schema import Table, integer, text
from repro.schema.table import ForeignKey


def make_table():
    return Table(
        "patients",
        [
            integer("patient_id", primary_key=True),
            text("name"),
            integer("age", domain="age"),
        ],
        annotation="patient",
        synonyms=("person",),
    )


class TestTable:
    def test_column_lookup(self):
        table = make_table()
        assert table.column("age").name == "age"

    def test_missing_column_raises(self):
        with pytest.raises(SchemaError):
            make_table().column("nope")

    def test_contains(self):
        table = make_table()
        assert "age" in table
        assert "salary" not in table

    def test_iteration_order(self):
        assert [c.name for c in make_table()] == ["patient_id", "name", "age"]

    def test_column_names(self):
        assert make_table().column_names == ("patient_id", "name", "age")

    def test_numeric_and_text_split(self):
        table = make_table()
        assert {c.name for c in table.numeric_columns} == {"patient_id", "age"}
        assert {c.name for c in table.text_columns} == {"name"}

    def test_primary_key(self):
        assert make_table().primary_key.name == "patient_id"

    def test_no_primary_key(self):
        table = Table("t", [text("a")])
        assert table.primary_key is None

    def test_nl_phrases(self):
        assert make_table().nl_phrases == ("patient", "person")

    def test_default_annotation(self):
        table = Table("order_items", [text("sku")])
        assert table.annotation == "order items"

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [text("a"), text("a")])

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [])

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Table("bad name", [text("a")])


class TestForeignKey:
    def test_str(self):
        fk = ForeignKey("orders", "customer_id", "customer", "customer_id")
        assert str(fk) == "orders.customer_id -> customer.customer_id"
