"""Tests for the semantic equivalence checker (Cosette stand-in)."""

from repro.db import populate
from repro.schema import patients_schema
from repro.sql import EquivalenceChecker, parse, structurally_equivalent


def checker():
    return EquivalenceChecker(
        [populate(patients_schema(), rows_per_table=25, seed=s) for s in (1, 2)]
    )


class TestStructural:
    def test_commutative_and(self):
        assert structurally_equivalent(
            parse("SELECT * FROM patients WHERE age = 1 AND gender = 'm'"),
            parse("SELECT * FROM patients WHERE gender = 'm' AND age = 1"),
        )

    def test_flip(self):
        assert structurally_equivalent(
            parse("SELECT * FROM patients WHERE 18 < age"),
            parse("SELECT * FROM patients WHERE age > 18"),
        )

    def test_not_equivalent(self):
        assert not structurally_equivalent(
            parse("SELECT * FROM patients WHERE age > 18"),
            parse("SELECT * FROM patients WHERE age < 18"),
        )


class TestExecutionBased:
    def test_between_equals_range(self):
        """BETWEEN and the equivalent conjunction differ structurally but
        agree on all sample databases."""
        chk = checker()
        assert chk.equivalent(
            parse("SELECT name FROM patients WHERE age BETWEEN 20 AND 60"),
            parse("SELECT name FROM patients WHERE age >= 20 AND age <= 60"),
        )

    def test_distinct_detects_difference(self):
        chk = checker()
        # gender has duplicates, so DISTINCT changes the multiset.
        assert not chk.equivalent(
            parse("SELECT gender FROM patients"),
            parse("SELECT DISTINCT gender FROM patients"),
        )

    def test_different_filters_not_equivalent(self):
        chk = checker()
        assert not chk.equivalent(
            parse("SELECT name FROM patients WHERE age > 20"),
            parse("SELECT name FROM patients WHERE age > 80"),
        )

    def test_in_list_vs_or(self):
        chk = checker()
        assert chk.equivalent(
            parse("SELECT name FROM patients WHERE age IN (20, 30)"),
            parse("SELECT name FROM patients WHERE age = 20 OR age = 30"),
        )

    def test_order_insensitive_without_order_by(self):
        chk = checker()
        # Same rows; projection order of rows is irrelevant without ORDER BY.
        assert chk.equivalent(
            parse("SELECT name FROM patients WHERE age >= 0"),
            parse("SELECT name FROM patients"),
        )

    def test_unexecutable_query_not_certified(self):
        chk = checker()
        # Unresolved placeholders cannot be executed -> not equivalent.
        assert not chk.equivalent(
            parse("SELECT name FROM patients WHERE age = @AGE"),
            parse("SELECT name FROM patients WHERE @AGE = age AND 1 = 1"),
        )

    def test_placeholder_structural_still_works(self):
        chk = checker()
        assert chk.equivalent(
            parse("SELECT name FROM patients WHERE age = @AGE"),
            parse("SELECT name FROM patients WHERE @AGE = age"),
        )

    def test_no_databases_falls_back_to_structural(self):
        chk = EquivalenceChecker([])
        assert chk.equivalent(
            parse("SELECT * FROM patients WHERE 1 < age"),
            parse("SELECT * FROM patients WHERE age > 1"),
        )
        assert not chk.equivalent(
            parse("SELECT name FROM patients WHERE age BETWEEN 20 AND 60"),
            parse("SELECT name FROM patients WHERE age >= 20 AND age <= 60"),
        )
