"""Unit tests for the canonicalizer (:mod:`repro.sql.canonical`).

Every test pins a *rewrite class* documented in the module: spellings
inside one class must share a canonical form, spellings across classes
must not.  The differential soundness gate lives in
``test_canonical_soundness.py``; these tests cover the static
contract — determinism, idempotence, stability of the digest, and the
injectivity guard on placeholder renames.
"""

import pytest

from repro.schema import load_schema
from repro.sql.canonical import (
    canonical_key,
    canonical_key_for_sql,
    canonical_text,
    canonicalize,
)
from repro.sql.parser import parse

pytestmark = pytest.mark.canonical


@pytest.fixture(scope="module")
def patients():
    return load_schema("patients")


@pytest.fixture(scope="module")
def geography():
    return load_schema("geography")


class TestNormalForms:
    def test_between_equals_chained_comparison(self, patients):
        between = parse("SELECT name FROM patients WHERE age BETWEEN 20 AND 30")
        chained = parse("SELECT name FROM patients WHERE age >= 20 AND age <= 30")
        flipped = parse("SELECT name FROM patients WHERE 20 <= age AND 30 >= age")
        assert canonical_text(between, patients) == canonical_text(chained, patients)
        assert canonical_text(between, patients) == canonical_text(flipped, patients)

    def test_or_of_equalities_equals_in_list(self, patients):
        ors = parse("SELECT name FROM patients WHERE age = 30 OR age = 20")
        in_list = parse("SELECT name FROM patients WHERE age IN (20, 30)")
        assert canonical_text(ors, patients) == canonical_text(in_list, patients)

    def test_in_list_dedup_and_sort(self, patients):
        messy = parse("SELECT name FROM patients WHERE age IN (30, 20, 30, 20)")
        clean = parse("SELECT name FROM patients WHERE age IN (20, 30)")
        assert canonicalize(messy, patients) == canonicalize(clean, patients)

    def test_mixed_or_merges_across_eq_and_in(self, patients):
        mixed = parse(
            "SELECT name FROM patients WHERE age = 40 OR age IN (20, 30)"
        )
        in_list = parse("SELECT name FROM patients WHERE age IN (20, 30, 40)")
        assert canonicalize(mixed, patients) == canonicalize(in_list, patients)

    def test_or_merge_keeps_unrelated_disjuncts(self, patients):
        query = parse(
            "SELECT name FROM patients WHERE age = 20 OR age = 30 OR gender = 'F'"
        )
        text = canonical_text(query, patients)
        assert "IN (20, 30)" in text
        assert "gender = 'F'" in text

    def test_single_value_in_collapses_to_eq(self, patients):
        single = parse("SELECT name FROM patients WHERE age IN (20, 20)")
        eq = parse("SELECT name FROM patients WHERE age = 20")
        assert canonicalize(single, patients) == canonicalize(eq, patients)

    def test_negated_in_not_merged(self, patients):
        negated = parse(
            "SELECT name FROM patients WHERE age NOT IN (20, 30) OR age = 40"
        )
        text = canonical_text(negated, patients)
        assert "NOT IN (20, 30)" in text
        assert "age = 40" in text

    def test_group_by_key_order_is_canonical(self, geography):
        forward = parse("SELECT COUNT(*) FROM city GROUP BY state_name, population")
        backward = parse("SELECT COUNT(*) FROM city GROUP BY population, state_name")
        assert canonicalize(forward, geography) == canonicalize(backward, geography)

    def test_select_order_is_preserved(self, geography):
        ab = parse("SELECT city_name, population FROM city")
        ba = parse("SELECT population, city_name FROM city")
        assert canonicalize(ab, geography) != canonicalize(ba, geography)

    def test_distinct_and_limit_are_preserved(self, patients):
        query = parse("SELECT DISTINCT diagnosis FROM patients LIMIT 5")
        out = canonicalize(query, patients)
        assert out.distinct and out.limit == 5


class TestQualifierCompletion:
    def test_unambiguous_refs_qualified_in_joins(self, geography):
        bare = parse(
            "SELECT city_name FROM city, state "
            "WHERE city.state_name = state.state_name AND area > 100"
        )
        qualified = parse(
            "SELECT city.city_name FROM city, state "
            "WHERE state.state_name = city.state_name AND state.area > 100"
        )
        assert canonical_text(bare, geography) == canonical_text(
            qualified, geography
        )

    def test_ambiguous_refs_left_alone(self, geography):
        # ``population`` lives in both city and state: completion must
        # not pick a side.
        query = parse("SELECT population FROM city, state")
        out = canonicalize(query, geography)
        assert out.select[0].table is None

    def test_single_table_refs_stay_unqualified(self, patients):
        query = parse("SELECT patients.name FROM patients")
        out = canonicalize(query, patients)
        assert out.select[0].table is None


class TestPlaceholderNormalization:
    def test_bare_and_dotted_spellings_unify(self, patients):
        bare = parse("SELECT name FROM patients WHERE age > @AGE")
        dotted = parse("SELECT name FROM patients WHERE age > @PATIENTS.AGE")
        assert canonical_text(bare, patients) == canonical_text(dotted, patients)

    def test_unrelated_names_never_rekeyed(self, patients):
        left = parse("SELECT name FROM patients WHERE age > @NOSUCH")
        right = parse("SELECT name FROM patients WHERE age > @OTHER")
        assert canonical_text(left, patients) != canonical_text(right, patients)

    def test_rename_injectivity(self, patients):
        # @AGE would normalize to @PATIENTS.AGE, but that name already
        # denotes another slot in the same query — renaming would merge
        # two distinct constants, so it must not happen.
        query = parse(
            "SELECT name FROM patients "
            "WHERE age > @AGE AND length_of_stay > @PATIENTS.AGE"
        )
        text = canonical_text(query, patients)
        assert "@AGE" in text and "@PATIENTS.AGE" in text

    def test_no_schema_no_rename(self):
        query = parse("SELECT name FROM patients WHERE age > @AGE")
        assert "@AGE" in canonical_text(query, None)


class TestStability:
    def test_idempotent(self, patients, geography):
        samples = [
            ("SELECT name FROM patients WHERE age BETWEEN 20 AND 30", patients),
            ("SELECT name FROM patients WHERE age = 1 OR age = 2 OR gender = 'F'", patients),
            (
                "SELECT city_name FROM city, state "
                "WHERE city.state_name = state.state_name AND area > 10",
                geography,
            ),
        ]
        for sql, schema in samples:
            once = canonicalize(parse(sql), schema)
            assert canonicalize(once, schema) == once

    def test_key_is_stable_and_schema_scoped(self, patients, geography):
        query = parse("SELECT * FROM patients")
        assert canonical_key(query, patients) == canonical_key(query, patients)
        assert canonical_key(query, patients) != canonical_key(query, geography)
        assert canonical_key(query, patients) != canonical_key(query, None)

    def test_key_for_sql_absorbs_garbage(self, patients):
        assert canonical_key_for_sql("SELECT * FROM patients", patients)
        assert canonical_key_for_sql("SELECT FROM WHERE (((", patients) is None
        assert canonical_key_for_sql("not sql at all", patients) is None

    def test_equal_keys_iff_equal_canonical_text(self, patients):
        a = parse("SELECT name FROM patients WHERE age = 20 OR age = 30")
        b = parse("SELECT name FROM patients WHERE age IN (30, 20)")
        c = parse("SELECT name FROM patients WHERE age IN (30, 40)")
        assert canonical_key(a, patients) == canonical_key(b, patients)
        assert canonical_key(a, patients) != canonical_key(c, patients)
