"""Tier-1 smoke run of the serving load generator.

``benchmarks/run_serving.py`` is executed end-to-end in miniature
(``--smoke`` caps requests, clients, corpus size, and the replica
ladder at 2) so the benchmark script cannot rot out from under the
serving layer: it exercises the naive, closed-loop, open-loop, and
sharded arms and must emit a well-formed record.  No throughput
assertion here — speedup claims live in
``benchmarks/test_perf_serving.py`` under the ``serving`` marker;
the *correctness* properties of the sharded arms (payload identity,
shard-exclusive cache keys) hold at any scale and are asserted.
"""

import json
import sys
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def test_smoke_run_writes_valid_record(tmp_path):
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        from run_serving import main
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))

    output = tmp_path / "BENCH_serving.json"
    exit_code = main(
        ["--smoke", "--requests", "24", "--replicas", "2", "--output", str(output)]
    )
    assert exit_code == 0

    record = json.loads(output.read_text(encoding="utf-8"))
    assert record["benchmark"] == "serving_throughput"
    assert record["requests"] == 24
    modes = record["modes"]
    assert set(modes) == {
        "naive", "serving_closed", "serving_open", "sharded_open",
    }
    # Every arm answered every request on the tiny workload.
    assert modes["naive"]["ok"] == 24
    assert modes["serving_closed"]["ok"] == 24
    assert modes["serving_open"]["ok"] == 24
    assert set(record["speedups"]) == {
        "serving_closed_vs_naive",
        "serving_open_vs_naive",
        "sharded_2_vs_1",
        "sharded_4_vs_1",
    }
    # Repeated question shapes must actually hit the shared cache.
    assert modes["serving_closed"]["stats"]["cache_hit_rate"] > 0.0
    # The scale-out ladder is capped at 2 replicas in the smoke run.
    arms = modes["sharded_open"]["arms"]
    assert set(arms) == {"1", "2"}
    for arm in arms.values():
        # Correctness properties hold at any scale, 1-core CI included:
        # bit-identical payloads vs the single-process reference, every
        # accepted request answered, and shard-exclusive cache keys.
        assert arm["identical"] is True, arm
        assert arm["ok"] == 24, arm
        assert arm["duplicate_cache_keys"] == 0, arm
