"""Tier-1 smoke run of the serving load generator.

``benchmarks/run_serving.py`` is executed end-to-end in miniature
(``--smoke`` caps requests, clients, and corpus size) so the benchmark
script cannot rot out from under the serving layer: it exercises the
naive, closed-loop, and open-loop arms and must emit a well-formed
record.  No throughput assertion here — speedup claims live in
``benchmarks/test_perf_serving.py`` under the ``serving`` marker.
"""

import json
import sys
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def test_smoke_run_writes_valid_record(tmp_path):
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        from run_serving import main
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))

    output = tmp_path / "BENCH_serving.json"
    exit_code = main(["--smoke", "--requests", "24", "--output", str(output)])
    assert exit_code == 0

    record = json.loads(output.read_text(encoding="utf-8"))
    assert record["benchmark"] == "serving_throughput"
    assert record["requests"] == 24
    modes = record["modes"]
    assert set(modes) == {"naive", "serving_closed", "serving_open"}
    # Every arm answered every request on the tiny workload.
    assert modes["naive"]["ok"] == 24
    assert modes["serving_closed"]["ok"] == 24
    assert modes["serving_open"]["ok"] == 24
    assert set(record["speedups"]) == {
        "serving_closed_vs_naive",
        "serving_open_vs_naive",
    }
    # Repeated question shapes must actually hit the shared cache.
    assert modes["serving_closed"]["stats"]["cache_hit_rate"] > 0.0
