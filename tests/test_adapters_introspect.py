"""Sqlite introspection edge cases: correct Schema or named diagnostic.

The contract (:meth:`repro.adapters.SqliteAdapter.introspect`) is that
introspection either returns a faithful :class:`~repro.schema.Schema`
or raises :class:`~repro.errors.IntrospectionError` carrying ``L5xx``
diagnostics — never a silently wrong schema.  Each test hand-writes
DDL for one judgement call and pins which side of that line it lands
on.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.adapters import SqliteAdapter, split_identifier
from repro.errors import IntrospectionError
from repro.schema.column import ColumnType

pytestmark = pytest.mark.adapters


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "probe.db")


def build(path, *statements):
    conn = sqlite3.connect(path)
    with conn:
        for statement in statements:
            conn.execute(statement)
    conn.close()


def introspect(path):
    with SqliteAdapter(path) as adapter:
        schema = adapter.introspect()
        report = adapter.last_introspection
    return schema, report


# ----------------------------------------------------------------------
# Structures the schema model can represent faithfully
# ----------------------------------------------------------------------


def test_composite_primary_key_marks_every_member(db_path):
    build(
        db_path,
        "CREATE TABLE enrollment (student_id INT, course_id INT, "
        "grade REAL, PRIMARY KEY (student_id, course_id))",
    )
    schema, report = introspect(db_path)
    table = schema.table("enrollment")
    assert [c.name for c in table.columns if c.primary_key] == [
        "student_id",
        "course_id",
    ]
    assert not table.column("grade").primary_key
    assert report.ok


def test_self_referencing_foreign_key_survives(db_path):
    build(
        db_path,
        "CREATE TABLE employees (employee_id INT PRIMARY KEY, name TEXT, "
        "manager_id INT REFERENCES employees(employee_id))",
    )
    schema, report = introspect(db_path)
    assert [str(fk) for fk in schema.foreign_keys] == [
        "employees.manager_id -> employees.employee_id"
    ]
    assert report.ok


def test_unnamed_fk_target_resolves_to_referenced_primary_key(db_path):
    # `REFERENCES parent` with no column list: sqlite reports to=None
    # and the edge must land on the parent's primary key.
    build(
        db_path,
        "CREATE TABLE parent (parent_id INT PRIMARY KEY, label TEXT)",
        "CREATE TABLE child (child_id INT PRIMARY KEY, "
        "parent_id INT REFERENCES parent)",
    )
    schema, report = introspect(db_path)
    assert [str(fk) for fk in schema.foreign_keys] == [
        "child.parent_id -> parent.parent_id"
    ]
    assert report.ok


def test_empty_table_introspects_with_no_sampling_noise(db_path):
    build(db_path, "CREATE TABLE visits (visit_id INT, note TEXT)")
    schema, report = introspect(db_path)
    table = schema.table("visits")
    assert table.column("visit_id").ctype is ColumnType.INTEGER
    assert table.column("note").ctype is ColumnType.TEXT
    assert report.ok


def test_declared_types_map_through_affinity(db_path):
    build(
        db_path,
        "CREATE TABLE readings (taken_at DATETIME, level DOUBLE, "
        "body VARCHAR(40), hits BIGINT)",
    )
    schema, _ = introspect(db_path)
    table = schema.table("readings")
    assert table.column("taken_at").ctype is ColumnType.DATE
    assert table.column("level").ctype is ColumnType.FLOAT
    assert table.column("body").ctype is ColumnType.TEXT
    assert table.column("hits").ctype is ColumnType.INTEGER


# ----------------------------------------------------------------------
# Judgement calls that surface as warnings (schema still usable)
# ----------------------------------------------------------------------


def test_unsplittable_identifier_warns_l502_and_keeps_raw_name(db_path):
    build(db_path, 'CREATE TABLE "_1" ("_2" INT, label TEXT)')
    schema, report = introspect(db_path)
    assert "L502" in report.codes()
    assert report.ok  # warning, not error
    table = schema.table("_1")
    assert table.annotation == "_1"
    assert table.column("_2").annotation == "_2"
    # Splittable neighbours still get proper phrases.
    assert table.column("label").annotation == "label"


def test_composite_foreign_key_dropped_with_l504(db_path):
    build(
        db_path,
        "CREATE TABLE sections (course INT, term INT, "
        "PRIMARY KEY (course, term))",
        "CREATE TABLE meetings (course INT, term INT, room TEXT, "
        "FOREIGN KEY (course, term) REFERENCES sections (course, term))",
    )
    schema, report = introspect(db_path)
    assert schema.foreign_keys == ()
    assert "L504" in report.codes()
    assert report.ok


def test_fk_to_table_without_primary_key_dropped_with_l504(db_path):
    build(
        db_path,
        "CREATE TABLE logs (entry TEXT)",
        "CREATE TABLE marks (mark_id INT PRIMARY KEY, "
        "entry TEXT REFERENCES logs)",
    )
    schema, report = introspect(db_path)
    assert schema.foreign_keys == ()
    assert "L504" in report.codes()
    assert report.ok


def test_unrecognized_declared_type_warns_l505(db_path):
    build(db_path, "CREATE TABLE blobs (payload STUFF, price NUMERIC)")
    schema, report = introspect(db_path)
    assert "L505" in report.codes()
    assert report.ok
    table = schema.table("blobs")
    assert table.column("payload").ctype is ColumnType.TEXT
    assert table.column("price").ctype is ColumnType.FLOAT


# ----------------------------------------------------------------------
# Hard failures: IntrospectionError with named diagnostics
# ----------------------------------------------------------------------


def assert_fails_with(path, code):
    with SqliteAdapter(path) as adapter:
        with pytest.raises(IntrospectionError) as excinfo:
            adapter.introspect()
        assert code in adapter.last_introspection.codes()
    assert any(d.code == code for d in excinfo.value.diagnostics)


def test_empty_database_raises_l506(db_path):
    sqlite3.connect(db_path).close()  # creates a zero-table file
    assert_fails_with(db_path, "L506")


def test_type_affinity_mismatch_raises_l503(db_path):
    build(
        db_path,
        "CREATE TABLE samples (amount INT)",
        "INSERT INTO samples VALUES (1)",
        "INSERT INTO samples VALUES ('twelve')",
    )
    assert_fails_with(db_path, "L503")


def test_unusable_column_name_raises_l501(db_path):
    build(db_path, 'CREATE TABLE notes ("note body" TEXT)')
    assert_fails_with(db_path, "L501")


def test_unusable_table_name_raises_l501(db_path):
    # sqlite itself rejects case-colliding duplicates, so the L501
    # collision arm is unreachable from valid DDL; the unusable-name
    # arm is the one real databases hit.
    build(db_path, 'CREATE TABLE "daily report" (total INT)')
    assert_fails_with(db_path, "L501")


def test_missing_file_directory_raises_backend_error(tmp_path):
    from repro.errors import BackendError

    bad = str(tmp_path / "nope" / "missing.db")
    with pytest.raises(BackendError):
        SqliteAdapter(bad).connect()


# ----------------------------------------------------------------------
# NL annotation synthesis
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    ("identifier", "phrase"),
    [
        ("patient_name", "patient name"),
        ("patientName", "patient name"),
        ("HTTPCode2xx", "httpcode 2xx"),
        ("address1", "address"),
        ("__x__", "x"),
        ("_123", ""),
        ("", ""),
    ],
)
def test_split_identifier(identifier, phrase):
    assert split_identifier(identifier) == phrase
