"""Serving-cache correctness: anonymized keys, per-request constants,
single-flight coalescing.

The cache key is the *anonymized* model input, so distinct questions
("age 4" / "age 5") share one entry — these tests pin down that a hit
still restores each request's own constants, and that a concurrent
burst of identical questions costs exactly one model call.
"""

import threading
import time

import pytest

from repro.neural.base import TranslationModel
from repro.runtime import DBPal
from repro.serving import ServingConfig, TranslationService


class CountingModel(TranslationModel):
    """Deterministic placeholder-template model with call accounting."""

    def __init__(self, delay: float = 0.0) -> None:
        self.delay = delay
        self.batch_calls: list[list[str]] = []
        self._lock = threading.Lock()

    def fit(self, pairs, **kwargs):
        pass

    def translate(self, nl):
        if "@age" in nl.lower():
            return "SELECT name FROM patients WHERE age = @AGE"
        if "average" in nl:
            return "SELECT AVG(age) FROM patients"
        return None

    def translate_batch(self, nls):
        with self._lock:
            self.batch_calls.append(list(nls))
        if self.delay:
            time.sleep(self.delay)
        return [self.translate(nl) for nl in nls]

    @property
    def model_inputs_seen(self) -> list[str]:
        return [nl for batch in self.batch_calls for nl in batch]


@pytest.fixture
def counting_service(patients_db):
    model = CountingModel()
    nlidb = DBPal(patients_db, model)
    config = ServingConfig(workers=2, batch_window=0.002, request_timeout=10.0)
    with TranslationService(nlidb, config) as service:
        yield service, model


class TestAnonymizedKeySharing:
    def test_shared_key_restores_per_request_constants(
        self, counting_service, patients_db
    ):
        service, model = counting_service
        age_a, age_b = sorted(set(patients_db.column_values("patients", "age")))[:2]
        first = service.translate(f"show me the names of all patients with age {age_a}")
        second = service.translate(f"show me the names of all patients with age {age_b}")
        # Both anonymize to the same model input -> one cache entry.
        assert first.result.model_input == second.result.model_input
        assert len(model.model_inputs_seen) == 1  # second request hit the cache
        assert second.source == "cache" and second.ok
        # ... yet each response carries ITS OWN constant.
        assert first.sql == f"SELECT name FROM patients WHERE age = {age_a}"
        assert second.sql == f"SELECT name FROM patients WHERE age = {age_b}"

    def test_cache_stats_recorded(self, counting_service, patients_db):
        service, _model = counting_service
        ages = sorted(set(patients_db.column_values("patients", "age")))[:3]
        for age in ages:
            service.translate(f"show me the names of all patients with age {age}")
        stats = service.stats()
        assert stats["counters"]["cache.hits"] == len(ages) - 1
        assert stats["counters"]["cache.misses"] == 1
        assert stats["cache"]["size"] == 1
        assert stats["cache_hit_rate"] == pytest.approx(
            (len(ages) - 1) / len(ages), abs=1e-3
        )

    def test_negative_entries_skip_the_model(self, counting_service):
        service, model = counting_service
        for _ in range(3):
            response = service.translate("colorless green ideas sleep furiously")
            assert response.status in ("degraded", "error")
        # The model was consulted once; repeats hit the negative entry.
        assert len(model.model_inputs_seen) == 1


class TestSingleFlight:
    def test_concurrent_identical_burst_costs_one_model_call(self, patients_db):
        model = CountingModel(delay=0.05)  # widen the race window
        nlidb = DBPal(patients_db, model)
        config = ServingConfig(workers=4, batch_window=0.002, request_timeout=10.0)
        with TranslationService(nlidb, config) as service:
            barrier = threading.Barrier(8)
            responses = []
            responses_lock = threading.Lock()

            def client():
                barrier.wait(timeout=5.0)
                response = service.translate(
                    "what is the average age of all patients"
                )
                with responses_lock:
                    responses.append(response)

            threads = [threading.Thread(target=client) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)

            assert len(responses) == 8
            assert all(r.ok for r in responses)
            assert len({r.sql for r in responses}) == 1
            # The whole burst triggered exactly one model call.
            assert len(model.model_inputs_seen) == 1
            coalesced = service.metrics.counter("singleflight.coalesced")
            hits = service.metrics.counter("cache.hits")
            late_hits = service.metrics.counter("cache.late_hits")
            assert coalesced + hits + late_hits == 7

    def test_sequential_repeats_also_one_model_call(self, counting_service):
        service, model = counting_service
        for _ in range(5):
            assert service.translate("what is the average age of all patients").ok
        assert len(model.model_inputs_seen) == 1
