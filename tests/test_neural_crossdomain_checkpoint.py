"""Tests for cross-domain schema-slot anonymization and checkpointing."""

import numpy as np
import pytest

from repro.core import GenerationConfig, TrainingPipeline
from repro.core.templates import Family, TrainingPair
from repro.errors import ModelError
from repro.neural import (
    CrossDomainModel,
    RetrievalModel,
    SchemaMap,
    Seq2SeqModel,
    load_model,
    save_model,
)
from repro.neural.base import sql_to_tokens, tokens_to_sql
from repro.schema import load_schema, patients_schema
from repro.sql import parse


class TestSchemaMap:
    def test_sql_slot_roundtrip(self, patients):
        schema_map = SchemaMap(patients)
        sql = "SELECT name FROM patients WHERE age > @AGE"
        tokens = sql_to_tokens(sql)
        slots = schema_map.sql_tokens_to_slots(tokens)
        assert "patients" not in slots and "age" not in slots
        restored = schema_map.sql_tokens_from_slots(slots)
        assert tokens_to_sql(restored) == tokens_to_sql(tokens)

    def test_dotted_placeholder_mapped(self, geography):
        schema_map = SchemaMap(geography)
        tokens = sql_to_tokens(
            "SELECT city.city_name FROM @JOIN WHERE state.population > @STATE.POPULATION"
        )
        slots = schema_map.sql_tokens_to_slots(tokens)
        assert "@JOIN" in slots  # the join placeholder survives
        assert not any("state" in t.lower() and not t.startswith("tbl") for t in slots if t != "@JOIN"), slots
        restored = schema_map.sql_tokens_from_slots(slots)
        assert restored == tokens

    def test_nl_exact_names_anonymized(self, patients):
        schema_map = SchemaMap(patients)
        out = schema_map.nl_to_slots("show the age of all patient with @AGE")
        assert "age" not in out.split()
        assert "patient" not in out.split()

    def test_nl_synonyms_left_verbatim(self, patients):
        schema_map = SchemaMap(patients)
        out = schema_map.nl_to_slots("show the disease of every person")
        assert "disease" in out.split()
        assert "person" in out.split()

    def test_multiword_column_names(self, patients):
        schema_map = SchemaMap(patients)
        out = schema_map.nl_to_slots("the length of stay of patient")
        assert "length" not in out and "stay" not in out

    def test_slot_assignment_deterministic(self, patients):
        first = SchemaMap(patients)
        second = SchemaMap(patients)
        sql = sql_to_tokens("SELECT name FROM patients")
        assert first.sql_tokens_to_slots(sql) == second.sql_tokens_to_slots(sql)


class TestCrossDomainModel:
    def test_transfers_to_unseen_schema(self):
        """Train on geography; answer on retail via slot transfer."""
        geography = load_schema("geography")
        retail = load_schema("retail")
        pipeline = TrainingPipeline(
            geography, GenerationConfig(size_slotfills=4), seed=0
        )
        inner = RetrievalModel()  # deterministic inner model
        model = CrossDomainModel(inner, [geography, retail])
        pipeline.train(model)
        out = model.translate_for_schema("show me all product", retail)
        assert out == "SELECT * FROM product"

    def test_translate_requires_default_schema(self):
        model = CrossDomainModel(RetrievalModel(), [patients_schema()])
        with pytest.raises(ModelError):
            model.translate("anything")

    def test_default_schema_used(self, patients):
        pipeline = TrainingPipeline(patients, GenerationConfig(size_slotfills=4), seed=0)
        model = CrossDomainModel(RetrievalModel(), [patients], default_schema=patients)
        pipeline.train(model)
        assert model.translate("show me all patient") == "SELECT * FROM patients"

    def test_unknown_schema_name_raises(self, patients):
        model = CrossDomainModel(RetrievalModel(), [patients])
        with pytest.raises(ModelError):
            model.map_for("unknown")

    def test_new_schema_object_registered_lazily(self, patients, geography):
        model = CrossDomainModel(RetrievalModel(), [patients])
        assert model.map_for(geography) is model.map_for("geography")


class TestCheckpoint:
    def make_model(self):
        pairs = [
            TrainingPair(
                nl=nl,
                sql=parse(sql),
                template_id="t",
                family=Family.SELECT,
                schema_name="s",
            )
            for nl, sql in [
                ("show all patients", "SELECT * FROM patients"),
                ("count all patients", "SELECT COUNT(*) FROM patients"),
            ] * 3
        ]
        model = Seq2SeqModel(embed_dim=8, hidden_dim=12, epochs=20, batch_size=2, seed=0)
        model.fit(pairs)
        return model

    def test_save_load_roundtrip(self, tmp_path):
        model = self.make_model()
        path = tmp_path / "model.npz"
        save_model(model, path)
        restored = load_model(path)
        assert restored.translate("show all patients") == model.translate(
            "show all patients"
        )
        assert restored.loss_history == model.loss_history

    def test_parameters_identical(self, tmp_path):
        model = self.make_model()
        path = tmp_path / "model.npz"
        save_model(model, path)
        restored = load_model(path)
        for original, loaded in zip(model.layers, restored.layers):
            for name in original.params:
                assert np.array_equal(original.params[name], loaded.params[name])

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(ModelError):
            save_model(Seq2SeqModel(), tmp_path / "m.npz")

    def test_load_missing_metadata_raises(self, tmp_path):
        with pytest.raises(ModelError):
            load_model(tmp_path / "missing.npz")

    def test_syntax_aware_checkpoint_restores_grammar(self, tmp_path):
        from repro.neural import SyntaxAwareModel

        pairs = [
            TrainingPair(
                nl="show all patients",
                sql=parse("SELECT * FROM patients"),
                template_id="t",
                family=Family.SELECT,
                schema_name="s",
            )
        ] * 4
        model = SyntaxAwareModel(embed_dim=8, hidden_dim=12, epochs=3, seed=0)
        model.fit(pairs)
        path = tmp_path / "syntax.npz"
        save_model(model, path)
        restored = load_model(path)
        assert restored._grammar_mask is not None
