"""Tests for the NL tokenizer."""

from hypothesis import given, strategies as st

from repro.nlp import detokenize, is_placeholder_token, tokenize


class TestTokenize:
    def test_basic_words_lowercased(self):
        assert tokenize("Show Me Names") == ["show", "me", "names"]

    def test_placeholders_preserved(self):
        assert tokenize("age @AGE and @STATE.NAME") == [
            "age",
            "@AGE",
            "and",
            "@STATE.NAME",
        ]

    def test_placeholder_case_normalized_upper(self):
        assert tokenize("@age") == ["@AGE"]

    def test_numbers(self):
        assert tokenize("older than 18 or 3.5") == [
            "older",
            "than",
            "18",
            "or",
            "3.5",
        ]

    def test_punctuation_split(self):
        assert tokenize("what, me? yes!") == ["what", ",", "me", "?", "yes", "!"]

    def test_apostrophe_kept_in_word(self):
        assert tokenize("the car's wheel") == ["the", "car's", "wheel"]

    def test_operators(self):
        assert tokenize("age >= 10") == ["age", ">=", "10"]

    def test_empty(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("  \t\n ") == []


class TestDetokenize:
    def test_punctuation_attaches(self):
        assert detokenize(["hello", ",", "world", "?"]) == "hello, world?"

    def test_plain_join(self):
        assert detokenize(["a", "b"]) == "a b"

    def test_leading_punctuation(self):
        assert detokenize([",", "a"]) == ", a"

    @given(st.lists(st.sampled_from(["show", "me", "@AGE", "18", "name"]), max_size=8))
    def test_roundtrip_token_count(self, tokens):
        assert tokenize(detokenize(tokens)) == tokens


class TestIsPlaceholder:
    def test_positive(self):
        assert is_placeholder_token("@AGE")
        assert is_placeholder_token("@STATE.NAME")

    def test_negative(self):
        assert not is_placeholder_token("age")
        assert not is_placeholder_token("")
