"""Tests for the numpy layers — including numeric gradient checks.

The backward passes are hand-derived; the gradient checks compare them
against central finite differences, which is the strongest correctness
evidence available for a hand-rolled autodiff.
"""

import numpy as np
import pytest

from repro.neural.layers import (
    Dense,
    Embedding,
    GRUCell,
    cross_entropy,
    glorot,
    sigmoid,
    softmax,
)


def numeric_grad(f, x, eps=1e-6):
    """Central finite differences of scalar-valued f at array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = f()
        flat[i] = orig - eps
        down = f()
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


class TestPrimitives:
    def test_sigmoid_range_and_stability(self):
        x = np.array([-1000.0, -1.0, 0.0, 1.0, 1000.0])
        y = sigmoid(x)
        assert np.all((y >= 0) & (y <= 1))
        assert y[0] == pytest.approx(0.0, abs=1e-12)
        assert y[-1] == pytest.approx(1.0, abs=1e-12)
        assert y[2] == pytest.approx(0.5)

    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(4, 7))
        s = softmax(x)
        assert np.allclose(s.sum(axis=-1), 1.0)

    def test_softmax_shift_invariant(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(x), softmax(x + 100))

    def test_glorot_bounds(self):
        w = glorot(np.random.default_rng(0), 10, 20)
        limit = np.sqrt(6.0 / 30)
        assert w.shape == (10, 20)
        assert np.all(np.abs(w) <= limit)


class TestEmbedding:
    def test_forward_shapes(self):
        emb = Embedding(10, 4, np.random.default_rng(0))
        assert emb.forward(np.array([1, 2])).shape == (2, 4)
        assert emb.forward(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_backward_scatter_adds(self):
        emb = Embedding(5, 3, np.random.default_rng(0))
        ids = np.array([1, 1, 2])
        grad_out = np.ones((3, 3))
        emb.backward(ids, grad_out)
        assert np.allclose(emb.grads["W"][1], 2.0)
        assert np.allclose(emb.grads["W"][2], 1.0)
        assert np.allclose(emb.grads["W"][0], 0.0)

    def test_load_pretrained(self):
        emb = Embedding(5, 4, np.random.default_rng(0))
        vectors = np.ones((2, 4))
        emb.load_pretrained(vectors, start_row=1)
        assert np.allclose(emb.params["W"][1:3], 1.0)


class TestDense:
    def test_gradient_check(self):
        rng = np.random.default_rng(1)
        for activation in ("linear", "tanh"):
            layer = Dense(4, 3, rng, activation=activation)
            x = rng.normal(size=(5, 4))
            target = rng.normal(size=(5, 3))

            def loss():
                out, _ = layer.forward(x)
                return 0.5 * float(((out - target) ** 2).sum())

            out, cache = layer.forward(x)
            layer.zero_grads()
            grad_x = layer.backward(out - target, cache)

            num_w = numeric_grad(loss, layer.params["W"])
            num_b = numeric_grad(loss, layer.params["b"])
            num_x = numeric_grad(loss, x)
            assert np.allclose(layer.grads["W"], num_w, atol=1e-5)
            assert np.allclose(layer.grads["b"], num_b, atol=1e-5)
            assert np.allclose(grad_x, num_x, atol=1e-5)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            Dense(2, 2, np.random.default_rng(0), activation="relu")


class TestGRUCell:
    def test_forward_shape(self):
        cell = GRUCell(4, 6, np.random.default_rng(0))
        h, _cache = cell.forward(np.zeros((3, 4)), np.zeros((3, 6)))
        assert h.shape == (3, 6)

    def test_gradient_check(self):
        rng = np.random.default_rng(2)
        cell = GRUCell(3, 5, rng)
        x = rng.normal(size=(4, 3))
        h_prev = rng.normal(size=(4, 5))
        target = rng.normal(size=(4, 5))

        def loss():
            h, _ = cell.forward(x, h_prev)
            return 0.5 * float(((h - target) ** 2).sum())

        h, cache = cell.forward(x, h_prev)
        cell.zero_grads()
        grad_x, grad_h = cell.backward(h - target, cache)

        for name in ("Wx", "Wh", "b"):
            numeric = numeric_grad(loss, cell.params[name])
            assert np.allclose(cell.grads[name], numeric, atol=1e-5), name
        assert np.allclose(grad_x, numeric_grad(loss, x), atol=1e-5)
        assert np.allclose(grad_h, numeric_grad(loss, h_prev), atol=1e-5)

    def test_two_step_bptt_gradient_check(self):
        """Chain two GRU steps and check the gradient through time."""
        rng = np.random.default_rng(3)
        cell = GRUCell(3, 4, rng)
        x1 = rng.normal(size=(2, 3))
        x2 = rng.normal(size=(2, 3))
        h0 = np.zeros((2, 4))
        target = rng.normal(size=(2, 4))

        def loss():
            h1, _ = cell.forward(x1, h0)
            h2, _ = cell.forward(x2, h1)
            return 0.5 * float(((h2 - target) ** 2).sum())

        h1, cache1 = cell.forward(x1, h0)
        h2, cache2 = cell.forward(x2, h1)
        cell.zero_grads()
        _gx2, gh1 = cell.backward(h2 - target, cache2)
        _gx1, _gh0 = cell.backward(gh1, cache1)

        for name in ("Wx", "Wh", "b"):
            numeric = numeric_grad(loss, cell.params[name])
            assert np.allclose(cell.grads[name], numeric, atol=1e-5), name


class TestCrossEntropy:
    def test_loss_value(self):
        logits = np.log(np.array([[0.7, 0.2, 0.1]]))
        loss, _ = cross_entropy(logits.copy(), np.array([0]), np.ones(1))
        assert loss == pytest.approx(-np.log(0.7), abs=1e-9)

    def test_mask_zeroes_contribution(self):
        logits = np.random.default_rng(0).normal(size=(2, 4))
        loss, grad = cross_entropy(logits.copy(), np.array([1, 2]), np.array([1.0, 0.0]))
        assert np.allclose(grad[1], 0.0)

    def test_gradient_check(self):
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(3, 5))
        targets = np.array([0, 2, 4])
        mask = np.array([1.0, 1.0, 1.0])

        def loss():
            value, _ = cross_entropy(logits.copy(), targets, mask)
            return value

        _, grad = cross_entropy(logits.copy(), targets, mask)
        numeric = numeric_grad(loss, logits)
        assert np.allclose(grad, numeric, atol=1e-5)
