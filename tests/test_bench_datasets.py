"""Tests for the benchmark datasets: Patients, Spider substitute, GeoQuery."""

from collections import Counter

from repro.bench import (
    CATEGORIES,
    DBPAL_ONLY_KINDS,
    GEOQUERY_SIZE,
    HUMAN_STYLE,
    QUERIES_PER_CATEGORY,
    SPIDER_COMMON_KINDS,
    TEST_SCHEMAS,
    TRAIN_SCHEMAS,
    build_patients_benchmark,
    geoquery_workload,
    humanize,
    spider_schemas,
    spider_test_workload,
    spider_train_pairs,
)
from repro.nlp.ppdb import PARAPHRASE_GROUPS
from repro.sql import Difficulty, try_parse


class TestPatientsBenchmark:
    def test_published_size(self):
        workload = build_patients_benchmark()
        assert len(workload) == 399  # 57 per category x 7 categories
        assert QUERIES_PER_CATEGORY == 57

    def test_category_balance(self):
        workload = build_patients_benchmark()
        counts = Counter(item.category for item in workload)
        assert set(counts) == set(CATEGORIES)
        assert all(v == 57 for v in counts.values())

    def test_all_gold_sql_parses(self):
        for item in build_patients_benchmark():
            assert try_parse(item.sql_text) is not None

    def test_nl_is_pre_anonymized(self):
        # Filters carry placeholders, never literal constants.
        for item in build_patients_benchmark():
            if item.sql.placeholders():
                assert "@" in item.nl, item.nl

    def test_same_sql_across_categories(self):
        """The 7 categories are NL variants of the same 57 SQL queries."""
        workload = build_patients_benchmark()
        by_source = {}
        for item in workload:
            by_source.setdefault((item.source, item.sql_text), set()).add(item.category)
        for (_source, _sql), categories in by_source.items():
            assert categories == set(CATEGORIES)

    def test_nl_varies_across_categories(self):
        workload = build_patients_benchmark()
        naive = {i.sql_text: i.nl for i in workload if i.category == "naive"}
        for category in ("syntactic", "lexical", "semantic"):
            for item in workload.by_category(category):
                assert item.nl != naive[item.sql_text], (category, item.nl)

    def test_schema_is_patients(self):
        assert {i.schema_name for i in build_patients_benchmark()} == {"patients"}

    def test_workload_filters(self):
        workload = build_patients_benchmark()
        assert len(workload.by_category("naive")) == 57
        assert workload.categories() == list(CATEGORIES)


class TestSpiderSubstitute:
    def test_schema_split_disjoint(self):
        assert not set(TRAIN_SCHEMAS) & set(TEST_SCHEMAS)
        train, test = spider_schemas()
        assert {s.name for s in train} == set(TRAIN_SCHEMAS)
        assert {s.name for s in test} == set(TEST_SCHEMAS)

    def test_train_pairs_only_on_train_schemas(self):
        pairs = spider_train_pairs(pairs_per_schema=30, seed=1)
        assert {p.schema_name for p in pairs} <= set(TRAIN_SCHEMAS)
        assert all(p.augmentation == "manual" for p in pairs)

    def test_test_workload_only_on_test_schemas(self):
        workload = spider_test_workload(items_per_schema=20, seed=2)
        assert {i.schema_name for i in workload} <= set(TEST_SCHEMAS)

    def test_difficulty_spread(self):
        workload = spider_test_workload(items_per_schema=24, seed=200)
        difficulties = {i.difficulty for i in workload}
        assert Difficulty.EASY in difficulties
        assert Difficulty.HARD in difficulties or Difficulty.VERY_HARD in difficulties

    def test_source_buckets_populated(self):
        workload = spider_test_workload(items_per_schema=24, seed=200)
        sources = Counter(i.source for i in workload)
        for bucket in ("common", "dbpal-only", "spider-only", "unseen"):
            assert sources[bucket] > 0, sources

    def test_human_style_disjoint_from_ppdb(self):
        """The held-out paraphrase table must not leak into the PPDB;
        otherwise DBPal's augmentation could see the test distribution."""
        ppdb_phrases = {p for group in PARAPHRASE_GROUPS for p in group}
        for replacement in HUMAN_STYLE.values():
            assert replacement not in ppdb_phrases, replacement

    def test_humanize_deterministic(self):
        import numpy as np

        first = humanize("show me all patients", np.random.default_rng(3))
        second = humanize("show me all patients", np.random.default_rng(3))
        assert first == second

    def test_kind_sets_disjoint(self):
        assert not SPIDER_COMMON_KINDS & DBPAL_ONLY_KINDS

    def test_all_gold_sql_parses(self):
        for item in spider_test_workload(items_per_schema=12, seed=3):
            assert try_parse(item.sql_text) is not None

    def test_deterministic(self):
        first = spider_test_workload(items_per_schema=8, seed=5)
        second = spider_test_workload(items_per_schema=8, seed=5)
        assert [(i.nl, i.sql_text) for i in first] == [
            (i.nl, i.sql_text) for i in second
        ]


class TestGeoQuery:
    def test_published_size(self):
        assert GEOQUERY_SIZE == 280
        assert len(geoquery_workload()) == 280

    def test_geography_domain(self):
        workload = geoquery_workload(size=40)
        assert {i.schema_name for i in workload} == {"geography"}

    def test_all_sql_parses(self):
        for item in geoquery_workload(size=60):
            assert try_parse(item.sql_text) is not None

    def test_subsample(self):
        workload = geoquery_workload(size=50)
        assert len(workload.subsample(10)) == 10
