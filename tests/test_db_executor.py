"""Tests for the query executor."""

import pytest

from repro.db import Database, execute
from repro.errors import ExecutionError
from repro.schema import ForeignKey, Schema, Table, integer, text
from repro.sql import parse


@pytest.fixture()
def db():
    schema = Schema(
        "hospital",
        [
            Table(
                "patients",
                [
                    integer("pid", primary_key=True),
                    text("name"),
                    integer("age"),
                    text("diagnosis"),
                ],
            ),
            Table(
                "visits",
                [
                    integer("vid", primary_key=True),
                    integer("pid"),
                    integer("cost"),
                ],
            ),
        ],
        [ForeignKey("visits", "pid", "patients", "pid")],
    )
    database = Database(schema)
    database.insert_many(
        "patients",
        [
            {"pid": 1, "name": "ann", "age": 30, "diagnosis": "flu"},
            {"pid": 2, "name": "bob", "age": 40, "diagnosis": "flu"},
            {"pid": 3, "name": "cal", "age": 50, "diagnosis": "cold"},
            {"pid": 4, "name": "dee", "age": None, "diagnosis": None},
        ],
    )
    database.insert_many(
        "visits",
        [
            {"vid": 1, "pid": 1, "cost": 100},
            {"vid": 2, "pid": 1, "cost": 200},
            {"vid": 3, "pid": 3, "cost": 300},
        ],
    )
    return database


def run(db, sql):
    return execute(parse(sql), db)


class TestProjectionAndFilter:
    def test_select_star(self, db):
        rows = run(db, "SELECT * FROM patients")
        assert len(rows) == 4
        assert set(rows[0]) == {"pid", "name", "age", "diagnosis"}

    def test_select_columns(self, db):
        rows = run(db, "SELECT name FROM patients WHERE age > 35")
        assert [r["name"] for r in rows] == ["bob", "cal"]

    def test_comparison_operators(self, db):
        assert len(run(db, "SELECT * FROM patients WHERE age >= 40")) == 2
        assert len(run(db, "SELECT * FROM patients WHERE age <= 30")) == 1
        assert len(run(db, "SELECT * FROM patients WHERE age <> 30")) == 2

    def test_null_never_matches(self, db):
        assert len(run(db, "SELECT * FROM patients WHERE age > 0")) == 3
        assert len(run(db, "SELECT * FROM patients WHERE age < 1000")) == 3

    def test_and_or(self, db):
        rows = run(
            db,
            "SELECT name FROM patients WHERE diagnosis = 'flu' AND age > 35",
        )
        assert [r["name"] for r in rows] == ["bob"]
        rows = run(
            db,
            "SELECT name FROM patients WHERE age = 30 OR age = 50",
        )
        assert [r["name"] for r in rows] == ["ann", "cal"]

    def test_between(self, db):
        rows = run(db, "SELECT name FROM patients WHERE age BETWEEN 35 AND 45")
        assert [r["name"] for r in rows] == ["bob"]

    def test_in_values(self, db):
        rows = run(db, "SELECT name FROM patients WHERE age IN (30, 50)")
        assert [r["name"] for r in rows] == ["ann", "cal"]

    def test_not_in(self, db):
        rows = run(db, "SELECT name FROM patients WHERE age NOT IN (30, 50)")
        assert [r["name"] for r in rows] == ["bob"]

    def test_like(self, db):
        assert [
            r["name"] for r in run(db, "SELECT name FROM patients WHERE name LIKE 'a%'")
        ] == ["ann"]
        assert [
            r["name"]
            for r in run(db, "SELECT name FROM patients WHERE name LIKE '_ob'")
        ] == ["bob"]

    def test_distinct(self, db):
        rows = run(db, "SELECT DISTINCT diagnosis FROM patients WHERE diagnosis = 'flu'")
        assert len(rows) == 1


class TestAggregates:
    def test_count_star(self, db):
        assert run(db, "SELECT COUNT(*) FROM patients")[0]["COUNT(*)"] == 4

    def test_avg_skips_nulls(self, db):
        assert run(db, "SELECT AVG(age) FROM patients")[0]["AVG(age)"] == 40

    def test_min_max_sum(self, db):
        row = run(db, "SELECT MIN(age), MAX(age), SUM(age) FROM patients")[0]
        assert row["MIN(age)"] == 30
        assert row["MAX(age)"] == 50
        assert row["SUM(age)"] == 120

    def test_count_distinct(self, db):
        row = run(db, "SELECT COUNT(DISTINCT diagnosis) FROM patients")[0]
        assert row["COUNT(DISTINCT diagnosis)"] == 2

    def test_empty_group_aggregates(self, db):
        row = run(db, "SELECT AVG(age) FROM patients WHERE age > 1000")[0]
        assert row["AVG(age)"] is None
        row = run(db, "SELECT COUNT(*) FROM patients WHERE age > 1000")[0]
        assert row["COUNT(*)"] == 0


class TestGroupBy:
    def test_group_counts(self, db):
        rows = run(db, "SELECT diagnosis, COUNT(*) FROM patients GROUP BY diagnosis")
        counts = {r["diagnosis"]: r["COUNT(*)"] for r in rows}
        assert counts == {"flu": 2, "cold": 1, None: 1}

    def test_group_avg(self, db):
        rows = run(db, "SELECT diagnosis, AVG(age) FROM patients GROUP BY diagnosis")
        avg = {r["diagnosis"]: r["AVG(age)"] for r in rows}
        assert avg["flu"] == 35

    def test_having(self, db):
        rows = run(
            db,
            "SELECT diagnosis FROM patients GROUP BY diagnosis HAVING COUNT(*) > 1",
        )
        assert [r["diagnosis"] for r in rows] == ["flu"]

    def test_having_avg(self, db):
        rows = run(
            db,
            "SELECT diagnosis FROM patients GROUP BY diagnosis HAVING AVG(age) > 40",
        )
        assert [r["diagnosis"] for r in rows] == ["cold"]

    def test_star_with_groupby_rejected(self, db):
        with pytest.raises(ExecutionError):
            run(db, "SELECT * FROM patients GROUP BY diagnosis")


class TestOrderLimit:
    def test_order_desc(self, db):
        rows = run(db, "SELECT name FROM patients WHERE age > 0 ORDER BY age DESC")
        assert [r["name"] for r in rows] == ["cal", "bob", "ann"]

    def test_order_by_unselected_column(self, db):
        rows = run(db, "SELECT name FROM patients WHERE age > 0 ORDER BY age")
        assert [r["name"] for r in rows] == ["ann", "bob", "cal"]
        assert set(rows[0]) == {"name"}  # helper sort key stripped

    def test_limit(self, db):
        rows = run(db, "SELECT name FROM patients ORDER BY pid LIMIT 2")
        assert len(rows) == 2

    def test_order_by_aggregate(self, db):
        rows = run(
            db,
            "SELECT diagnosis FROM patients GROUP BY diagnosis "
            "ORDER BY COUNT(*) DESC LIMIT 1",
        )
        assert rows[0]["diagnosis"] == "flu"

    def test_nulls_last_on_desc(self, db):
        rows = run(db, "SELECT name FROM patients ORDER BY age DESC")
        assert rows[-1]["name"] == "dee"


class TestJoins:
    def test_explicit_join(self, db):
        rows = run(
            db,
            "SELECT patients.name, visits.cost FROM patients, visits "
            "WHERE patients.pid = visits.pid",
        )
        assert len(rows) == 3

    def test_join_with_filter(self, db):
        rows = run(
            db,
            "SELECT patients.name FROM patients, visits "
            "WHERE patients.pid = visits.pid AND visits.cost > 150",
        )
        assert sorted(r["patients.name"] for r in rows) == ["ann", "cal"]

    def test_join_aggregate(self, db):
        rows = run(
            db,
            "SELECT SUM(visits.cost) FROM patients, visits "
            "WHERE patients.pid = visits.pid AND patients.diagnosis = 'flu'",
        )
        assert rows[0]["SUM(visits.cost)"] == 300

    def test_unexpanded_join_placeholder_rejected(self, db):
        with pytest.raises(ExecutionError):
            run(db, "SELECT * FROM @JOIN WHERE patients.age = 1")

    def test_ambiguous_column_rejected(self, db):
        with pytest.raises(ExecutionError):
            run(db, "SELECT pid FROM patients, visits")


class TestSubqueries:
    def test_scalar_subquery(self, db):
        rows = run(
            db,
            "SELECT name FROM patients WHERE age = (SELECT MAX(age) FROM patients)",
        )
        assert [r["name"] for r in rows] == ["cal"]

    def test_avg_comparison_subquery(self, db):
        rows = run(
            db,
            "SELECT name FROM patients WHERE age > (SELECT AVG(age) FROM patients)",
        )
        assert [r["name"] for r in rows] == ["cal"]

    def test_in_subquery(self, db):
        rows = run(
            db,
            "SELECT name FROM patients WHERE pid IN "
            "(SELECT pid FROM visits WHERE cost > 150)",
        )
        assert sorted(r["name"] for r in rows) == ["ann", "cal"]

    def test_exists(self, db):
        rows = run(
            db,
            "SELECT name FROM patients WHERE EXISTS "
            "(SELECT * FROM visits WHERE cost > 250)",
        )
        assert len(rows) == 4  # uncorrelated EXISTS is all-or-nothing

    def test_not_exists(self, db):
        rows = run(
            db,
            "SELECT name FROM patients WHERE NOT EXISTS "
            "(SELECT * FROM visits WHERE cost > 9999)",
        )
        assert len(rows) == 4


class TestErrors:
    def test_unknown_table(self, db):
        with pytest.raises(ExecutionError):
            run(db, "SELECT * FROM nope")

    def test_unknown_column(self, db):
        with pytest.raises(ExecutionError):
            run(db, "SELECT zz FROM patients")

    def test_placeholder_rejected(self, db):
        with pytest.raises(ExecutionError):
            run(db, "SELECT * FROM patients WHERE age = @AGE")

    def test_max_rows(self, db):
        rows = execute(parse("SELECT * FROM patients"), db, max_rows=2)
        assert len(rows) == 2
