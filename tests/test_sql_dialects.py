"""Dialect registry and dialect-aware printing.

Covers the satellite audit of string-literal emission: values with
single quotes and backslashes, and reserved-word identifiers, must
survive parse → print → parse, with property tests drawn from the value
index vocabulary of generated databases.
"""

import pytest

pytestmark = pytest.mark.adapters

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.datagen import populate
from repro.db.index import ValueIndex
from repro.errors import DialectError, E_DIALECT
from repro.schema.catalog import load_schema
from repro.sql import parse, to_sql
from repro.sql.ast import ColumnRef, CompOp, Comparison, Literal, Query, Star
from repro.sql.dialects import (
    DIALECTS,
    LIMIT_TOP,
    Dialect,
    get_dialect,
    register_dialect,
)
from repro.sql.printer import SqlPrinter


class TestRegistry:
    def test_builtin_dialects_present(self):
        assert "default" in DIALECTS
        assert "sqlite" in DIALECTS

    def test_get_dialect_by_name_and_instance(self):
        default = get_dialect("default")
        assert default.name == "default"
        assert get_dialect(default) is default

    def test_unknown_dialect_is_a_coded_error(self):
        with pytest.raises(DialectError) as exc:
            get_dialect("postgres")
        assert exc.value.code == E_DIALECT

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DialectError):
            register_dialect(Dialect(name="default"))

    def test_new_dialect_changes_emission_without_touching_printer(self):
        tsql = Dialect(name="tsql-test", limit_style=LIMIT_TOP)
        try:
            register_dialect(tsql)
            printed = to_sql(
                parse("SELECT name FROM patients ORDER BY age DESC LIMIT 3"),
                dialect="tsql-test",
            )
            assert printed == "SELECT TOP 3 name FROM patients ORDER BY age DESC"
        finally:
            DIALECTS.pop("tsql-test", None)

    def test_function_spelling_table(self):
        spelled = Dialect(name="spell-test", function_spellings={"AVG": "MEAN"})
        printed = SqlPrinter(spelled).query(parse("SELECT AVG(age) FROM t"))
        assert printed == "SELECT MEAN(age) FROM t"


class TestDefaultSurfaceStability:
    """The default dialect is the repo's exact-match surface: printing
    the catalog's well-behaved identifiers must not grow quotes."""

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT name, age FROM patients WHERE diagnosis = 'flu'",
            "SELECT a.x, b.y FROM a, b WHERE a.id = b.id",
            "SELECT d, COUNT(*) FROM t GROUP BY d HAVING COUNT(*) > 2",
            "SELECT * FROM t ORDER BY age DESC LIMIT 3",
            "SELECT AVG(patient.age) FROM @JOIN WHERE doctor.name = @DOCTOR.NAME",
        ],
    )
    def test_plain_identifiers_stay_bare(self, sql):
        assert to_sql(parse(sql)) == sql

    def test_sqlite_dialect_matches_default_on_plain_queries(self):
        sql = "SELECT name FROM patients WHERE age > 30 ORDER BY name LIMIT 5"
        assert to_sql(parse(sql), dialect="sqlite") == to_sql(parse(sql))


class TestReservedWordIdentifiers:
    def test_reserved_table_name_quoted_and_roundtrips(self):
        query = Query(select=(Star(),), from_tables=("order",))
        printed = to_sql(query)
        assert printed == 'SELECT * FROM "order"'
        assert parse(printed) == query

    def test_reserved_column_name_quoted_and_roundtrips(self):
        query = Query(
            select=(ColumnRef("count", table="order"),),
            from_tables=("order",),
        )
        printed = to_sql(query)
        assert printed == 'SELECT "order"."count" FROM "order"'
        assert parse(printed) == query

    def test_quoted_identifier_with_embedded_quote_roundtrips(self):
        query = Query(select=(ColumnRef('we"ird'),), from_tables=("t",))
        printed = to_sql(query)
        assert '"we""ird"' in printed
        assert parse(printed) == query

    def test_group_and_order_positions_quote_too(self):
        query = Query(
            select=(ColumnRef("group"),),
            from_tables=("t",),
            group_by=(ColumnRef("group"),),
        )
        printed = to_sql(query)
        assert printed == 'SELECT "group" FROM t GROUP BY "group"'
        assert parse(printed) == query


def _literal_roundtrip(value: str) -> None:
    query = Query(
        select=(Star(),),
        from_tables=("t",),
        where=Comparison(ColumnRef("c"), CompOp.EQ, Literal(value)),
    )
    reparsed = parse(to_sql(query))
    assert reparsed.where.right.value == value


class TestStringLiteralEmission:
    @pytest.mark.parametrize(
        "value",
        [
            "o'brien",
            "it''s",
            "'",
            "''",
            "back\\slash",
            "\\",
            "\\'",
            "a 'quoted' word",
            "select",
            'double"quote',
        ],
    )
    def test_tricky_values_roundtrip(self, value):
        _literal_roundtrip(value)

    @settings(max_examples=200, deadline=None)
    @given(st.text(min_size=1, max_size=40))
    def test_arbitrary_text_roundtrips(self, value):
        _literal_roundtrip(value)

    def test_value_index_vocabulary_roundtrips(self):
        """Every text value datagen can put in a database must print to
        a literal that reparses to the same value (the vocabulary the
        corpus synthesizer draws slot fills from)."""
        for schema_name in ("patients", "geography", "retail"):
            schema = load_schema(schema_name)
            database = populate(schema, rows_per_table=30, seed=11)
            index = ValueIndex(database)
            vocabulary = {
                value
                for values in index._text_values.values()
                for value in values
            }
            assert vocabulary
            for value in sorted(vocabulary):
                _literal_roundtrip(value)
