"""Tests for repro.schema.column."""

import pytest

from repro.errors import SchemaError
from repro.schema.column import (
    KNOWN_DOMAINS,
    Column,
    ColumnType,
    date,
    floating,
    integer,
    text,
)


class TestColumnType:
    def test_numeric_types(self):
        assert ColumnType.INTEGER.is_numeric
        assert ColumnType.FLOAT.is_numeric

    def test_non_numeric_types(self):
        assert not ColumnType.TEXT.is_numeric
        assert not ColumnType.DATE.is_numeric


class TestColumn:
    def test_default_annotation_from_name(self):
        column = Column("length_of_stay", ColumnType.INTEGER)
        assert column.annotation == "length of stay"

    def test_explicit_annotation_preserved(self):
        column = Column("los", ColumnType.INTEGER, annotation="length of stay")
        assert column.annotation == "length of stay"

    def test_nl_phrases_include_synonyms(self):
        column = Column("age", ColumnType.INTEGER, synonyms=("years",))
        assert column.nl_phrases == ("age", "years")

    def test_placeholder_uppercase(self):
        assert Column("age", ColumnType.INTEGER).placeholder == "@AGE"
        assert Column("state_name").placeholder == "@STATE_NAME"

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name")
        with pytest.raises(SchemaError):
            Column("")

    def test_unknown_domain_rejected(self):
        with pytest.raises(SchemaError):
            Column("age", ColumnType.INTEGER, domain="nonsense")

    def test_known_domain_accepted(self):
        column = Column("age", ColumnType.INTEGER, domain="age")
        assert column.domain == "age"

    def test_is_numeric_proxy(self):
        assert integer("a").is_numeric
        assert floating("b").is_numeric
        assert not text("c").is_numeric
        assert not date("d").is_numeric

    def test_immutability(self):
        column = integer("age")
        with pytest.raises(AttributeError):
            column.name = "other"


class TestKnownDomains:
    def test_every_domain_has_two_phrases(self):
        for domain, phrases in KNOWN_DOMAINS.items():
            assert len(phrases) == 2, domain
            assert all(isinstance(p, str) and p for p in phrases)

    def test_age_domain_phrases(self):
        assert KNOWN_DOMAINS["age"] == ("older than", "younger than")


class TestShorthands:
    def test_types(self):
        assert integer("a").ctype is ColumnType.INTEGER
        assert floating("a").ctype is ColumnType.FLOAT
        assert text("a").ctype is ColumnType.TEXT
        assert date("a").ctype is ColumnType.DATE

    def test_kwargs_forwarded(self):
        column = integer("age", domain="age", primary_key=True)
        assert column.domain == "age"
        assert column.primary_key
