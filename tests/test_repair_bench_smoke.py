"""Tier-1 smoke run of the execute–verify–repair benchmark.

``benchmarks/run_repair.py`` is executed end-to-end in miniature
(``--smoke`` shrinks both workloads) so the benchmark cannot rot out
from under the repair loop: the corruptor must break queries, the
``first_guess`` arm must miss them, and the ``repaired`` arm must win
them back at the default budget.  The headline accuracy/latency claims
are judged on the ``full`` profile (``BENCH_repair.json``), not here.
"""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

pytestmark = pytest.mark.repair


def test_smoke_run_writes_valid_record(tmp_path):
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        from run_repair import main
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))

    output = tmp_path / "BENCH_repair.json"
    exit_code = main(["--smoke", "--output", str(output)])
    assert exit_code == 0

    record = json.loads(output.read_text(encoding="utf-8"))
    assert record["benchmark"] == "repair"
    assert record["profile"] == "smoke"
    assert set(record["workloads"]) == {"patients", "spider-substitute"}
    for name, stats in record["workloads"].items():
        # The corruptor actually broke a fraction of first guesses...
        assert 0 < stats["corrupted"] < stats["items"], name
        first, fixed = stats["first_guess"], stats["repaired"]
        assert first["accuracy"] < 1.0, name
        # ...and the repair loop won some of them back, deterministically.
        assert stats["accuracy_uplift"] > 0, (name, stats)
        assert fixed["accuracy"] > first["accuracy"]
        # The zero-attempt arm never repairs; the full arm never raises
        # (every item lands in a terminal outcome).
        assert "repaired" not in first["outcomes"], name
        assert sum(first["outcomes"].values()) == stats["items"]
        assert sum(fixed["outcomes"].values()) == stats["items"]
        # Execution re-rank verified at least one repair.
        assert fixed["verified"] > 0, name
