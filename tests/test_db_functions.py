"""Tests for aggregate functions."""

import pytest

from repro.db.functions import evaluate_aggregate
from repro.errors import ExecutionError
from repro.sql import AggFunc


class TestAggregates:
    def test_count(self):
        assert evaluate_aggregate(AggFunc.COUNT, [1, 2, 3]) == 3
        assert evaluate_aggregate(AggFunc.COUNT, []) == 0

    def test_count_distinct(self):
        assert evaluate_aggregate(AggFunc.COUNT, [1, 1, 2], distinct=True) == 2

    def test_sum_avg(self):
        assert evaluate_aggregate(AggFunc.SUM, [1, 2, 3]) == 6
        assert evaluate_aggregate(AggFunc.AVG, [1, 2, 3]) == 2

    def test_min_max(self):
        assert evaluate_aggregate(AggFunc.MIN, [3, 1, 2]) == 1
        assert evaluate_aggregate(AggFunc.MAX, [3, 1, 2]) == 3

    def test_min_max_strings(self):
        assert evaluate_aggregate(AggFunc.MIN, ["b", "a"]) == "a"
        assert evaluate_aggregate(AggFunc.MAX, ["b", "a"]) == "b"

    def test_empty_is_null(self):
        for func in (AggFunc.SUM, AggFunc.AVG, AggFunc.MIN, AggFunc.MAX):
            assert evaluate_aggregate(func, []) is None

    def test_sum_over_strings_rejected(self):
        with pytest.raises(ExecutionError):
            evaluate_aggregate(AggFunc.SUM, ["a", "b"])
        with pytest.raises(ExecutionError):
            evaluate_aggregate(AggFunc.AVG, ["a"])

    def test_distinct_sum(self):
        assert evaluate_aggregate(AggFunc.SUM, [2, 2, 3], distinct=True) == 5
