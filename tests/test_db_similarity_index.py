"""Tests for string similarity and the value index."""

from hypothesis import given, strategies as st

from repro.db import ValueIndex, best_match, jaccard_tokens, jaccard_trigram, populate
from repro.schema import patients_schema


class TestJaccard:
    def test_identity(self):
        assert jaccard_trigram("boston", "boston") == 1.0
        assert jaccard_tokens("new york", "new york") == 1.0

    def test_disjoint(self):
        assert jaccard_trigram("abc", "xyz") == 0.0

    def test_case_insensitive(self):
        assert jaccard_trigram("Boston", "boston") == 1.0

    def test_partial_overlap_ranks_correctly(self):
        close = jaccard_trigram("influenza", "influenzza")
        far = jaccard_trigram("influenza", "fracture")
        assert close > far > 0.0 or far == 0.0

    @given(st.text(min_size=1, max_size=20), st.text(min_size=1, max_size=20))
    def test_symmetry(self, a, b):
        assert jaccard_trigram(a, b) == jaccard_trigram(b, a)

    @given(st.text(min_size=0, max_size=20))
    def test_reflexive(self, a):
        assert jaccard_trigram(a, a) == 1.0

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_bounds(self, a, b):
        assert 0.0 <= jaccard_trigram(a, b) <= 1.0


class TestBestMatch:
    def test_picks_best(self):
        match, score = best_match("influenzza", ["fracture", "influenza", "asthma"])
        assert match == "influenza"
        assert score > 0.5

    def test_threshold(self):
        match, score = best_match("zzzzzz", ["influenza"], threshold=0.5)
        assert match is None and score == 0.0

    def test_empty_candidates(self):
        assert best_match("x", []) == (None, 0.0)


class TestValueIndex:
    def test_exact_lookup(self, patients_db):
        value = patients_db.rows("patients")[0]["diagnosis"]
        hits = ValueIndex(patients_db).lookup(value)
        assert any(h.column == "diagnosis" and h.score == 1.0 for h in hits)

    def test_numeric_lookup(self, patients_db):
        age = patients_db.rows("patients")[0]["age"]
        hits = ValueIndex(patients_db).lookup(str(age))
        assert any(h.column == "age" for h in hits)

    def test_lookup_normalizes_case(self, patients_db):
        value = patients_db.rows("patients")[0]["name"]
        hits = ValueIndex(patients_db).lookup(value.upper())
        assert hits

    def test_fuzzy_lookup_corrects_typo(self, patients_db):
        index = ValueIndex(patients_db)
        hits = index.fuzzy_lookup("influenzza")
        assert hits and hits[0].value == "influenza"

    def test_fuzzy_lookup_below_threshold_empty(self, patients_db):
        index = ValueIndex(patients_db, similarity_threshold=0.9)
        assert index.fuzzy_lookup("qqqqqwwww") == []

    def test_columns_for(self, patients_db):
        index = ValueIndex(patients_db)
        value = patients_db.rows("patients")[0]["gender"]
        assert ("patients", "gender") in index.columns_for(value)

    def test_fuzzy_hits_sorted_by_score(self, patients_db):
        index = ValueIndex(patients_db)
        hits = index.fuzzy_lookup("influenz")
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)


class TestPopulate:
    def test_deterministic(self):
        first = populate(patients_schema(), rows_per_table=10, seed=5)
        second = populate(patients_schema(), rows_per_table=10, seed=5)
        assert first.rows("patients") == second.rows("patients")

    def test_seed_changes_data(self):
        first = populate(patients_schema(), rows_per_table=10, seed=5)
        second = populate(patients_schema(), rows_per_table=10, seed=6)
        assert first.rows("patients") != second.rows("patients")

    def test_row_counts(self, geography_db):
        for table in geography_db.schema.tables:
            assert geography_db.row_count(table.name) == 25

    def test_foreign_keys_reference_parents(self, geography_db):
        states = set(geography_db.column_values("state", "state_name"))
        cities = geography_db.rows("city")
        assert all(row["state_name"] in states for row in cities)

    def test_domain_ranges_respected(self, patients_db):
        ages = patients_db.column_values("patients", "age")
        assert all(1 <= a <= 99 for a in ages)

    def test_primary_keys_sequential(self, patients_db):
        pids = patients_db.column_values("patients", "patient_id")
        assert pids == list(range(1, 31))

    def test_all_catalog_schemas_populate(self):
        from repro.schema import all_schemas

        for schema in all_schemas():
            db = populate(schema, rows_per_table=5, seed=1)
            for table in schema.tables:
                assert db.row_count(table.name) == 5
