"""Tests for the template machinery."""

import numpy as np
import pytest

from repro.core.templates import (
    Family,
    FilterSpec,
    ParaphraseKind,
    SeedTemplate,
    TrainingPair,
    pick_column,
    pick_filter,
    pick_table,
    pluralize,
    render,
)
from repro.errors import TemplateError
from repro.sql import CompOp, parse


class TestPluralize:
    @pytest.mark.parametrize(
        "word,plural",
        [
            ("patient", "patients"),
            ("city", "cities"),
            ("class", "classes"),
            ("box", "boxes"),
            ("church", "churches"),
            ("wish", "wishes"),
            ("patients", "patients"),  # already plural
            ("hospital stay", "hospital stays"),  # head noun only
        ],
    )
    def test_examples(self, word, plural):
        assert pluralize(word) == plural


class TestRender:
    def test_fills_slots(self):
        assert render("show {x} of {y}", {"x": "a", "y": "b"}) == "show a of b"

    def test_collapses_whitespace(self):
        assert render("a   {x}  b", {"x": " c "}) == "a c b"

    def test_missing_slot_raises(self):
        with pytest.raises(TemplateError):
            render("show {missing}", {})


class TestSeedTemplate:
    def test_requires_slots(self):
        with pytest.raises(TemplateError):
            SeedTemplate("t", Family.SELECT, "select_all", "no slots here")

    def test_valid_template(self):
        template = SeedTemplate(
            "t", Family.SELECT, "select_all", "{select_phrase} all {table}"
        )
        assert template.paraphrase_kind is ParaphraseKind.NAIVE


class TestTrainingPair:
    def make(self):
        return TrainingPair(
            nl="show all patients",
            sql=parse("SELECT * FROM patients"),
            template_id="t",
            family=Family.SELECT,
            schema_name="patients",
        )

    def test_sql_text(self):
        assert self.make().sql_text == "SELECT * FROM patients"

    def test_with_nl(self):
        varied = self.make().with_nl("display all patients", "paraphrase")
        assert varied.nl == "display all patients"
        assert varied.augmentation == "paraphrase"
        assert varied.sql == self.make().sql

    def test_key(self):
        assert self.make().key() == ("show all patients", "SELECT * FROM patients")


class TestPickers:
    def test_pick_table_uniform_coverage(self, geography):
        rng = np.random.default_rng(0)
        seen = {pick_table(geography, rng).name for _ in range(100)}
        assert seen == set(geography.table_names)

    def test_pick_column_numeric_constraint(self, patients):
        rng = np.random.default_rng(0)
        table = patients.table("patients")
        for _ in range(20):
            assert pick_column(table, rng, numeric=True).is_numeric
            assert not pick_column(table, rng, numeric=False).is_numeric

    def test_pick_column_exclusion(self, patients):
        rng = np.random.default_rng(0)
        table = patients.table("patients")
        names = {c.name for c in table.columns if c.name != "age"}
        for _ in range(20):
            column = pick_column(table, rng, exclude=("age",))
            assert column.name in names

    def test_pick_column_avoids_primary_key(self, patients):
        rng = np.random.default_rng(0)
        table = patients.table("patients")
        picks = {pick_column(table, rng).name for _ in range(60)}
        assert "patient_id" not in picks

    def test_pick_column_none_when_exhausted(self, patients):
        rng = np.random.default_rng(0)
        table = patients.table("patients")
        all_names = tuple(table.column_names)
        assert pick_column(table, rng, exclude=all_names) is None


class TestFilterSpec:
    def test_sql_and_nl_consistent(self, patients):
        rng = np.random.default_rng(1)
        table = patients.table("patients")
        for _ in range(20):
            spec = pick_filter(table, rng)
            comparison = spec.sql()
            assert comparison.left.column == spec.column.name
            assert str(spec.nl_placeholder) in spec.nl(rng)

    def test_qualified_spec(self, geography):
        rng = np.random.default_rng(1)
        table = geography.table("state")
        spec = pick_filter(table, rng, qualified=True)
        assert spec.sql().left.table == "state"
        assert spec.placeholder.name.startswith("STATE.")
        # NL side stays unqualified for runtime alignment.
        assert "." not in str(spec.nl_placeholder)

    def test_text_columns_get_equality(self, patients):
        rng = np.random.default_rng(2)
        table = patients.table("patients")
        ops = {
            pick_filter(table, rng, numeric=False).op for _ in range(50)
        }
        assert ops <= {CompOp.EQ, CompOp.NE}

    def test_numeric_columns_get_comparisons(self, patients):
        rng = np.random.default_rng(2)
        table = patients.table("patients")
        ops = {pick_filter(table, rng, numeric=True).op for _ in range(80)}
        assert CompOp.GT in ops and CompOp.LT in ops

    def test_domain_phrase_used(self, patients):
        rng = np.random.default_rng(3)
        table = patients.table("patients")
        spec = FilterSpec(table, table.column("age"), CompOp.GT)
        phrases = {spec.nl(np.random.default_rng(s)) for s in range(30)}
        assert any("older than" in p for p in phrases)
