"""Cross-layer wiring of the canonical analyzer (PR contract).

One static pass, four consumers: the serving cache's coalescing tier
and its accounting identity, corpus ``dedupe_pairs(semantic=True)``
(plus the pipeline flag), the eval harness's ``semantic`` column, and
the repair loop's canonical oscillation/dedupe guard.  Each class here
pins one consumer to the shared canonicalizer.
"""

import pickle
import threading
import time

import pytest

from repro.core import GenerationConfig, TrainingPipeline, dedupe_pairs
from repro.core.templates import Family, TrainingPair
from repro.neural.base import TranslationModel
from repro.runtime import DBPal
from repro.schema import load_schema
from repro.serving import ServingConfig, TranslationService
from repro.serving.metrics import merge_shard_stats
from repro.sql.parser import parse

pytestmark = pytest.mark.canonical


class ParaphraseModel(TranslationModel):
    """Returns canonically-equal but textually-varied SQL per phrasing."""

    SPELLINGS = {
        "show": "SELECT name FROM patients WHERE age = @AGE",
        "list": "SELECT name FROM patients WHERE age = @AGE",  # same text
        "display": "SELECT name FROM patients WHERE @AGE = age",  # variant
    }

    def __init__(self) -> None:
        self.batch_calls: list[list[str]] = []
        self._lock = threading.Lock()

    def fit(self, pairs, **kwargs):
        pass

    def translate(self, nl):
        for cue, sql in self.SPELLINGS.items():
            if cue in nl:
                return sql
        return None

    def translate_batch(self, nls):
        with self._lock:
            self.batch_calls.append(list(nls))
        return [self.translate(nl) for nl in nls]


def _service(patients_db, model, **overrides):
    config = ServingConfig(
        workers=2, batch_window=0.002, request_timeout=10.0, **overrides
    )
    return TranslationService(DBPal(patients_db, model), config)


class TestServingCanonicalTier:
    def test_canonical_counters_and_accounting(self, patients_db):
        age = sorted(set(patients_db.column_values("patients", "age")))[0]
        with _service(patients_db, ParaphraseModel()) as service:
            # Three phrasings -> three distinct anonymized cache keys,
            # one canonical query.
            service.translate(f"show the patients with age {age}")
            service.translate(f"list the patients with age {age}")
            service.translate(f"display the patients with age {age}")
            stats = service.stats()
        cache = stats["cache"]
        assert cache["canonical_probes"] == 3
        assert cache["canonical_new"] == 1
        assert cache["canonical_hits"] == 1  # identical text interned
        assert cache["canonical_variants"] == 1  # flipped spelling kept
        assert cache["canonical_index_size"] == 1
        names = [i["identity"] for i in stats["accounting"]["identities"]]
        assert (
            "cache.canonical_probes == canonical_hits + canonical_variants"
            " + canonical_new + canonical_skipped" in names
        )
        assert stats["accounting"]["consistent"], stats["accounting"]

    def test_payloads_survive_coalescing(self, patients_db):
        ages = sorted(set(patients_db.column_values("patients", "age")))[:2]
        with _service(patients_db, ParaphraseModel()) as service:
            flipped = service.translate(f"display the patients with age {ages[0]}")
            straight = service.translate(f"show the patients with age {ages[1]}")
        # The variant's own text is served verbatim — coalescing only
        # interns bit-identical payloads, it never rewrites them.
        assert flipped.ok and straight.ok
        assert flipped.sql != straight.sql
        assert str(ages[0]) in flipped.sql

    def test_canonical_cache_flag_off(self, patients_db):
        age = sorted(set(patients_db.column_values("patients", "age")))[0]
        with _service(
            patients_db, ParaphraseModel(), canonical_cache=False
        ) as service:
            service.translate(f"show the patients with age {age}")
            stats = service.stats()
        assert "canonical_probes" not in stats["cache"]

    def test_unparseable_output_counts_skipped(self, patients_db):
        class BrokenModel(ParaphraseModel):
            SPELLINGS = {"show": "THIS IS NOT SQL ((("}

        age = sorted(set(patients_db.column_values("patients", "age")))[0]
        with _service(patients_db, BrokenModel()) as service:
            service.translate(f"show the patients with age {age}")
            stats = service.stats()
        cache = stats["cache"]
        assert cache["canonical_skipped"] >= 1
        assert stats["accounting"]["consistent"], stats["accounting"]

    def test_merge_shard_stats_sums_canonical_fields(self):
        def snap(probes, hits, variants, new, skipped):
            return {
                "counters": {},
                "latency_samples": [],
                "batch_size_histogram": {},
                "cache": {
                    "size": 1,
                    "capacity": 8,
                    "hits": 0,
                    "misses": 1,
                    "stale_hits": 0,
                    "evictions": 0,
                    "hit_rate": 0.0,
                    "canonical_probes": probes,
                    "canonical_hits": hits,
                    "canonical_variants": variants,
                    "canonical_new": new,
                    "canonical_skipped": skipped,
                    "canonical_index_size": new,
                },
            }

        merged = merge_shard_stats(
            [snap(3, 1, 1, 1, 0), snap(2, 0, 0, 1, 1)], elapsed=1.0
        )
        cache = merged["cache"]
        assert cache["canonical_probes"] == 5
        assert cache["canonical_hits"] == 1
        assert cache["canonical_variants"] == 1
        assert cache["canonical_new"] == 2
        assert cache["canonical_skipped"] == 1


def _pair(nl, sql, schema_name="patients"):
    return TrainingPair(
        nl=nl,
        sql=parse(sql),
        template_id="t0",
        family=Family.SELECT,
        schema_name=schema_name,
    )


class TestSemanticDedupe:
    def test_semantic_mode_collapses_canonical_duplicates(self, patients):
        pairs = [
            _pair("count young patients", "SELECT name FROM patients WHERE age IN (20, 30)"),
            _pair("count young patients", "SELECT name FROM patients WHERE age = 30 OR age = 20"),
            _pair("count young patients", "SELECT name FROM patients WHERE age IN (20, 40)"),
        ]
        exact = dedupe_pairs(pairs)
        assert len(exact) == 3  # textually all distinct
        semantic = dedupe_pairs(
            pairs, semantic=True, schemas={"patients": patients}
        )
        assert semantic == [pairs[0], pairs[2]]

    def test_semantic_mode_keeps_distinct_nl(self, patients):
        pairs = [
            _pair("first phrasing", "SELECT name FROM patients WHERE age IN (20, 30)"),
            _pair("second phrasing", "SELECT name FROM patients WHERE age = 30 OR age = 20"),
        ]
        semantic = dedupe_pairs(
            pairs, semantic=True, schemas={"patients": patients}
        )
        # The NL side is part of the key: different questions survive.
        assert semantic == pairs

    def test_default_mode_unchanged_without_flag(self, patients_corpus):
        assert dedupe_pairs(patients_corpus.pairs) == list(patients_corpus.pairs)

    def test_semantic_key_memoized_and_unpickled_clean(self, patients):
        pair = _pair("q", "SELECT name FROM patients WHERE age BETWEEN 1 AND 2")
        key = pair.semantic_key(patients)
        assert pair.semantic_key(patients) is key
        assert key[1] == "SELECT name FROM patients WHERE age <= 2 AND age >= 1"
        clone = pickle.loads(pickle.dumps(pair))
        assert "_semantic_key" not in clone.__dict__
        assert clone.semantic_key(patients) == key

    def test_pipeline_semantic_flag(self, patients):
        config = GenerationConfig(size_slotfills=4)
        baseline = TrainingPipeline(patients, config, seed=1).generate()
        filtered = TrainingPipeline(
            patients, config, seed=1, semantic_dedupe=True
        ).generate()
        # The filtered corpus is a subsequence of the exact-deduped one
        # and every surviving pair has a unique (nl, canonical) key.
        assert len(filtered.pairs) <= len(baseline.pairs)
        keys = [p.semantic_key(patients) for p in filtered.pairs]
        assert len(keys) == len(set(keys))
        survivors = set(p.key() for p in filtered.pairs)
        assert survivors <= set(p.key() for p in baseline.pairs)

    def test_pipeline_default_bit_identical(self, patients, patients_corpus):
        config = GenerationConfig(size_slotfills=4)
        again = TrainingPipeline(patients, config, seed=1).generate()
        assert again.pairs == patients_corpus.pairs


class TestEvalSemanticColumn:
    def test_semantic_match_beats_exact_on_paraphrase(self, patients):
        from repro.bench.workloads import Workload, WorkloadItem
        from repro.eval.harness import evaluate

        class VariantModel:
            def translate(self, nl):
                return "SELECT name FROM patients WHERE age = 30 OR age = 20"

        workload = Workload(
            name="w",
            items=[
                WorkloadItem(
                    nl="some question",
                    sql=parse("SELECT name FROM patients WHERE age IN (20, 30)"),
                    schema_name="patients",
                )
            ],
        )
        result = evaluate(
            VariantModel(), workload, metric="exact", postprocess=False
        )
        [record] = result.records
        assert not record.correct  # textual mismatch
        assert record.semantic  # canonical forms agree
        assert result.accuracy == 0.0
        assert result.semantic_accuracy == 1.0
        assert "semantic 1.000" in result.summary()

    def test_semantic_at_least_exact(self, patients):
        from repro.bench.workloads import Workload, WorkloadItem
        from repro.eval.harness import evaluate

        class EchoModel:
            def translate(self, nl):
                return nl  # the item NL *is* the gold SQL text

        items = [
            WorkloadItem(
                nl="SELECT name FROM patients",
                sql=parse("SELECT name FROM patients"),
                schema_name="patients",
            ),
            WorkloadItem(
                nl="SELECT age FROM patients",
                sql=parse("SELECT COUNT(*) FROM patients"),
                schema_name="patients",
            ),
        ]
        result = evaluate(
            EchoModel(),
            Workload(name="w", items=items),
            metric="exact",
            postprocess=False,
        )
        for record in result.records:
            assert record.semantic >= record.correct
        assert result.semantic_accuracy >= result.accuracy


class TestRepairCanonicalGuard:
    def test_guard_key_is_canonical(self, patients):
        from repro.serving.repair import RepairPipeline

        loop = RepairPipeline(patients)
        a = loop._canonical_guard_key(
            parse("SELECT name FROM patients WHERE age IN (20, 30)")
        )
        b = loop._canonical_guard_key(
            parse("SELECT name FROM patients WHERE age = 30 OR age = 20")
        )
        c = loop._canonical_guard_key(
            parse("SELECT name FROM patients WHERE age IN (20, 40)")
        )
        assert a == b
        assert a != c

    def test_guard_key_survives_broken_candidates(self, patients):
        from repro.serving.repair import RepairPipeline

        loop = RepairPipeline(patients)
        # Unknown table/column: canonicalizer degrades, never raises.
        broken = parse("SELECT nosuch FROM phantom WHERE x = 1")
        assert loop._canonical_guard_key(broken)

    def test_repair_run_still_clean_end_to_end(self, patients):
        from repro.serving.repair import RepairPipeline

        loop = RepairPipeline(patients)
        report = loop.run(parse("SELECT name FROM patients WHERE age > 30"))
        assert report.sql == "SELECT name FROM patients WHERE age > 30"
        assert report.outcome != "abandoned"


class TestMonotonicClockDiscipline:
    def test_service_clocks_are_monotonic(self):
        # Budget/deadline arithmetic must never consult wall-clock
        # time; the self-lint test enforces this statically, this pins
        # the two live defaults.
        import inspect

        from repro.serving.cache import TranslationCache
        from repro.serving.repair import RepairPipeline

        assert (
            inspect.signature(TranslationCache.__init__)
            .parameters["clock"]
            .default
            is time.monotonic
        )
        assert (
            inspect.signature(RepairPipeline.__init__)
            .parameters["clock"]
            .default
            is time.monotonic
        )
