"""Tests for the seed template library."""

import numpy as np
import pytest

from repro.core import GenerationConfig, SEED_TEMPLATES
from repro.core.seed_templates import (
    GROUPBY_VARIANTS,
    KIND_REGISTRY,
    builder_for,
)
from repro.core.templates import Family, ParaphraseKind, render
from repro.schema import all_schemas, load_schema
from repro.sql import to_sql, try_parse


class TestLibraryShape:
    def test_roughly_one_hundred_templates(self):
        # Paper §2.2.1: "approximately 100 seed templates".
        assert 80 <= len(SEED_TEMPLATES) <= 120

    def test_unique_ids(self):
        ids = [t.tid for t in SEED_TEMPLATES]
        assert len(ids) == len(set(ids))

    def test_all_families_covered(self):
        families = {t.family for t in SEED_TEMPLATES}
        assert families == set(Family)

    def test_paraphrase_kinds_covered(self):
        kinds = {t.paraphrase_kind for t in SEED_TEMPLATES}
        assert kinds == set(ParaphraseKind)

    def test_every_kind_has_naive_pattern(self):
        for kind, (_family, _builder, patterns) in KIND_REGISTRY.items():
            assert any(p[1] is ParaphraseKind.NAIVE for p in patterns), kind

    def test_groupby_variants_registered(self):
        for source, variant in GROUPBY_VARIANTS.items():
            assert source in KIND_REGISTRY
            assert variant in KIND_REGISTRY

    def test_builder_for_unknown_kind(self):
        with pytest.raises(KeyError):
            builder_for("nonexistent")


class TestBuilders:
    @pytest.mark.parametrize("kind", sorted(KIND_REGISTRY))
    def test_builder_output_consistent(self, kind):
        """Every builder produces parseable SQL and fills every NL slot
        of every pattern of its kind, on a schema that supports it."""
        config = GenerationConfig(size_tables=3)
        rng = np.random.default_rng(7)
        family, builder, patterns = KIND_REGISTRY[kind]
        produced = 0
        for schema in all_schemas():
            for _ in range(6):
                fill = builder(schema, rng, config)
                if fill is None:
                    continue
                produced += 1
                # SQL parses back identically.
                assert try_parse(to_sql(fill.query)) == fill.query
                # Every NL pattern renders with the provided slots.
                for pattern, _kind in patterns:
                    text = render(pattern, fill.slots)
                    assert "{" not in text and "}" not in text
        assert produced > 0, f"builder {kind} produced nothing on any schema"

    def test_join_builders_need_foreign_keys(self):
        config = GenerationConfig()
        rng = np.random.default_rng(0)
        patients = load_schema("patients")  # single table, no FKs
        for kind in ("join_select", "join_agg", "join_count", "join_groupby",
                     "in_subquery", "exists_subquery"):
            builder = builder_for(kind)
            assert builder(patients, rng, config) is None

    def test_join_builders_emit_join_placeholder(self, geography):
        config = GenerationConfig()
        rng = np.random.default_rng(0)
        for kind in ("join_select", "join_agg", "join_count", "join_groupby"):
            fill = builder_for(kind)(geography, rng, config)
            assert fill is not None
            assert fill.query.uses_join_placeholder

    def test_nested_builders_emit_subqueries(self, patients):
        config = GenerationConfig()
        rng = np.random.default_rng(0)
        for kind in ("superlative_nested", "nested_filter", "nested_avg_cmp"):
            fill = builder_for(kind)(patients, rng, config)
            assert fill is not None
            assert fill.query.is_nested

    def test_filters_use_placeholders_not_constants(self, patients):
        config = GenerationConfig()
        rng = np.random.default_rng(0)
        for kind in ("filter_select_all", "filter_select_col", "agg_filter"):
            fill = builder_for(kind)(patients, rng, config)
            assert fill.query.placeholders(), kind
