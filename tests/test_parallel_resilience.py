"""Fault isolation in the synthesis engine: retry, re-dispatch, quarantine.

The contract under test: a misbehaving shard — crash, hang, or the
death of the worker process running it — never aborts the run and never
changes the corpus.  Transient faults are retried (with identical RNG
streams, so the merged output is bit-identical to a fault-free run);
persistent faults are quarantined with a report naming the offending
(schema, template, seed) triple.
"""

import pytest

from repro.core import (
    GenerationConfig,
    ResilienceConfig,
    SynthesisEngine,
)
from repro.core import faults as F
from repro.core.faults import FaultPlan, FaultSpec
from repro.core.parallel import OUTCOME_OK, OUTCOME_QUARANTINED
from repro.core.seed_templates import SEED_TEMPLATES
from repro.errors import (
    E_SHARD_CRASH,
    E_SHARD_TIMEOUT,
    E_WORKER_DIED,
    GenerationError,
)

#: Small but multi-shard engine: 6 (schema, template) shards.
TEMPLATES = SEED_TEMPLATES[:6]


@pytest.fixture(scope="module")
def engine(request):
    patients = request.getfixturevalue("patients")
    return SynthesisEngine(
        patients,
        GenerationConfig(size_slotfills=2),
        templates=TEMPLATES,
        seed=3,
    )


@pytest.fixture(scope="module")
def reference(engine):
    """Fault-free inline outcomes (the determinism yardstick)."""
    return [
        (o.shard_index, [p.key() for p in o.pairs])
        for o in engine.iter_outcomes(workers=0)
    ]


def fingerprints(outcomes):
    return [(o.shard_index, [p.key() for p in o.pairs]) for o in outcomes]


FAST_RETRY = ResilienceConfig(backoff_base=0.01, backoff_cap=0.05)


class TestInline:
    def test_all_ok_without_faults(self, engine, reference):
        outcomes = list(engine.iter_outcomes(workers=0))
        assert all(o.ok for o in outcomes)
        assert fingerprints(outcomes) == reference

    def test_transient_crash_retried_bit_identical(self, engine, reference):
        plan = FaultPlan((FaultSpec(F.CRASH, shard_index=2, attempts=1),))
        outcomes = list(
            engine.iter_outcomes(workers=0, faults=plan, resilience=FAST_RETRY)
        )
        assert [o.status for o in outcomes] == [OUTCOME_OK] * len(outcomes)
        assert outcomes[2].attempts == 2  # one failure + one success
        assert fingerprints(outcomes) == reference

    def test_persistent_crash_quarantined_not_fatal(self, engine, reference):
        plan = FaultPlan((FaultSpec(F.CRASH, shard_index=1, attempts=99),))
        resilience = ResilienceConfig(max_attempts=2, backoff_base=0.01)
        outcomes = list(
            engine.iter_outcomes(workers=0, faults=plan, resilience=resilience)
        )
        statuses = [o.status for o in outcomes]
        assert statuses.count(OUTCOME_QUARANTINED) == 1
        assert statuses[1] == OUTCOME_QUARANTINED
        # Every other shard still matches the reference.
        others = [f for f in fingerprints(outcomes) if f[0] != 1]
        assert others == [f for f in reference if f[0] != 1]

    def test_quarantine_report_names_the_triple(self, engine):
        plan = FaultPlan((FaultSpec(F.CRASH, shard_index=4, attempts=99),))
        resilience = ResilienceConfig(max_attempts=2, backoff_base=0.01)
        outcomes = list(
            engine.iter_outcomes(workers=0, faults=plan, resilience=resilience)
        )
        failure = outcomes[4].failure
        schema, template = engine.state.shard_coords(4)
        assert failure is not None
        assert failure.code == E_SHARD_CRASH
        assert failure.schema_name == schema.name
        assert failure.template_id == template.tid
        assert failure.seed_entropy == engine.state.seed
        assert failure.seed_spawn_key == (4,)
        assert failure.attempts == 2
        assert "injected crash" in failure.message
        # The report is JSON-ready for the manifest / CLI.
        record = failure.to_dict()
        assert record["seed"] == {"entropy": 3, "spawn_key": [4]}

    def test_skip_set_respected(self, engine, reference):
        outcomes = list(engine.iter_outcomes(workers=0, skip={0, 3}))
        assert [o.shard_index for o in outcomes] == [1, 2, 4, 5]
        assert fingerprints(outcomes) == [
            f for f in reference if f[0] not in {0, 3}
        ]


class TestSupervisedPool:
    def test_pool_matches_inline(self, engine, reference):
        outcomes = list(engine.iter_outcomes(workers=2))
        assert fingerprints(outcomes) == reference

    def test_worker_sigkill_redispatches_shard(self, engine, reference):
        # The worker running shard 1 SIGKILLs itself on the first
        # attempt; the supervisor must detect the death, replace the
        # worker, and re-dispatch — with a bit-identical result.
        plan = FaultPlan((FaultSpec(F.KILL, shard_index=1, attempts=1),))
        outcomes = list(
            engine.iter_outcomes(workers=2, faults=plan, resilience=FAST_RETRY)
        )
        assert all(o.ok for o in outcomes)
        assert outcomes[1].attempts == 2
        assert fingerprints(outcomes) == reference

    def test_hung_shard_times_out_and_quarantines(self, engine, reference):
        plan = FaultPlan(
            (FaultSpec(F.HANG, shard_index=0, attempts=99, hang_seconds=30),)
        )
        resilience = ResilienceConfig(
            shard_timeout=0.5, max_attempts=2, backoff_base=0.01
        )
        outcomes = list(
            engine.iter_outcomes(workers=1, faults=plan, resilience=resilience)
        )
        assert outcomes[0].status == OUTCOME_QUARANTINED
        assert outcomes[0].failure.code == E_SHARD_TIMEOUT
        # The poisoned shard never blocked the rest of the run.
        assert [o.status for o in outcomes[1:]] == [OUTCOME_OK] * 5
        assert fingerprints(outcomes)[1:] == reference[1:]

    def test_persistent_kill_quarantined_as_worker_death(self, engine):
        plan = FaultPlan((FaultSpec(F.KILL, shard_index=2, attempts=99),))
        resilience = ResilienceConfig(max_attempts=2, backoff_base=0.01)
        outcomes = list(
            engine.iter_outcomes(workers=1, faults=plan, resilience=resilience)
        )
        assert outcomes[2].status == OUTCOME_QUARANTINED
        assert outcomes[2].failure.code == E_WORKER_DIED
        assert sum(o.ok for o in outcomes) == 5

    def test_outcomes_arrive_in_shard_order(self, engine):
        order = [o.shard_index for o in engine.iter_outcomes(workers=2)]
        assert order == sorted(order)


class TestResilienceConfig:
    def test_backoff_growth_and_cap(self):
        config = ResilienceConfig(backoff_base=0.1, backoff_cap=0.3)
        assert config.backoff_delay(0) == 0.0
        assert config.backoff_delay(1) == pytest.approx(0.1)
        assert config.backoff_delay(2) == pytest.approx(0.2)
        assert config.backoff_delay(5) == pytest.approx(0.3)  # capped

    def test_validation(self):
        with pytest.raises(GenerationError):
            ResilienceConfig(shard_timeout=-1)
        with pytest.raises(GenerationError):
            ResilienceConfig(max_attempts=0)
        with pytest.raises(GenerationError):
            ResilienceConfig(backoff_base=-0.1)
