"""Tests for SQL canonicalization."""

from repro.sql import canonical_sql, normalize, parse


def same(a, b):
    return canonical_sql(parse(a)) == canonical_sql(parse(b))


class TestComparisonNormalization:
    def test_flip_literal_left(self):
        assert same(
            "SELECT * FROM t WHERE 18 < age",
            "SELECT * FROM t WHERE age > 18",
        )

    def test_flip_all_operators(self):
        for flipped, canonical in [
            ("18 <= age", "age >= 18"),
            ("18 > age", "age < 18"),
            ("18 = age", "age = 18"),
            ("18 <> age", "age <> 18"),
        ]:
            assert same(
                f"SELECT * FROM t WHERE {flipped}",
                f"SELECT * FROM t WHERE {canonical}",
            )

    def test_join_condition_ordered(self):
        assert same(
            "SELECT * FROM a, b WHERE b.y = a.x",
            "SELECT * FROM a, b WHERE a.x = b.y",
        )


class TestBooleanNormalization:
    def test_and_commutative(self):
        assert same(
            "SELECT * FROM t WHERE a = 1 AND b = 2",
            "SELECT * FROM t WHERE b = 2 AND a = 1",
        )

    def test_or_commutative(self):
        assert same(
            "SELECT * FROM t WHERE a = 1 OR b = 2",
            "SELECT * FROM t WHERE b = 2 OR a = 1",
        )

    def test_nested_and_flattened(self):
        assert same(
            "SELECT * FROM t WHERE (a = 1 AND b = 2) AND c = 3",
            "SELECT * FROM t WHERE a = 1 AND b = 2 AND c = 3",
        )

    def test_duplicate_conjuncts_collapsed(self):
        assert same(
            "SELECT * FROM t WHERE a = 1 AND a = 1",
            "SELECT * FROM t WHERE a = 1",
        )

    def test_double_negation(self):
        assert same(
            "SELECT * FROM t WHERE NOT (NOT (a = 1))",
            "SELECT * FROM t WHERE a = 1",
        )

    def test_not_comparison_folds(self):
        assert same(
            "SELECT * FROM t WHERE NOT (age > 18)",
            "SELECT * FROM t WHERE age <= 18",
        )

    def test_not_like_folds(self):
        assert same(
            "SELECT * FROM t WHERE NOT (name LIKE 'a%')",
            "SELECT * FROM t WHERE name NOT LIKE 'a%'",
        )

    def test_not_exists_folds(self):
        assert same(
            "SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM u)",
            "SELECT * FROM t WHERE NOT (EXISTS (SELECT * FROM u))",
        )


class TestMiscNormalization:
    def test_single_value_in_becomes_eq(self):
        assert same(
            "SELECT * FROM t WHERE x IN (5)",
            "SELECT * FROM t WHERE x = 5",
        )

    def test_in_values_sorted(self):
        assert same(
            "SELECT * FROM t WHERE x IN (3, 1, 2)",
            "SELECT * FROM t WHERE x IN (1, 2, 3)",
        )

    def test_redundant_qualifier_dropped(self):
        assert same(
            "SELECT t.name FROM t WHERE t.age = 1",
            "SELECT name FROM t WHERE age = 1",
        )

    def test_qualifier_kept_for_multiple_tables(self):
        assert not same(
            "SELECT a.x FROM a, b",
            "SELECT b.x FROM a, b",
        )

    def test_integral_float_collapsed(self):
        assert same(
            "SELECT * FROM t WHERE x = 18.0",
            "SELECT * FROM t WHERE x = 18",
        )

    def test_duplicate_select_items_collapsed(self):
        assert same("SELECT name, name FROM t", "SELECT name FROM t")

    def test_select_order_significant(self):
        assert not same("SELECT a, b FROM t", "SELECT b, a FROM t")

    def test_normalization_idempotent(self):
        query = parse(
            "SELECT t.name FROM t WHERE 18 < t.age AND (b = 2 OR a = 1)"
        )
        once = normalize(query)
        assert normalize(once) == once

    def test_subquery_normalized(self):
        assert same(
            "SELECT name FROM t WHERE age = (SELECT MAX(age) FROM t WHERE 1 = x)",
            "SELECT name FROM t WHERE age = (SELECT MAX(age) FROM t WHERE x = 1)",
        )

    def test_different_queries_stay_different(self):
        assert not same(
            "SELECT * FROM t WHERE age > 18",
            "SELECT * FROM t WHERE age >= 18",
        )
        assert not same(
            "SELECT COUNT(*) FROM t",
            "SELECT SUM(age) FROM t",
        )
