"""Tests for the runtime post-processor (§4.2, §5.1)."""

import pytest

from repro.runtime import PostProcessor
from repro.runtime.parameter_handler import Binding
from repro.sql import parse, to_sql


@pytest.fixture()
def post(geography):
    return PostProcessor(geography)


@pytest.fixture()
def patients_post(patients):
    return PostProcessor(patients)


class TestParsing:
    def test_unparseable_returns_none(self, post):
        assert post.process("garbage output !!") is None
        assert post.process(None) is None
        assert post.process("") is None

    def test_clean_query_unchanged(self, post):
        result = post.process("SELECT * FROM city")
        assert result.sql == "SELECT * FROM city"
        assert not result.repaired


class TestJoinExpansion:
    def test_direct_join_expanded(self, post):
        result = post.process(
            "SELECT city.city_name FROM @JOIN WHERE state.population > @STATE.POPULATION"
        )
        assert result.repaired
        assert set(result.query.from_tables) == {"city", "state"}
        # The FK condition was added.
        assert "city.state_name = state.state_name" in result.sql

    def test_multi_hop_join_adds_intermediate(self, post):
        result = post.process(
            "SELECT city.city_name FROM @JOIN WHERE mountain.height > @MOUNTAIN.HEIGHT"
        )
        assert set(result.query.from_tables) == {"city", "state", "mountain"}

    def test_placeholder_table_hints_used(self, post):
        # Only the placeholder mentions the second table.
        result = post.process(
            "SELECT city.city_name FROM @JOIN WHERE state_name = @STATE.STATE_NAME"
        )
        assert "state" in result.query.from_tables

    def test_unexpandable_join_kept(self, patients_post):
        # No qualified refs at all: repair cannot infer tables.
        result = patients_post.process("SELECT * FROM @JOIN WHERE age = @AGE")
        assert result.query.uses_join_placeholder


class TestFromRepair:
    def test_missing_table_added(self, post):
        result = post.process(
            "SELECT city.city_name FROM state WHERE city.population > @CITY.POPULATION"
        )
        assert set(result.query.from_tables) == {"city", "state"}
        assert result.repaired

    def test_unqualified_column_resolves_table(self, patients_post):
        # Model emitted the wrong table name entirely.
        result = patients_post.process("SELECT diagnosis FROM patients")
        assert result.query.from_tables == ("patients",)

    def test_wrong_single_table_replaced(self, post):
        # 'length' only exists in river.
        result = post.process("SELECT length FROM state")
        # state has no 'length'; river added via join path.
        assert "river" in result.query.from_tables


class TestPlaceholderRestoration:
    def test_exact_name_binding(self, patients_post):
        result = patients_post.process(
            "SELECT * FROM patients WHERE age = @AGE",
            [Binding(placeholder="AGE", value=30, column="age")],
        )
        assert result.sql == "SELECT * FROM patients WHERE age = 30"

    def test_column_segment_binding(self, post):
        result = post.process(
            "SELECT * FROM @JOIN WHERE state.population > @STATE.POPULATION",
            [Binding(placeholder="POPULATION", value=5000, column="population")],
        )
        assert "> 5000" in result.sql

    def test_positional_fallback(self, patients_post):
        result = patients_post.process(
            "SELECT * FROM patients WHERE diagnosis = @DIAGNOSIS",
            [Binding(placeholder="NUM", value="flu")],
        )
        assert "= 'flu'" in result.sql

    def test_low_high_bindings(self, patients_post):
        result = patients_post.process(
            "SELECT COUNT(*) FROM patients WHERE age BETWEEN @AGE.LOW AND @AGE.HIGH",
            [
                Binding(placeholder="AGE.LOW", value=20, column="age"),
                Binding(placeholder="AGE.HIGH", value=60, column="age"),
            ],
        )
        assert "BETWEEN 20 AND 60" in result.sql

    def test_unresolved_placeholder_kept_visible(self, patients_post):
        result = patients_post.process("SELECT * FROM patients WHERE age = @AGE", [])
        assert "@AGE" in result.sql

    def test_nested_query_bindings(self, patients_post):
        result = patients_post.process(
            "SELECT name FROM patients WHERE length_of_stay = "
            "(SELECT MAX(length_of_stay) FROM patients WHERE diagnosis = @DIAGNOSIS)",
            [Binding(placeholder="DIAGNOSIS", value="flu", column="diagnosis")],
        )
        assert "'flu'" in result.sql

    def test_each_binding_used_once(self, patients_post):
        result = patients_post.process(
            "SELECT * FROM patients WHERE age > @AGE OR length_of_stay > @LENGTH_OF_STAY",
            [
                Binding(placeholder="AGE", value=30, column="age"),
                Binding(placeholder="LENGTH_OF_STAY", value=7, column="length_of_stay"),
            ],
        )
        assert "age > 30" in result.sql
        assert "length_of_stay > 7" in result.sql


class TestEndToEndRepairedExecution:
    def test_expanded_join_executes(self, post, geography_db):
        from repro.db import execute

        result = post.process(
            "SELECT city.city_name FROM @JOIN WHERE state.population > @STATE.POPULATION",
            [Binding(placeholder="STATE.POPULATION", value=0, column="population")],
        )
        rows = execute(result.query, geography_db)
        assert rows  # every city joins to some state with population > 0


class TestRestorePlaceholders:
    """Direct coverage for the public ``restore_placeholders`` entry."""

    def test_empty_binding_map_leaves_placeholders_visible(self):
        from repro.runtime.postprocess import restore_placeholders

        query = parse("SELECT name FROM patients WHERE age > @AGE")
        restored = restore_placeholders(query, [])
        assert to_sql(restored) == "SELECT name FROM patients WHERE age > @AGE"

    def test_repeated_placeholder_consumes_bindings_in_order(self):
        from repro.runtime.postprocess import restore_placeholders

        query = parse(
            "SELECT name FROM patients WHERE age > @AGE AND age < @AGE"
        )
        restored = restore_placeholders(
            query,
            [
                Binding(placeholder="AGE", value=20, column="age"),
                Binding(placeholder="AGE", value=60, column="age"),
            ],
        )
        assert to_sql(restored) == (
            "SELECT name FROM patients WHERE age > 20 AND age < 60"
        )

    def test_repeated_placeholder_with_one_binding_partial(self):
        from repro.runtime.postprocess import restore_placeholders

        query = parse(
            "SELECT name FROM patients WHERE age > @AGE AND age < @AGE"
        )
        restored = restore_placeholders(
            query, [Binding(placeholder="AGE", value=20, column="age")]
        )
        # One slot restored, the other stays visible — never silently
        # reused.
        assert to_sql(restored) == (
            "SELECT name FROM patients WHERE age > 20 AND age < @AGE"
        )

    def test_placeholder_text_inside_string_literal_untouched(self):
        from repro.runtime.postprocess import restore_placeholders

        query = parse("SELECT name FROM patients WHERE name = '@AGE'")
        restored = restore_placeholders(
            query, [Binding(placeholder="AGE", value=30, column="age")]
        )
        # The literal merely *looks* like a placeholder; restoration
        # operates on AST Placeholder nodes, not on text.
        assert to_sql(restored) == "SELECT name FROM patients WHERE name = '@AGE'"

    def test_dotted_head_segments_match_column_binding(self):
        from repro.runtime.postprocess import restore_placeholders

        query = parse(
            "SELECT name FROM patients WHERE age > @PATIENTS.AGE"
        )
        restored = restore_placeholders(
            query, [Binding(placeholder="AGE", value=41, column="age")]
        )
        assert to_sql(restored) == "SELECT name FROM patients WHERE age > 41"

    def test_bare_placeholder_matches_dotted_binding(self):
        from repro.runtime.postprocess import restore_placeholders

        query = parse("SELECT name FROM patients WHERE age > @AGE")
        restored = restore_placeholders(
            query,
            [
                Binding(
                    placeholder="PATIENTS.AGE",
                    value=55,
                    table="patients",
                    column="age",
                )
            ],
        )
        assert to_sql(restored) == "SELECT name FROM patients WHERE age > 55"
