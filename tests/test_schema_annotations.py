"""Tests for the optional schema annotation pass."""

import pytest

from repro.errors import SchemaError
from repro.schema import (
    ColumnAnnotation,
    ForeignKey,
    Schema,
    Table,
    TableAnnotation,
    annotate,
    integer,
    text,
)


def base_schema():
    return Schema(
        "s",
        [Table("emp", [integer("emp_id", primary_key=True), text("nm"), integer("sal")])],
    )


class TestAnnotate:
    def test_table_annotation_applied(self):
        annotated = annotate(
            base_schema(), {"emp": TableAnnotation(annotation="employee")}
        )
        assert annotated.table("emp").annotation == "employee"

    def test_column_annotation_applied(self):
        annotated = annotate(
            base_schema(),
            {
                "emp": TableAnnotation(
                    columns={
                        "nm": ColumnAnnotation(annotation="name", synonyms=("full name",)),
                        "sal": ColumnAnnotation(annotation="salary", domain="salary"),
                    }
                )
            },
        )
        column = annotated.table("emp").column("nm")
        assert column.annotation == "name"
        assert column.synonyms == ("full name",)
        assert annotated.table("emp").column("sal").domain == "salary"

    def test_unannotated_elements_unchanged(self):
        annotated = annotate(
            base_schema(), {"emp": TableAnnotation(annotation="employee")}
        )
        assert annotated.table("emp").column("sal").annotation == "sal"

    def test_original_schema_untouched(self):
        schema = base_schema()
        annotate(schema, {"emp": TableAnnotation(annotation="employee")})
        assert schema.table("emp").annotation == "emp"

    def test_unknown_table_rejected(self):
        with pytest.raises(SchemaError):
            annotate(base_schema(), {"nope": TableAnnotation(annotation="x")})

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            annotate(
                base_schema(),
                {"emp": TableAnnotation(columns={"nope": ColumnAnnotation()})},
            )

    def test_primary_key_preserved(self):
        annotated = annotate(base_schema(), {})
        assert annotated.table("emp").column("emp_id").primary_key

    def test_foreign_keys_preserved(self):
        schema = Schema(
            "s2",
            [
                Table("a", [integer("a_id", primary_key=True), integer("b_id")]),
                Table("b", [integer("b_id", primary_key=True)]),
            ],
            [ForeignKey("a", "b_id", "b", "b_id")],
        )
        annotated = annotate(schema, {})
        assert len(annotated.foreign_keys) == 1
