"""Tests for the runtime parameter handler (constant anonymization)."""

import pytest

from repro.runtime import ParameterHandler


@pytest.fixture()
def handler(patients_db):
    return ParameterHandler(patients_db)


class TestNumericAnonymization:
    def test_number_becomes_column_placeholder(self, handler, patients_db):
        age = patients_db.rows("patients")[0]["age"]
        result = handler.anonymize(f"patients with age {age}")
        assert "@AGE" in result.nl
        assert result.bindings[0].value == age
        assert result.bindings[0].column == "age"

    def test_unknown_number_becomes_num(self, handler):
        result = handler.anonymize("groups with more than 100000 patients")
        assert "@NUM" in result.nl
        assert result.bindings[0].value == 100000

    def test_two_numbers_same_column_low_high(self, handler, patients_db):
        ages = sorted({r["age"] for r in patients_db.rows("patients")})
        low, high = ages[0], ages[-1]
        result = handler.anonymize(f"patients with age between {low} and {high}")
        assert "@AGE.LOW" in result.nl and "@AGE.HIGH" in result.nl
        by_name = {b.placeholder: b.value for b in result.bindings}
        assert by_name["AGE.LOW"] == low
        assert by_name["AGE.HIGH"] == high

    def test_low_high_order_independent(self, handler, patients_db):
        ages = sorted({r["age"] for r in patients_db.rows("patients")})
        low, high = ages[0], ages[-1]
        result = handler.anonymize(f"patients with age between {high} and {low}")
        # First token position gets HIGH because its value is larger.
        first = result.nl.split().index("@AGE.HIGH")
        second = result.nl.split().index("@AGE.LOW")
        assert first < second


class TestStringAnonymization:
    def test_exact_string_match(self, handler, patients_db):
        diagnosis = patients_db.rows("patients")[0]["diagnosis"]
        result = handler.anonymize(f"patients with {diagnosis}")
        assert "@DIAGNOSIS" in result.nl
        assert result.bindings[0].value == diagnosis

    def test_fuzzy_string_corrected(self, handler):
        result = handler.anonymize("patients with influenzza")
        assert "@DIAGNOSIS" in result.nl
        assert result.bindings[0].value == "influenza"

    def test_multiword_name_matched(self, handler, patients_db):
        name = patients_db.rows("patients")[0]["name"]  # "first last"
        result = handler.anonymize(f"show the age of {name}")
        assert "@NAME" in result.nl
        assert result.bindings[0].value == name

    def test_schema_words_not_anonymized(self, handler):
        result = handler.anonymize("show me the names of all patients")
        assert "@" not in result.nl

    def test_unmatchable_string_left_alone(self, handler):
        result = handler.anonymize("show qqqzzzxxx data")
        assert "qqqzzzxxx" in result.nl


class TestPreAnonymizedInput:
    def test_placeholders_pass_through(self, handler):
        result = handler.anonymize("patients with age @AGE")
        assert result.nl == "patients with age @AGE"
        assert result.bindings[0].placeholder == "AGE"

    def test_mixed_input(self, handler, patients_db):
        age = patients_db.rows("patients")[0]["age"]
        result = handler.anonymize(f"patients with age {age} and diagnosis @DIAGNOSIS")
        assert "@AGE" in result.nl and "@DIAGNOSIS" in result.nl
