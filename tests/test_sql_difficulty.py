"""Tests for the Spider-style difficulty classifier."""

import pytest

from repro.sql import Difficulty, classify, parse


@pytest.mark.parametrize(
    "sql,expected",
    [
        # easy: at most one component1, nothing else
        ("SELECT name FROM t", Difficulty.EASY),
        ("SELECT * FROM t WHERE age = 1", Difficulty.EASY),
        ("SELECT COUNT(*) FROM t", Difficulty.EASY),
        ("SELECT AVG(age) FROM t WHERE d = 'x'", Difficulty.EASY),
        # medium: two components or a couple of 'others'
        ("SELECT name, age FROM t WHERE age > 1", Difficulty.MEDIUM),
        ("SELECT d, COUNT(*) FROM t GROUP BY d", Difficulty.MEDIUM),
        ("SELECT name FROM t WHERE a = 1 AND b = 2", Difficulty.MEDIUM),
        ("SELECT * FROM a, b WHERE a.x = b.y", Difficulty.MEDIUM),
        # hard: 3 components or nesting
        (
            "SELECT name FROM t WHERE age = (SELECT MAX(age) FROM t)",
            Difficulty.HARD,
        ),
        (
            "SELECT d, AVG(age) FROM t WHERE x = 1 GROUP BY d ORDER BY AVG(age) DESC",
            Difficulty.HARD,
        ),
        # very hard: nesting plus other machinery
        (
            "SELECT d, COUNT(*) FROM t WHERE age > (SELECT AVG(age) FROM t) "
            "GROUP BY d ORDER BY COUNT(*) DESC LIMIT 3",
            Difficulty.VERY_HARD,
        ),
        (
            "SELECT a.g, AVG(b.x) FROM a, b WHERE a.id = b.id AND "
            "b.x > (SELECT AVG(x) FROM b) GROUP BY a.g",
            Difficulty.VERY_HARD,
        ),
    ],
)
def test_classification(sql, expected):
    assert classify(parse(sql)) is expected


def test_join_placeholder_counts_as_join():
    with_join = classify(parse("SELECT a.x FROM @JOIN WHERE b.y = @B.Y"))
    without = classify(parse("SELECT x FROM a WHERE y = @Y"))
    assert with_join is Difficulty.MEDIUM
    assert without is Difficulty.EASY


def test_or_and_like_add_difficulty():
    easy = classify(parse("SELECT * FROM t WHERE a = 1"))
    harder = classify(parse("SELECT * FROM t WHERE a = 1 OR b = 2"))
    assert easy is Difficulty.EASY
    assert harder is not Difficulty.EASY


def test_monotone_under_added_clauses():
    """Adding clauses never reduces the difficulty rank."""
    order = [
        Difficulty.EASY,
        Difficulty.MEDIUM,
        Difficulty.HARD,
        Difficulty.VERY_HARD,
    ]
    base = classify(parse("SELECT name FROM t WHERE a = 1"))
    more = classify(parse("SELECT name FROM t WHERE a = 1 GROUP BY name"))
    most = classify(
        parse(
            "SELECT name FROM t WHERE a = 1 GROUP BY name "
            "ORDER BY COUNT(*) DESC LIMIT 1"
        )
    )
    assert order.index(base) <= order.index(more) <= order.index(most)
