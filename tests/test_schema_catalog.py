"""Tests for the built-in schema catalog."""

import pytest

from repro.schema import SCHEMA_FACTORIES, all_schemas, load_schema


class TestCatalog:
    def test_load_every_schema(self):
        for name in SCHEMA_FACTORIES:
            schema = load_schema(name)
            assert schema.name == name
            assert len(schema.tables) >= 1

    def test_unknown_schema_raises(self):
        with pytest.raises(KeyError):
            load_schema("nonexistent")

    def test_all_schemas_count(self):
        assert len(all_schemas()) == len(SCHEMA_FACTORIES)

    def test_patients_is_single_table(self):
        schema = load_schema("patients")
        assert schema.table_names == ("patients",)
        columns = schema.table("patients").column_names
        assert "age" in columns and "diagnosis" in columns

    def test_multi_table_schemas_have_foreign_keys(self):
        for name in SCHEMA_FACTORIES:
            schema = load_schema(name)
            if len(schema.tables) > 1:
                assert schema.foreign_keys, f"{name} lacks foreign keys"

    def test_fk_endpoints_valid(self):
        for schema in all_schemas():
            for fk in schema.foreign_keys:
                assert fk.column in schema.table(fk.table)
                assert fk.ref_column in schema.table(fk.ref_table)

    def test_join_graph_connected(self):
        """Every multi-table schema must have a fully connected join graph,
        otherwise join templates cannot cover all tables."""
        import networkx as nx

        for schema in all_schemas():
            if len(schema.tables) > 1:
                assert nx.is_connected(schema.join_graph), schema.name

    def test_every_table_has_interesting_columns(self):
        """Templates need at least one non-pk column per table."""
        for schema in all_schemas():
            for table in schema.tables:
                non_pk = [c for c in table.columns if not c.primary_key]
                assert non_pk, f"{schema.name}.{table.name}"

    def test_domains_are_valid(self):
        from repro.schema.column import KNOWN_DOMAINS

        for schema in all_schemas():
            for table in schema.tables:
                for column in table.columns:
                    if column.domain:
                        assert column.domain in KNOWN_DOMAINS

    def test_schemas_are_fresh_instances(self):
        assert load_schema("patients") is not load_schema("patients")
