"""Integration tests for cross-domain learning on the Spider substitute.

Smaller-scale versions of the benchmark claims, so regressions in the
Table 2 mechanism are caught by the fast test suite, not only by the
benchmark run.
"""

import pytest

from repro.bench import spider_schemas, spider_test_workload, spider_train_pairs
from repro.core import GenerationConfig, TrainingPipeline
from repro.eval import evaluate
from repro.neural import CrossDomainModel, Seq2SeqModel
from repro.nlp.lemmatizer import lemmatize


@pytest.fixture(scope="module")
def setup():
    train_schemas, test_schemas = spider_schemas()
    all_schemas = train_schemas + test_schemas
    spider = [
        p.with_nl(lemmatize(p.nl), p.augmentation)
        for p in spider_train_pairs(pairs_per_schema=100, seed=100)
    ]
    workload = spider_test_workload(items_per_schema=12, seed=200)
    schemas_map = {s.name: s for s in all_schemas}
    return train_schemas, test_schemas, all_schemas, spider, workload, schemas_map


def train(pairs, all_schemas, epochs):
    model = CrossDomainModel(
        Seq2SeqModel(embed_dim=48, hidden_dim=96, epochs=epochs, seed=1),
        all_schemas,
    )
    model.fit(pairs)
    return model


class TestCrossDomainLearning:
    def test_dbpal_full_beats_baseline(self, setup):
        """The core Table 2 mechanism at small scale: target-schema
        synthesis yields a large accuracy gain on unseen schemas."""
        train_schemas, test_schemas, all_schemas, spider, workload, schemas_map = setup
        baseline = train(spider, all_schemas, epochs=12)
        base_acc = evaluate(
            baseline, workload, metric="exact", schemas=schemas_map
        ).accuracy

        synth = TrainingPipeline(
            all_schemas, GenerationConfig(size_slotfills=6), seed=10
        ).generate().subsample(6000, seed=0)
        full = train(spider + synth.pairs, all_schemas, epochs=6)
        full_acc = evaluate(
            full, workload, metric="exact", schemas=schemas_map
        ).accuracy

        assert full_acc > base_acc, (base_acc, full_acc)
        assert full_acc >= 0.15, full_acc

    def test_translations_target_correct_schema(self, setup):
        """Slot de-anonymization must emit the right schema's names."""
        train_schemas, test_schemas, all_schemas, spider, workload, schemas_map = setup
        synth = TrainingPipeline(
            all_schemas, GenerationConfig(size_slotfills=3), seed=11
        ).generate().subsample(2500, seed=0)
        model = train(spider + synth.pairs, all_schemas, epochs=5)
        flights = schemas_map["flights"]
        output = model.translate_for_schema("how many flight be there", flights)
        assert output is not None
        # Whatever the exact query, every identifier must come from the
        # flights schema.
        for token in output.split():
            if token.islower() and token.isidentifier():
                tables = set(flights.table_names)
                columns = {c.name for t in flights.tables for c in t.columns}
                assert token in tables | columns | {"x"}, output
