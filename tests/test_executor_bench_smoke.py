"""Tier-1 smoke run of the executor planning benchmark.

``benchmarks/run_executor.py`` is executed end-to-end in miniature
(``--smoke`` caps table sizes and repeats) so the benchmark script
cannot rot out from under the planner: it exercises the naive, planned,
and session-cached arms over both workloads and must emit a well-formed
record whose arms returned identical results.  No speedup assertion
here — that claim lives in ``benchmarks/test_perf_executor.py`` under
the ``executor`` marker.
"""

import json
import sys
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def test_smoke_run_writes_valid_record(tmp_path):
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        from run_executor import main
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))

    output = tmp_path / "BENCH_executor.json"
    exit_code = main(["--smoke", "--output", str(output)])
    assert exit_code == 0

    record = json.loads(output.read_text(encoding="utf-8"))
    assert record["benchmark"] == "executor_planning"
    assert set(record["workloads"]) == {"single_table", "join_heavy"}
    # The headline property: every arm returned bit-identical results.
    assert record["identical"] is True
    for workload in record["workloads"].values():
        assert workload["identical"] is True
        arms = workload["arms"]
        assert set(arms) == {"naive", "planned", "planned_cached"}
        # Identical workloads must see identical total row counts.
        assert arms["naive"]["rows"] == arms["planned"]["rows"]
        assert arms["naive"]["rows"] == arms["planned_cached"]["rows"]
    # The repeated workload must actually hit the session cache.
    cached = record["workloads"]["join_heavy"]["arms"]["planned_cached"]
    assert cached["cache_hits"] > 0
