"""End-to-end TranslationService behavior: statuses, degradation,
admission control, timeouts, async submission, and the CLI wiring.
"""

import json
import threading
import time

import pytest

from repro.neural.base import TranslationModel
from repro.runtime import DBPal
from repro.serving import ServingConfig, TranslationService


class ScriptedModel(TranslationModel):
    """A model whose behavior per call is scripted by the test."""

    def __init__(self) -> None:
        self.mode = "ok"  # ok | none | crash | block
        self.release = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def fit(self, pairs, **kwargs):
        pass

    def translate(self, nl):
        return "SELECT COUNT(*) FROM patients"

    def translate_batch(self, nls):
        with self._lock:
            self.calls += 1
        if self.mode == "crash":
            raise RuntimeError("injected model crash")
        if self.mode == "none":
            return [None] * len(nls)
        if self.mode == "block":
            self.release.wait(timeout=10.0)
        return [self.translate(nl) for nl in nls]


def make_service(patients_db, **config_kwargs) -> tuple[TranslationService, ScriptedModel]:
    model = ScriptedModel()
    defaults = dict(workers=2, batch_window=0.002, request_timeout=5.0)
    defaults.update(config_kwargs)
    service = TranslationService(
        DBPal(patients_db, model), ServingConfig(**defaults)
    )
    return service, model


# Distinct questions (distinct anonymized keys) for cache-busting.
QUESTIONS = [
    "what is the average age of all patients",
    "how many patients are there",
    "show the name of every patient",
    "what is the maximum length of stay of all patients",
    "list the diagnosis of each patient",
    "what is the minimum age of all patients",
]


class TestHappyPath:
    def test_ok_response_shape(self, patients_db):
        service, _model = make_service(patients_db)
        with service:
            response = service.translate(QUESTIONS[0])
        assert response.ok and response.status == "ok"
        assert response.source == "model"
        assert response.sql == "SELECT COUNT(*) FROM patients"
        assert response.failure is None
        assert response.latency > 0
        assert response.request_id >= 1
        payload = response.to_dict()
        assert payload["status"] == "ok" and payload["failure"] is None
        json.dumps(payload)  # must be JSON-serializable

    def test_untrained_dbpal_rejected(self, patients_db):
        from repro.errors import ServingError

        with pytest.raises(ServingError):
            TranslationService(DBPal(patients_db))

    def test_submit_is_asynchronous(self, patients_db):
        service, _model = make_service(patients_db)
        with service:
            futures = [service.submit(q) for q in QUESTIONS[:4]]
            responses = [f.result(timeout=10.0) for f in futures]
        assert [r.ok for r in responses] == [True] * 4
        assert len({r.request_id for r in responses}) == 4

    def test_query_executes_rows(self, patients_db):
        service, _model = make_service(patients_db)
        with service:
            rows = service.query(QUESTIONS[1], max_rows=5)
        assert rows and "COUNT(*)" in rows[0]

    def test_perf_stages_recorded(self, patients_db):
        service, _model = make_service(patients_db)
        with service:
            service.translate(QUESTIONS[0])
            service.translate(QUESTIONS[0])  # cache hit: no model stage
        stages = service.stats()["stages"]
        assert stages["preprocess"]["calls"] == 2
        assert stages["model_batch"]["items"] == 1
        assert stages["postprocess"]["calls"] == 2


class TestGracefulDegradation:
    def test_model_crash_yields_structured_degraded_response(self, patients_db):
        service, model = make_service(patients_db, failure_threshold=100)
        model.mode = "crash"
        with service:
            response = service.translate("show the age of all patients")
        # Keyword fallback produced runnable SQL; no exception escaped.
        assert response.status == "degraded"
        assert response.source == "fallback"
        assert response.result is not None and "FROM patients" in response.sql
        assert service.metrics.counter("degraded") == 1
        assert service.metrics.counter("model.failures") == 1

    def test_unmatchable_question_yields_structured_error(self, patients_db):
        service, model = make_service(patients_db, failure_threshold=100)
        model.mode = "crash"
        with service:
            response = service.translate("colorless green ideas sleep furiously")
        assert response.status == "error"
        assert response.failure is not None
        assert response.failure.code == "model_unavailable"

    def test_stale_cache_served_when_model_down(self, patients_db):
        service, model = make_service(
            patients_db, cache_ttl=0.01, failure_threshold=100
        )
        with service:
            fresh = service.translate(QUESTIONS[0])
            assert fresh.ok
            time.sleep(0.03)  # let the entry expire
            model.mode = "crash"
            degraded = service.translate(QUESTIONS[0])
        assert degraded.status == "degraded"
        assert degraded.source == "cache"
        assert degraded.sql == fresh.sql

    def test_model_none_output_falls_back(self, patients_db):
        service, model = make_service(patients_db)
        model.mode = "none"
        with service:
            response = service.translate("show the age of all patients")
        assert response.status == "degraded" and response.source == "fallback"
        # Not a model outage: breaker stays closed, not retryable-coded.
        assert service.breaker.state == "closed"


class TestAdmissionControl:
    def test_rate_limit_rejects_structured(self, patients_db):
        service, _model = make_service(patients_db, rate_limit=0.001, burst=2)
        with service:
            statuses = [service.translate(QUESTIONS[i % 3]).status for i in range(4)]
        assert statuses[:2] == ["ok", "ok"]
        assert statuses[2:] == ["rejected", "rejected"]
        stats = service.stats()
        assert stats["counters"]["status.rejected"] == 2

    def test_queue_full_sheds_structured(self, patients_db):
        service, model = make_service(
            patients_db,
            workers=1,
            max_batch_size=1,
            queue_capacity=1,
            request_timeout=10.0,
        )
        model.mode = "block"

        def wait_for(condition):
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not condition():
                time.sleep(0.002)
            assert condition()

        with service:
            first = service.submit(QUESTIONS[0])
            # The single worker dequeues the first request and blocks
            # inside the model ...
            wait_for(lambda: model.calls == 1)
            second = service.submit(QUESTIONS[1])
            # ... so the second parks in the queue, filling it ...
            wait_for(service._batcher._queue.full)
            # ... and a third has nowhere to go: shed, not queued.
            overflow = service.translate(QUESTIONS[2])
            model.release.set()
            results = [f.result(timeout=10.0) for f in (first, second)]
        assert overflow.status == "rejected"
        assert overflow.failure is not None and overflow.failure.code == "queue_full"
        assert all(r.ok for r in results)
        assert service.metrics.counter("shed.queue_full") == 1

    def test_timeout_returns_structured_response(self, patients_db):
        service, model = make_service(patients_db, request_timeout=0.05)
        model.mode = "block"
        with service:
            response = service.translate(QUESTIONS[0])
            model.release.set()
        assert response.status == "timeout"
        assert response.failure is not None and response.failure.code == "timeout"
        assert service.metrics.counter("timeouts") == 1


class TestStatsSnapshot:
    def test_snapshot_sections(self, patients_db):
        service, _model = make_service(patients_db)
        with service:
            for question in QUESTIONS[:3]:
                service.translate(question)
            snap = service.stats()
        assert snap["requests_total"] == 3
        assert snap["qps"] > 0
        assert snap["latency"]["p50"] > 0
        assert snap["breaker"]["state"] == "closed"
        assert snap["cache"]["size"] == 3
        assert snap["config"]["workers"] == 2
        assert "preprocess" in snap["stages"]
        json.dumps(snap)  # the whole snapshot must be JSON-ready

    def test_idle_service_snapshots_cleanly(self, patients_db):
        service, _model = make_service(patients_db)
        snap = service.stats()  # never started, zero requests
        assert snap["requests_total"] == 0
        assert snap["qps"] == 0.0
        assert snap["cache_hit_rate"] == 0.0
        json.dumps(snap)


class TestCounterAccounting:
    """The counter-reconciliation satellite (ISSUE 8).

    The seed BENCH showed ``batches_total: 5`` while the histogram
    summed to 7 items and ``model.calls`` read 7 — three numbers
    describing one batcher with no recorded relationship.  ``stats()``
    now carries explicit identities tying every counter to its
    neighbors; these tests regress them over workloads exercising
    every path (hit, miss, coalesce, crash, shed, disabled cache).
    """

    @staticmethod
    def _assert_consistent(snap):
        accounting = snap["accounting"]
        assert accounting["consistent"], accounting["identities"]
        return accounting

    def test_identities_after_mixed_workload(self, patients_db):
        service, _model = make_service(patients_db)
        with service:
            for question in QUESTIONS:
                service.translate(question)
            for question in QUESTIONS:  # pure cache hits
                service.translate(question)
            # A concurrent burst on one cold key: coalescing + late hits.
            futures = [
                service.submit("how many patients have length of stay 3")
                for _ in range(8)
            ]
            for future in futures:
                future.result(timeout=10.0)
            snap = service.stats()
        accounting = self._assert_consistent(snap)
        # The exact BENCH regression: batch histogram vs model counters.
        counters = snap["counters"]
        histogram = snap["batch_size_histogram"]
        assert sum(int(s) * n for s, n in histogram.items()) == counters[
            "model.batched_inputs"
        ]
        assert sum(histogram.values()) == counters["batches_total"]
        assert counters["model.batched_inputs"] == counters["model.calls"]
        # Every cache miss is tied to a terminal outcome.
        assert counters["cache.misses"] == (
            counters.get("flights.opened", 0)
            + counters.get("singleflight.coalesced", 0)
            + counters.get("cache.late_hits", 0)
        )
        assert len(accounting["identities"]) >= 8

    def test_identities_with_model_failures(self, patients_db):
        service, model = make_service(patients_db, failure_threshold=2)
        model.mode = "crash"
        with service:
            for question in QUESTIONS:
                service.translate(question)
            snap = service.stats()
        self._assert_consistent(snap)
        counters = snap["counters"]
        # Failed inputs + breaker short-circuits cover every batched
        # input; model.calls stays 0.
        assert counters.get("model.calls", 0) == 0
        assert counters["model.batched_inputs"] == (
            counters.get("model.failed_inputs", 0)
            + counters.get("breaker.short_circuited", 0)
        )

    def test_identities_with_cache_disabled(self, patients_db):
        service, _model = make_service(patients_db, cache_capacity=0)
        with service:
            for question in QUESTIONS[:4]:
                service.translate(question)
            snap = service.stats()
        accounting = self._assert_consistent(snap)
        # Cache identities are simply absent, not trivially true.
        names = [item["identity"] for item in accounting["identities"]]
        assert not any("cache_object" in name for name in names)

    def test_identities_survive_queue_shedding(self, patients_db):
        service, model = make_service(
            patients_db,
            workers=1,
            max_batch_size=1,
            queue_capacity=1,
            request_timeout=10.0,
        )
        model.mode = "block"
        with service:
            first = service.submit(QUESTIONS[0])
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and model.calls < 1:
                time.sleep(0.002)
            second = service.submit(QUESTIONS[1])
            deadline = time.monotonic() + 5.0
            while (
                time.monotonic() < deadline
                and not service._batcher._queue.full()
            ):
                time.sleep(0.002)
            shed = service.translate(QUESTIONS[2])
            model.release.set()
            first.result(timeout=10.0)
            second.result(timeout=10.0)
            snap = service.stats()
        assert shed.status == "rejected"
        self._assert_consistent(snap)
        assert snap["counters"]["shed.queue_full"] == 1


class TestStageTimings:
    """Busy-vs-wall per-stage timing satellite (ISSUE 8).

    The seed BENCH reported ``preprocess: 5.99s`` inside a 0.94s run —
    correct (summed across 8 client threads) but unlabeled.  Stage
    reports now carry both numbers, told apart explicitly, plus a
    legend in the snapshot.
    """

    def test_stages_report_busy_and_wall(self, patients_db):
        service, _model = make_service(patients_db)
        with service:
            service.translate(QUESTIONS[0])
            time.sleep(0.05)
            service.translate(QUESTIONS[1])
            snap = service.stats()
        for stats in snap["stages"].values():
            assert stats["busy_seconds"] == stats["seconds"]  # legacy alias
            assert stats["wall_seconds"] >= 0.0
        # Two sequential preprocess calls 50ms apart: the wall span
        # includes the idle gap, the busy sum does not.
        preprocess = snap["stages"]["preprocess"]
        assert preprocess["calls"] == 2
        assert preprocess["wall_seconds"] >= 0.05
        assert preprocess["wall_seconds"] > preprocess["busy_seconds"]

    def test_busy_exceeds_wall_under_concurrency(self, patients_db):
        from repro.perf.instrumentation import PerfRecorder

        recorder = PerfRecorder()
        barrier = threading.Barrier(4)

        def worker() -> None:
            barrier.wait()
            with recorder.stage("hot"):
                time.sleep(0.05)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report = recorder.report()["hot"]
        # 4 overlapping 50ms spans: ~200ms busy inside a ~50ms wall.
        assert report["busy_seconds"] >= 0.15
        assert report["wall_seconds"] < report["busy_seconds"]

    def test_snapshot_carries_stage_legend(self, patients_db):
        service, _model = make_service(patients_db)
        snap = service.stats()
        assert set(snap["stages_legend"]) == {"busy_seconds", "wall_seconds"}
        assert "summed across" in snap["stages_legend"]["busy_seconds"]


class TestModelReload:
    def test_reload_swaps_model_atomically(self, patients_db):
        service, _model = make_service(patients_db)
        replacement = ScriptedModel()
        with service:
            before = service.translate(QUESTIONS[0])
            assert before.ok
            service.reload_model(replacement)
            # A *new* key must be served by the new model (the old
            # key's cache entry stays valid — outputs, not state).
            after = service.translate(QUESTIONS[1])
        assert after.ok
        assert replacement.calls == 1
        assert service.metrics.counter("model.reloads") == 1

    def test_reload_rejects_none(self, patients_db):
        from repro.errors import ServingError

        service, _model = make_service(patients_db)
        with pytest.raises(ServingError):
            service.reload_model(None)


class TestCliServe(object):
    def test_serve_command_stdin(self, tmp_path, monkeypatch, capsys):
        import io

        from repro import GenerationConfig, RetrievalModel, TrainingPipeline
        from repro.cli import main
        from repro.neural import save_model
        from repro.schema import patients_schema

        # RetrievalModel isn't checkpointable; train + save a tiny seq2seq.
        from repro.neural import Seq2SeqModel

        corpus = TrainingPipeline(
            patients_schema(), GenerationConfig(size_slotfills=2), seed=0
        ).generate()
        model = Seq2SeqModel(embed_dim=8, hidden_dim=12, epochs=1, seed=0)
        model.fit(corpus.subsample(80, seed=0).pairs)
        checkpoint = tmp_path / "ckpt.npz"
        save_model(model, str(checkpoint))

        stats_path = tmp_path / "stats.json"
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("show me the names of all patients\n\n"),
        )
        code = main(
            [
                "serve",
                "patients",
                "--checkpoint",
                str(checkpoint),
                "--stats",
                "--stats-json",
                str(stats_path),
                "--workers",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SQL:" in out and "serving stats" in out
        written = json.loads(stats_path.read_text())
        assert written["requests_total"] == 1
        assert written["breaker"]["state"] in ("closed", "open", "half_open")
