"""Oracle tests for :mod:`repro.analysis.equivalence`.

The mutation suite at the bottom seeds one defect per L6xx diagnostic
code and asserts the *exact* catch: the intended code fires, and none
of the codes reserved for other defect classes fire spuriously.
"""

import pytest

from repro.analysis.equivalence import (
    DISTINCT,
    EQUIVALENT,
    UNKNOWN,
    VERDICTS,
    EquivalenceOracle,
    check_equivalence,
)
from repro.db import populate
from repro.schema import load_schema
from repro.sql.equivalence import EquivalenceChecker
from repro.sql.parser import parse

pytestmark = pytest.mark.canonical


@pytest.fixture(scope="module")
def patients():
    return load_schema("patients")


@pytest.fixture(scope="module")
def oracle(patients):
    # Shared probe arms: building databases once keeps the module fast.
    databases = [
        populate(patients, rows_per_table=25, seed=seed) for seed in (0, 17)
    ]
    return EquivalenceOracle(patients, databases=databases, seeds=(0, 17))


def codes(result):
    return {d.code for d in result.report.sorted()}


class TestVerdicts:
    def test_verdict_vocabulary(self):
        assert VERDICTS == (EQUIVALENT, DISTINCT, UNKNOWN)

    def test_equivalent_from_canonical_form(self, oracle):
        result = oracle.check(
            parse("SELECT name FROM patients WHERE age = 20 OR age = 30"),
            parse("SELECT name FROM patients WHERE age IN (30, 20)"),
        )
        assert result.verdict == EQUIVALENT
        assert result.is_equivalent
        assert result.left_canonical == result.right_canonical
        # Proof is static: no differential probe may run.
        assert result.probes == []

    def test_distinct_from_counterexample(self, oracle):
        result = oracle.check(
            parse("SELECT name FROM patients WHERE age >= 0"),
            parse("SELECT name FROM patients WHERE age < 0"),
        )
        assert result.verdict == DISTINCT
        assert not result.is_equivalent
        assert any(p.executed and p.agreed is False for p in result.probes)

    def test_unknown_when_probes_agree(self, oracle):
        # Both match zero probe rows, so every probe agrees — but
        # agreement is evidence, not proof.
        result = oracle.check(
            parse("SELECT name FROM patients WHERE name = 'zz_nobody'"),
            parse("SELECT name FROM patients WHERE name = 'zz_phantom'"),
        )
        assert result.verdict == UNKNOWN
        assert all(p.executed and p.agreed for p in result.probes)

    def test_unknown_never_upgraded(self, oracle):
        """Probe agreement on every arm must still yield UNKNOWN."""
        result = oracle.check(
            parse("SELECT name FROM patients WHERE name = 'zz_nobody'"),
            parse("SELECT name FROM patients WHERE name = 'zz_phantom'"),
        )
        assert result.verdict == UNKNOWN
        assert len(result.probes) == 2

    def test_to_dict_round_trip(self, oracle):
        result = oracle.check(
            parse("SELECT name FROM patients WHERE age >= 0"),
            parse("SELECT name FROM patients WHERE age < 0"),
        )
        record = result.to_dict()
        assert record["verdict"] == DISTINCT
        assert record["left_canonical"] and record["right_canonical"]
        assert all("seed" in p for p in record["probes"])
        assert all("code" in d for d in record["diagnostics"])

    def test_check_equivalence_convenience(self, patients):
        result = check_equivalence(
            parse("SELECT name FROM patients"),
            parse("SELECT name FROM patients"),
            patients,
            seeds=(0,),
            rows_per_table=5,
        )
        assert result.verdict == EQUIVALENT

    def test_checker_verdict_three_way(self, patients, oracle):
        # EquivalenceChecker.verdict mirrors the oracle lattice: the
        # probe-agreement acceptance of ``equivalent`` is not carried
        # over.
        checker = EquivalenceChecker(databases=oracle._probe_databases())
        a = parse("SELECT name FROM patients WHERE name = 'zz_nobody'")
        b = parse("SELECT name FROM patients WHERE name = 'zz_phantom'")
        assert checker.verdict(a, b, patients) == UNKNOWN
        assert checker.equivalent(a, b)  # the looser Patients protocol
        assert (
            checker.verdict(
                parse("SELECT name FROM patients WHERE age BETWEEN 1 AND 2"),
                parse("SELECT name FROM patients WHERE age >= 1 AND age <= 2"),
                patients,
            )
            == EQUIVALENT
        )
        assert (
            checker.verdict(
                parse("SELECT name FROM patients WHERE age >= 0"),
                parse("SELECT name FROM patients WHERE age < 0"),
                patients,
            )
            == DISTINCT
        )


class TestMutationSuite:
    """One seeded defect per L6xx code, asserting the exact catch."""

    def test_L601_equivalence_proof(self, oracle):
        result = oracle.check(
            parse("SELECT name FROM patients WHERE age BETWEEN 20 AND 30"),
            parse("SELECT name FROM patients WHERE age >= 20 AND age <= 30"),
        )
        found = codes(result)
        assert "L601" in found
        assert not found & {"L602", "L603", "L604", "L606"}

    def test_L602_differential_counterexample(self, oracle):
        result = oracle.check(
            parse("SELECT name FROM patients WHERE age >= 0"),
            parse("SELECT name FROM patients WHERE age < 0"),
        )
        found = codes(result)
        assert "L602" in found
        assert not found & {"L601", "L603", "L604", "L606"}
        [diag] = [d for d in result.report.sorted() if d.code == "L602"]
        assert diag.fix is not None
        assert diag.fix.kind == "differential_counterexample"

    def test_L603_agreement_without_proof(self, oracle):
        result = oracle.check(
            parse("SELECT name FROM patients WHERE name = 'zz_nobody'"),
            parse("SELECT name FROM patients WHERE name = 'zz_phantom'"),
        )
        found = codes(result)
        assert "L603" in found
        assert not found & {"L601", "L602", "L604", "L606"}

    def test_L604_probe_skipped_on_execution_failure(self, oracle):
        # ``nosuch`` parses fine but is outside the schema, so the
        # probe executor raises; every arm is skipped and nothing can
        # agree or diverge.
        result = oracle.check(
            parse("SELECT nosuch FROM patients"),
            parse("SELECT name FROM patients"),
        )
        found = codes(result)
        assert "L604" in found
        assert not found & {"L601", "L602", "L603", "L606"}
        assert result.verdict == UNKNOWN
        assert all(not p.executed for p in result.probes)

    def test_L605_canonicalization_rewrote_query(self, oracle):
        # BETWEEN is rewritten to a chained comparison: canonical form
        # differs from the normalized form, so L605 must fire for the
        # left side (and only an informational code — the verdict path
        # is L601, equivalence).
        result = oracle.check(
            parse("SELECT name FROM patients WHERE age BETWEEN 20 AND 30"),
            parse("SELECT name FROM patients WHERE age >= 20 AND age <= 30"),
        )
        found = codes(result)
        assert "L605" in found
        [diag] = [d for d in result.report.sorted() if d.code == "L605"]
        assert diag.fix is not None
        assert diag.fix.kind == "use_canonical_form"

    def test_L605_absent_when_already_canonical(self, oracle):
        result = oracle.check(
            parse("SELECT name FROM patients"),
            parse("SELECT name FROM patients"),
        )
        assert "L605" not in codes(result)

    def test_L606_unresolvable_placeholder(self, oracle):
        result = oracle.check(
            parse("SELECT name FROM patients WHERE age > @NOSUCH"),
            parse("SELECT name FROM patients WHERE age < @ALSONOT"),
        )
        found = codes(result)
        assert "L606" in found
        assert not found & {"L601", "L602", "L603", "L604"}
        assert result.verdict == UNKNOWN
        assert result.probes and not result.probes[0].executed
        [diag] = [
            d for d in result.report.sorted() if d.code == "L606"
        ][:1]
        assert diag.fix is not None
        assert diag.fix.kind == "bind_placeholder"

    def test_resolvable_placeholders_probe_normally(self, oracle):
        # @AGE binds to a real constant on both sides, so the probes
        # run; identical spellings canonicalize together first.
        result = oracle.check(
            parse("SELECT name FROM patients WHERE age > @AGE"),
            parse("SELECT name FROM patients WHERE age > @PATIENTS.AGE"),
        )
        assert result.verdict == EQUIVALENT
