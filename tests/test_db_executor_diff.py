"""Differential property tests: naive ≡ planned ≡ columnar execution.

The planner (:mod:`repro.db.planner`) claims bit-identical results —
row values *and* row order — to the naive cross-product executor on
every query both arms can run, and the vectorized columnar engine
(:mod:`repro.db.vectorized`) claims the same against the planned row
arm even when *forced* on tables below its row-count threshold.  This
suite checks those claims over:

* the **seed corpora** of two schemas (every distinct canonical query
  the training pipeline synthesizes, with ``@JOIN`` expanded through
  the post-processor and placeholders bound to constants that actually
  occur in the database), and
* **randomized databases**: every built-in schema populated at several
  seeds, probed with join/filter/aggregate queries derived from its
  foreign keys and columns.

Divergence rules: when naive execution raises ``ExecutionError`` the
planner may either raise too or succeed (it short-circuits predicates
the naive arm evaluates eagerly and survives cross products the naive
guard refuses); it must never crash with a non-Repro exception.
"""

from __future__ import annotations

import pytest

from repro.db import populate
from repro.db.executor import execute
from repro.db.planner import ExecutorSession, execute_planned
from repro.errors import ExecutionError, ReproError
from repro.runtime.postprocess import PostProcessor, _transform_query
from repro.schema import SCHEMA_FACTORIES, load_schema
from repro.sql.normalize import canonical_sql
from repro.sql.parser import parse
from repro.sql.printer import to_sql


class _ConstantBinder:
    """Duck-typed resolver: placeholders → constants present in the DB."""

    def __init__(self, database):
        self._database = database

    def resolve(self, placeholder):
        schema = self._database.schema
        column = placeholder.column
        table = placeholder.table
        if table is None or table not in schema:
            candidates = schema.tables_with_column(column)
            if not candidates:
                return None
            table = candidates[0].name
        if column not in schema.table(table):
            return None
        values = [
            v
            for v in self._database.column_values(table, column)
            if v is not None
        ]
        return values[0] if values else None


def corpus_queries(corpus, database):
    """Distinct executable queries: @JOIN expanded, constants bound."""
    post = PostProcessor(database.schema)
    binder = _ConstantBinder(database)
    queries, seen = [], set()
    for pair in corpus.pairs:
        processed = post.process(to_sql(pair.sql))
        if processed is None:
            continue
        query = _transform_query(processed.query, binder)
        key = canonical_sql(query)
        if key not in seen:
            seen.add(key)
            queries.append(query)
    return queries


def assert_arms_agree(query, database, session=None, columnar_session=None):
    """Planned and forced-columnar output must equal naive output
    whenever naive succeeds; the arms must agree on errors otherwise."""
    try:
        expected = execute(query, database)
    except ExecutionError:
        # Naive refused (guard / eager predicate): the planner may
        # succeed, but any failure must stay inside the Repro
        # exception hierarchy — and the columnar arm must mirror the
        # planned arm exactly, success or error message alike.
        try:
            planned = execute_planned(query, database)
        except ReproError as exc:
            planned, planned_error = None, str(exc)
        else:
            planned_error = None
        try:
            columnar = execute_planned(query, database, columnar=True)
        except ReproError as exc:
            columnar, columnar_error = None, str(exc)
        else:
            columnar_error = None
        assert columnar == planned, canonical_sql(query)
        assert columnar_error == planned_error, canonical_sql(query)
        return False
    assert execute_planned(query, database) == expected, canonical_sql(query)
    assert (
        execute_planned(query, database, columnar=True) == expected
    ), canonical_sql(query)
    if session is not None:
        assert session.execute(query) == expected, canonical_sql(query)
    if columnar_session is not None:
        assert columnar_session.execute(query) == expected, canonical_sql(query)
    return True


# ----------------------------------------------------------------------
# Seed-corpus differentials
# ----------------------------------------------------------------------


def test_patients_corpus_differential(patients_corpus, patients_db):
    queries = corpus_queries(patients_corpus, patients_db)
    assert len(queries) > 50
    session = ExecutorSession(patients_db)
    columnar_session = ExecutorSession(patients_db, columnar=True)
    compared = sum(
        assert_arms_agree(query, patients_db, session, columnar_session)
        for query in queries
    )
    # The overwhelming majority of corpus queries must actually execute
    # on all arms — the differential is vacuous otherwise.
    assert compared >= len(queries) * 0.9
    # Forcing columnar on a 30-row database must actually vectorize
    # work, not silently fall back on every step.
    assert columnar_session.columnar_vectorized_steps > 0


def test_geography_corpus_differential(geography_corpus, geography_db):
    queries = corpus_queries(geography_corpus, geography_db)
    assert len(queries) > 50
    session = ExecutorSession(geography_db)
    columnar_session = ExecutorSession(geography_db, columnar=True)
    compared = sum(
        assert_arms_agree(query, geography_db, session, columnar_session)
        for query in queries
    )
    assert compared >= len(queries) * 0.9
    assert columnar_session.columnar_vectorized_steps > 0


def test_geography_corpus_has_real_joins(geography_corpus, geography_db):
    queries = corpus_queries(geography_corpus, geography_db)
    joins = [q for q in queries if len(q.from_tables) > 1]
    assert joins, "corpus differential never exercised a join"


# ----------------------------------------------------------------------
# Randomized schemas and databases
# ----------------------------------------------------------------------


def schema_probe_queries(database):
    """Join/filter/aggregate probes derived from the schema itself."""
    schema = database.schema
    queries = []
    for table in schema.tables:
        first = table.column_names[0]
        numeric = next((c.name for c in table.columns if c.is_numeric), None)
        queries.append(parse(f"SELECT * FROM {table.name}"))
        values = [
            v for v in database.column_values(table.name, first) if v is not None
        ]
        if values:
            constant = values[len(values) // 2]
            rendered = f"'{constant}'" if isinstance(constant, str) else constant
            queries.append(
                parse(
                    f"SELECT {first} FROM {table.name} WHERE {first} = {rendered}"
                )
            )
        if numeric:
            queries.append(
                parse(f"SELECT COUNT(*) FROM {table.name} WHERE {numeric} > 0")
            )
            queries.append(
                parse(
                    f"SELECT {first}, {numeric} FROM {table.name} "
                    f"ORDER BY {numeric} DESC, {first} LIMIT 7"
                )
            )
    for fk in schema.foreign_keys:
        join = (
            f"{fk.table}.{fk.column} = {fk.ref_table}.{fk.ref_column}"
        )
        left_col = f"{fk.table}.{schema.table(fk.table).column_names[0]}"
        right_col = (
            f"{fk.ref_table}.{schema.table(fk.ref_table).column_names[0]}"
        )
        queries.append(
            parse(
                f"SELECT {left_col}, {right_col} "
                f"FROM {fk.table}, {fk.ref_table} WHERE {join}"
            )
        )
        queries.append(
            parse(
                f"SELECT {right_col}, COUNT(*) "
                f"FROM {fk.table}, {fk.ref_table} WHERE {join} "
                f"GROUP BY {right_col} ORDER BY {right_col}"
            )
        )
    return queries


@pytest.mark.parametrize("schema_name", sorted(SCHEMA_FACTORIES))
@pytest.mark.parametrize("seed", [0, 17])
def test_randomized_database_differential(schema_name, seed):
    database = populate(load_schema(schema_name), rows_per_table=25, seed=seed)
    session = ExecutorSession(database)
    columnar_session = ExecutorSession(database, columnar=True)
    for query in schema_probe_queries(database):
        assert_arms_agree(query, database, session, columnar_session)
