"""Failure-injection tests: the runtime must survive broken model output.

Real models emit truncated, token-dropped, or shuffled SQL.  The
post-processor and evaluation harness must never crash on such input —
they either repair it or report a clean failure (None / incorrect).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GenerationConfig, Generator
from repro.eval import exact_match, semantic_match
from repro.neural.base import sql_to_tokens, tokens_to_sql
from repro.runtime import PostProcessor
from repro.schema import load_schema, patients_schema
from repro.sql import parse

_GEO = load_schema("geography")
_PATIENTS = patients_schema()
_POOL = [
    p.sql_text
    for p in Generator(_GEO, GenerationConfig(size_slotfills=3), seed=21).generate()
] + [
    p.sql_text
    for p in Generator(_PATIENTS, GenerationConfig(size_slotfills=3), seed=22).generate()
]


def _corrupt(sql_text: str, rng: np.random.Generator) -> str:
    tokens = sql_to_tokens(sql_text)
    mode = rng.integers(4)
    if mode == 0 and len(tokens) > 2:  # truncate
        cut = int(rng.integers(1, len(tokens)))
        tokens = tokens[:cut]
    elif mode == 1 and len(tokens) > 2:  # drop a random token
        drop = int(rng.integers(len(tokens)))
        tokens = tokens[:drop] + tokens[drop + 1 :]
    elif mode == 2 and len(tokens) > 3:  # swap two adjacent tokens
        i = int(rng.integers(len(tokens) - 1))
        tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]
    else:  # duplicate a token
        i = int(rng.integers(len(tokens)))
        tokens = tokens[: i + 1] + [tokens[i]] + tokens[i + 1 :]
    return tokens_to_sql(tokens)


class TestPostProcessorRobustness:
    @given(st.integers(0, 10_000))
    @settings(max_examples=150, deadline=None)
    def test_never_crashes_on_corrupted_output(self, seed):
        rng = np.random.default_rng(seed)
        sql_text = _POOL[int(rng.integers(len(_POOL)))]
        corrupted = _corrupt(sql_text, rng)
        for schema in (_GEO, _PATIENTS):
            post = PostProcessor(schema)
            processed = post.process(corrupted)
            # Either a clean failure or parseable repaired SQL.
            if processed is not None:
                assert parse(processed.sql) is not None

    @given(st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_metrics_never_crash_on_corrupted_output(self, seed):
        rng = np.random.default_rng(seed)
        sql_text = _POOL[int(rng.integers(len(_POOL)))]
        corrupted = _corrupt(sql_text, rng)
        gold = parse(_POOL[int(rng.integers(len(_POOL)))])
        # Must return a bool, never raise.
        assert exact_match(corrupted, gold) in (True, False)
        assert semantic_match(corrupted, gold) in (True, False)

    def test_garbage_strings(self):
        post = PostProcessor(_PATIENTS)
        for garbage in ("", "    ", "SELECT", "???", "select from where", "@JOIN"):
            result = post.process(garbage)
            assert result is None or parse(result.sql) is not None
