"""Failure-injection tests: the runtime must survive broken model output.

Real models emit truncated, token-dropped, or shuffled SQL.  The
post-processor and evaluation harness must never crash on such input —
they either repair it or report a clean failure (None / incorrect).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GenerationConfig, Generator
from repro.eval import exact_match, semantic_match
from repro.neural.base import sql_to_tokens, tokens_to_sql
from repro.runtime import PostProcessor
from repro.schema import load_schema, patients_schema
from repro.sql import parse

_GEO = load_schema("geography")
_PATIENTS = patients_schema()
_POOL = [
    p.sql_text
    for p in Generator(_GEO, GenerationConfig(size_slotfills=3), seed=21).generate()
] + [
    p.sql_text
    for p in Generator(_PATIENTS, GenerationConfig(size_slotfills=3), seed=22).generate()
]


def _corrupt(sql_text: str, rng: np.random.Generator) -> str:
    tokens = sql_to_tokens(sql_text)
    mode = rng.integers(4)
    if mode == 0 and len(tokens) > 2:  # truncate
        cut = int(rng.integers(1, len(tokens)))
        tokens = tokens[:cut]
    elif mode == 1 and len(tokens) > 2:  # drop a random token
        drop = int(rng.integers(len(tokens)))
        tokens = tokens[:drop] + tokens[drop + 1 :]
    elif mode == 2 and len(tokens) > 3:  # swap two adjacent tokens
        i = int(rng.integers(len(tokens) - 1))
        tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]
    else:  # duplicate a token
        i = int(rng.integers(len(tokens)))
        tokens = tokens[: i + 1] + [tokens[i]] + tokens[i + 1 :]
    return tokens_to_sql(tokens)


class TestPostProcessorRobustness:
    @given(st.integers(0, 10_000))
    @settings(max_examples=150, deadline=None)
    def test_never_crashes_on_corrupted_output(self, seed):
        rng = np.random.default_rng(seed)
        sql_text = _POOL[int(rng.integers(len(_POOL)))]
        corrupted = _corrupt(sql_text, rng)
        for schema in (_GEO, _PATIENTS):
            post = PostProcessor(schema)
            processed = post.process(corrupted)
            # Either a clean failure or parseable repaired SQL.
            if processed is not None:
                assert parse(processed.sql) is not None

    @given(st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_metrics_never_crash_on_corrupted_output(self, seed):
        rng = np.random.default_rng(seed)
        sql_text = _POOL[int(rng.integers(len(_POOL)))]
        corrupted = _corrupt(sql_text, rng)
        gold = parse(_POOL[int(rng.integers(len(_POOL)))])
        # Must return a bool, never raise.
        assert exact_match(corrupted, gold) in (True, False)
        assert semantic_match(corrupted, gold) in (True, False)

    def test_garbage_strings(self):
        post = PostProcessor(_PATIENTS)
        for garbage in ("", "    ", "SELECT", "???", "select from where", "@JOIN"):
            result = post.process(garbage)
            assert result is None or parse(result.sql) is not None


# ----------------------------------------------------------------------
# Serving-layer failure injection (ISSUE 2): a flaky/slow model must
# trip the circuit breaker, degrade through the fallback chain, and
# recover after the cool-down — never surfacing a raw exception.
# ----------------------------------------------------------------------


class FlakyModel:
    """Wraps a fitted model; fails the first ``fail_first`` batch calls,
    optionally sleeping ``delay`` seconds per call (slow-model mode)."""

    def __init__(self, inner, fail_first: int = 0, delay: float = 0.0) -> None:
        self.inner = inner
        self.fail_first = fail_first
        self.delay = delay
        self.calls = 0

    def fit(self, pairs, **kwargs):
        self.inner.fit(pairs, **kwargs)

    def translate(self, nl):
        return self.inner.translate(nl)

    def translate_batch(self, nls):
        import time as _time

        self.calls += 1
        if self.delay:
            _time.sleep(self.delay)
        if self.calls <= self.fail_first:
            raise RuntimeError(f"injected failure #{self.calls}")
        return self.inner.translate_batch(nls)


class TestServingFailureInjection:
    QUESTIONS = [
        "what is the average age of all patients",
        "how many patients are there",
        "show the name of every patient",
        "what is the minimum length of stay of all patients",
    ]

    def _service(self, retrieval_nlidb, model, **knobs):
        from repro.runtime import DBPal
        from repro.serving import ServingConfig, TranslationService

        nlidb = DBPal(retrieval_nlidb.database, model)
        defaults = dict(
            workers=1, batch_window=0.0, request_timeout=5.0,
            failure_threshold=2, cooldown=0.1,
        )
        defaults.update(knobs)
        return TranslationService(nlidb, ServingConfig(**defaults))

    def test_breaker_opens_degrades_and_recovers(self, retrieval_nlidb):
        import time

        model = FlakyModel(retrieval_nlidb.model, fail_first=2)
        service = self._service(retrieval_nlidb, model)
        with service:
            # Two injected failures: both degrade, second opens the breaker.
            for question in self.QUESTIONS[:2]:
                response = service.translate(question)
                assert response.status in ("degraded", "error")
                assert response.result is not None or response.failure is not None
            assert service.breaker.state == "open"
            assert model.calls == 2

            # While open the model is short-circuited: no third call.
            during = service.translate(self.QUESTIONS[2])
            assert during.status in ("degraded", "error")
            assert model.calls == 2
            assert service.metrics.counter("breaker.short_circuited") >= 1

            # After the cool-down one probe goes through, heals, closes.
            time.sleep(0.12)
            recovered = service.translate(self.QUESTIONS[3])
            assert recovered.status == "ok" and recovered.source == "model"
            assert service.breaker.state == "closed"
            assert model.calls == 3

            snapshot = service.stats()
        assert snapshot["counters"]["model.failures"] == 2
        assert snapshot["counters"]["degraded"] >= 3
        assert snapshot["breaker"]["opened_count"] == 1

    def test_degraded_responses_are_structured_not_raised(self, retrieval_nlidb):
        model = FlakyModel(retrieval_nlidb.model, fail_first=10_000)
        service = self._service(retrieval_nlidb, model, failure_threshold=3)
        with service:
            for index in range(8):
                question = self.QUESTIONS[index % len(self.QUESTIONS)]
                response = service.translate(question)  # must never raise
                assert response.status in ("degraded", "error")
                if response.status == "degraded":
                    # Fallback SQL is parseable, runnable SQL.
                    assert parse(response.sql) is not None
            snapshot = service.stats()
        assert snapshot["counters"]["status.degraded"] >= 1
        assert snapshot["counters"]["degraded"] == 8
        assert snapshot["breaker"]["state"] == "open"

    def test_slow_model_times_out_then_recovers(self, retrieval_nlidb):
        model = FlakyModel(retrieval_nlidb.model, delay=0.3)
        service = self._service(retrieval_nlidb, model, request_timeout=0.05)
        with service:
            slow = service.translate(self.QUESTIONS[0])
            assert slow.status == "timeout"
            assert slow.failure is not None and slow.failure.code == "timeout"
            model.delay = 0.0
            # The timed-out flight still landed in the cache; repeats are instant.
            deadline = __import__("time").monotonic() + 5.0
            while __import__("time").monotonic() < deadline:
                fast = service.translate(self.QUESTIONS[0])
                if fast.status == "ok":
                    break
            assert fast.status == "ok" and fast.source in ("cache", "model")
