"""Tests for the SQL lexer."""

import pytest

from repro.errors import SqlLexError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]  # drop EOF


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [
            (TokenType.KEYWORD, "select")
        ] * 3

    def test_identifiers_lowercased(self):
        assert kinds("Patients AGE_x") == [
            (TokenType.IDENT, "patients"),
            (TokenType.IDENT, "age_x"),
        ]

    def test_numbers(self):
        assert kinds("42 3.14 -7") == [
            (TokenType.NUMBER, "42"),
            (TokenType.NUMBER, "3.14"),
            (TokenType.NUMBER, "-7"),
        ]

    def test_number_then_dot_ident(self):
        # `1.name` must lex as NUMBER DOT IDENT, not a malformed float.
        assert kinds("1.name") == [
            (TokenType.NUMBER, "1"),
            (TokenType.PUNCT, "."),
            (TokenType.IDENT, "name"),
        ]

    def test_strings_with_escaped_quote(self):
        tokens = tokenize("'o''brien'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "o'brien"

    def test_unterminated_string(self):
        with pytest.raises(SqlLexError):
            tokenize("'oops")

    def test_placeholders(self):
        assert kinds("@AGE @STATE.NAME @JOIN") == [
            (TokenType.PLACEHOLDER, "AGE"),
            (TokenType.PLACEHOLDER, "STATE.NAME"),
            (TokenType.PLACEHOLDER, "JOIN"),
        ]

    def test_empty_placeholder_rejected(self):
        with pytest.raises(SqlLexError):
            tokenize("@ ")

    def test_operators_normalized(self):
        assert kinds("= <> != < <= > >=") == [
            (TokenType.OP, "="),
            (TokenType.OP, "<>"),
            (TokenType.OP, "<>"),  # != normalized
            (TokenType.OP, "<"),
            (TokenType.OP, "<="),
            (TokenType.OP, ">"),
            (TokenType.OP, ">="),
        ]

    def test_star_and_punct(self):
        assert kinds("(*, .)") == [
            (TokenType.PUNCT, "("),
            (TokenType.STAR, "*"),
            (TokenType.PUNCT, ","),
            (TokenType.PUNCT, "."),
            (TokenType.PUNCT, ")"),
        ]

    def test_unexpected_character(self):
        with pytest.raises(SqlLexError) as excinfo:
            tokenize("SELECT #")
        assert excinfo.value.position == 7

    def test_eof_token_always_last(self):
        tokens = tokenize("SELECT")
        assert tokens[-1].type is TokenType.EOF

    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF

    def test_positions_recorded(self):
        tokens = tokenize("SELECT name")
        assert tokens[0].position == 0
        assert tokens[1].position == 7


class TestTokenMatches:
    def test_matches_type_and_value(self):
        token = Token(TokenType.KEYWORD, "select", 0)
        assert token.matches(TokenType.KEYWORD)
        assert token.matches(TokenType.KEYWORD, "select")
        assert not token.matches(TokenType.KEYWORD, "from")
        assert not token.matches(TokenType.IDENT)
