"""ShardedService integration tests (ISSUE 8, tentpole).

Everything here runs real forked shard processes; the module-level
factories below are what ``ShardSpec`` pickles/inherits into the
children.  The acceptance properties under test:

* bit-identical ``ServingResponse.payload()`` vs a single-process
  service on the same workload;
* shard-exclusive cache keys and aggregate hit-rate parity with the
  single-process baseline;
* killing one shard mid-workload loses no accepted requests
  (respawn + re-dispatch), and a shard that keeps dying is
  quarantined with the stable ``E_WORKER_DIED`` code;
* rolling checkpoint reload completes with zero failed responses
  while traffic keeps flowing;
* SIGTERM to ``repro serve --replicas N`` drains every shard and
  exits 130.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ServingError
from repro.neural.base import TranslationModel
from repro.runtime import DBPal
from repro.serving import (
    ServingConfig,
    ShardSpec,
    ShardedConfig,
    ShardedService,
    TranslationService,
)

pytestmark = pytest.mark.sharded

#: Mixed workload: repeated shapes (cache traffic), distinct shapes,
#: and one untranslatable question (structured-failure parity).
WORKLOAD = [
    "how many patients are there",
    "what is the average age of all patients",
    "show the name of every patient",
    "how many patients are there",
    "what is the maximum length of stay of all patients",
    "colorless green ideas sleep furiously",
    "what is the average age of all patients",
    "list the diagnosis of each patient",
    "how many patients are there",
    "what is the minimum age of all patients",
] * 3


def _prebuilt(nlidb: DBPal) -> DBPal:
    """Shard factory: each forked child inherits its own CoW copy."""
    return nlidb


class _ConstModel(TranslationModel):
    """Deterministic stand-in model; ``tag`` tells generations apart."""

    def __init__(self, tag: str = "v1") -> None:
        self.tag = tag

    def fit(self, pairs, **kwargs):
        pass

    def translate(self, nl):
        return "SELECT COUNT(*) FROM patients"

    def translate_batch(self, nls):
        return [self.translate(nl) for nl in nls]


class _ExitingModel(_ConstModel):
    """Hard-kills its process on the first model call (SIGKILL shape)."""

    def translate_batch(self, nls):
        os._exit(1)


def _const_replica(database) -> DBPal:
    return DBPal(database, _ConstModel())


def _exiting_replica(database) -> DBPal:
    return DBPal(database, _ExitingModel())


def _make_v2_model() -> _ConstModel:
    """Module-level loader for rolling_reload (runs inside each shard)."""
    return _ConstModel(tag="v2")


def _spec(retrieval_nlidb, **config_kwargs) -> ShardSpec:
    defaults = dict(workers=2, batch_window=0.002, request_timeout=15.0)
    defaults.update(config_kwargs)
    return ShardSpec(
        _prebuilt, (retrieval_nlidb,), config=ServingConfig(**defaults)
    )


class TestPayloadIdentity:
    def test_sharded_payloads_match_single_process(self, retrieval_nlidb):
        with TranslationService(
            retrieval_nlidb, ServingConfig(workers=1, request_timeout=15.0)
        ) as single:
            reference = [single.translate(q).payload() for q in WORKLOAD]
        spec = _spec(retrieval_nlidb)
        with ShardedService(spec, ShardedConfig(replicas=2)) as sharded:
            observed = [sharded.translate(q).payload() for q in WORKLOAD]
        assert observed == reference

    def test_responses_are_restamped_by_the_front_door(self, retrieval_nlidb):
        spec = _spec(retrieval_nlidb)
        with ShardedService(spec, ShardedConfig(replicas=2)) as sharded:
            responses = [
                sharded.translate("how many patients are there")
                for _ in range(3)
            ]
        # Front-door request ids are globally unique and monotonic even
        # though each shard numbers its own requests from 1.
        ids = [r.request_id for r in responses]
        assert ids == sorted(ids) and len(set(ids)) == 3
        assert all(r.latency > 0 for r in responses)

    def test_query_executes_through_the_cluster(self, retrieval_nlidb):
        spec = _spec(retrieval_nlidb)
        with ShardedService(spec, ShardedConfig(replicas=2)) as sharded:
            rows = sharded.query("how many patients are there", max_rows=5)
        assert rows and "COUNT(*)" in rows[0]


class TestCacheRouting:
    def test_zero_duplicate_keys_and_hit_rate_parity(self, retrieval_nlidb):
        questions = [q for q in WORKLOAD if "colorless" not in q]
        with TranslationService(
            retrieval_nlidb, ServingConfig(workers=1, request_timeout=15.0)
        ) as single:
            for question in questions:
                single.translate(question)
            baseline = single.stats()["cache_hit_rate"]
        spec = _spec(retrieval_nlidb)
        with ShardedService(spec, ShardedConfig(replicas=2)) as sharded:
            for question in questions:
                sharded.translate(question)
            stats = sharded.stats()
            keys_by_shard = sharded.cache_keys()
        all_keys = [k for keys in keys_by_shard.values() for k in keys]
        # Shard-exclusive: the consistent-hash ring puts each
        # anonymized key on exactly one shard, so the union of the
        # shard caches contains no duplicates.
        assert len(all_keys) == len(set(all_keys))
        assert sum(len(k) for k in keys_by_shard.values()) == len(set(all_keys))
        # Both shards actually hold keys (the workload spans shapes).
        assert sum(1 for keys in keys_by_shard.values() if keys) == 2
        # Aggregate hit rate within 2% of the single-process baseline
        # on the same sequential workload (exact-ish: each key's one
        # cold miss lands on exactly one shard either way).
        aggregate = stats["cluster"]["cache_hit_rate"]
        assert abs(aggregate - baseline) <= 0.02, (aggregate, baseline)

    def test_merged_stats_shape(self, retrieval_nlidb):
        spec = _spec(retrieval_nlidb)
        with ShardedService(spec, ShardedConfig(replicas=2)) as sharded:
            for question in WORKLOAD[:10]:
                sharded.translate(question)
            stats = sharded.stats()
        assert stats["replicas"] == 2
        assert set(stats["shards"]) == {"shard-0", "shard-1"}
        cluster = stats["cluster"]
        assert cluster["shards_reporting"] == 2
        # Cluster requests are the sum over shards; the front door saw
        # every request exactly once.
        assert cluster["requests_total"] == sum(
            snap["requests_total"] for snap in stats["shards"].values()
        )
        assert stats["front"]["requests_total"] == 10
        # Merged percentiles come from pooled samples, not averaging.
        assert cluster["latency"]["samples"] == cluster["requests_total"]
        assert stats["ring"]["nodes"] == ["shard-0", "shard-1"]
        assert set(stats["stages_legend"]) == {"busy_seconds", "wall_seconds"}
        for stage in cluster["stages"].values():
            assert set(stage) >= {"busy_seconds", "wall_seconds"}
        import json

        json.dumps(stats)  # the whole merged view must be JSON-ready


class TestSupervision:
    def test_killed_shard_loses_no_accepted_requests(self, retrieval_nlidb):
        spec = _spec(retrieval_nlidb)
        with ShardedService(spec, ShardedConfig(replicas=2)) as sharded:
            pids = sharded.shard_pids()
            futures = []
            for index, question in enumerate(WORKLOAD * 3):
                futures.append(sharded.submit(question))
                if index == 20:
                    os.kill(pids["shard-0"], signal.SIGKILL)
            responses = [f.result(timeout=30.0) for f in futures]
            stats = sharded.stats()
            pids_after = sharded.shard_pids()
        assert all(r.ok or r.status == "error" for r in responses)
        # Every *translatable* request was answered ok — the kill did
        # not surface as a lost or failed request.
        translatable = [
            r for r in responses if "colorless" not in r.nl
        ]
        assert all(r.ok for r in translatable)
        assert stats["supervisor"]["respawns"] >= 1
        assert stats["supervisor"]["failed_requests"] == 0
        assert stats["supervisor"]["quarantined"] == 0
        # The replacement shard runs under a fresh pid, same ring name.
        assert pids_after["shard-0"] != pids["shard-0"]

    def test_repeatedly_dying_shard_is_quarantined(self, patients_db):
        spec = ShardSpec(
            _exiting_replica,
            (patients_db,),
            config=ServingConfig(workers=1, request_timeout=15.0),
        )
        config = ShardedConfig(
            replicas=2, max_respawns=0, max_request_attempts=3
        )
        with ShardedService(spec, config) as sharded:
            response = sharded.translate("how many patients are there")
            stats = sharded.stats()
        # Every shard the request touched died on it; with
        # max_respawns=0 each death quarantines its shard, and the
        # request fails with the stable taxonomy code once the ring
        # is exhausted (or its attempts are).
        assert response.status == "error"
        assert response.failure is not None
        assert response.failure.code == "worker_died"
        assert response.failure.error_code == "E_WORKER_DIED"
        assert stats["supervisor"]["quarantined"] >= 1
        assert stats["supervisor"]["failed_requests"] >= 1
        quarantined = stats["ring"]["quarantined"]
        assert quarantined and all(n.startswith("shard-") for n in quarantined)

    def test_stop_drains_pending_requests(self, retrieval_nlidb):
        spec = _spec(retrieval_nlidb)
        sharded = ShardedService(spec, ShardedConfig(replicas=2))
        with sharded:
            futures = [sharded.submit(q) for q in WORKLOAD]
        # stop() (via __exit__) waited for the in-flight requests: all
        # futures are resolved, none were abandoned.
        assert all(f.done() for f in futures)
        translatable = [
            f.result() for f in futures if "colorless" not in f.result().nl
        ]
        assert all(r.ok for r in translatable)

    def test_submit_after_stop_raises(self, retrieval_nlidb):
        spec = _spec(retrieval_nlidb)
        sharded = ShardedService(spec, ShardedConfig(replicas=2))
        with sharded:
            pass
        with pytest.raises(ServingError):
            sharded.submit("how many patients are there")


class TestRollingReload:
    def test_rolling_reload_zero_failed_responses(self, patients_db):
        spec = ShardSpec(
            _const_replica,
            (patients_db,),
            config=ServingConfig(workers=2, request_timeout=15.0),
        )
        with ShardedService(spec, ShardedConfig(replicas=2)) as sharded:
            stop = threading.Event()
            failures: list = []
            served = [0]

            def traffic() -> None:
                while not stop.is_set():
                    response = sharded.translate("how many patients are there")
                    if response.ok:
                        served[0] += 1
                    else:
                        failures.append(response)

            thread = threading.Thread(target=traffic)
            thread.start()
            time.sleep(0.1)
            reloaded = sharded.rolling_reload(_make_v2_model)
            time.sleep(0.1)
            stop.set()
            thread.join(timeout=10.0)
            stats = sharded.stats()
        assert not failures, [r.to_dict() for r in failures[:3]]
        assert served[0] > 0
        # Every shard reloaded exactly once, sequentially.
        assert [r["shard"] for r in reloaded] == ["shard-0", "shard-1"]
        assert all(r["generation"] == 1 for r in reloaded)
        for snap in stats["shards"].values():
            assert snap["generation"] == 1
            assert snap["counters"].get("model.reloads", 0) == 1

    def test_reload_requires_running_service(self, patients_db):
        spec = ShardSpec(_const_replica, (patients_db,))
        sharded = ShardedService(spec, ShardedConfig(replicas=2))
        with pytest.raises(ServingError):
            sharded.rolling_reload(_make_v2_model)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replicas": 0},
            {"vnodes": 0},
            {"max_respawns": -1},
            {"max_request_attempts": 0},
            {"boot_timeout": 0.0},
            {"dispatch_threads": 0},
            {"max_inflight_per_shard": 0},
            {"drain_timeout": -1.0},
            {"grace": -0.5},
        ],
    )
    def test_invalid_sharded_config_rejected(self, kwargs):
        with pytest.raises(ServingError):
            ShardedConfig(**kwargs)

    def test_boot_error_surfaces_at_start(self, patients_db):
        # An untrained replica: TranslationService refuses it in-shard,
        # and the front door surfaces the boot error instead of hanging.
        spec = ShardSpec(_untrained_replica, (patients_db,))
        sharded = ShardedService(
            spec, ShardedConfig(replicas=2, boot_timeout=30.0)
        )
        with pytest.raises(ServingError, match="failed to boot"):
            sharded.start()


def _untrained_replica(database) -> DBPal:
    return DBPal(database)  # no model: ServingError in the shard


class TestCliShardedServe:
    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        from repro import GenerationConfig, TrainingPipeline
        from repro.neural import Seq2SeqModel, save_model
        from repro.schema import patients_schema

        corpus = TrainingPipeline(
            patients_schema(), GenerationConfig(size_slotfills=2), seed=0
        ).generate()
        model = Seq2SeqModel(embed_dim=8, hidden_dim=12, epochs=1, seed=0)
        model.fit(corpus.subsample(80, seed=0).pairs)
        path = tmp_path_factory.mktemp("ckpt") / "ckpt.npz"
        save_model(model, str(path))
        return path

    def _serve_env(self) -> dict:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def test_sigterm_drains_all_shards_and_exits_130(self, checkpoint):
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli",
                "serve", "patients",
                "--checkpoint", str(checkpoint),
                "--replicas", "2",
                "--workers", "1",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=self._serve_env(),
        )
        try:
            # One served question proves every shard is up and routing.
            proc.stdin.write("how many patients are there\n")
            proc.stdin.flush()
            line = proc.stdout.readline()
            assert "SQL:" in line, line
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, (out, err)
        assert "all shards drained" in err

    def test_cli_rolling_reload_flag(self, checkpoint):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.cli",
                "serve", "patients",
                "--checkpoint", str(checkpoint),
                "--replicas", "2",
                "--workers", "1",
                "--reload", str(checkpoint),
            ],
            input="how many patients are there\n",
            capture_output=True,
            text=True,
            timeout=120.0,
            env=self._serve_env(),
        )
        assert result.returncode == 0, result.stderr
        assert "reloaded shard-0 (generation 1)" in result.stdout
        assert "reloaded shard-1 (generation 1)" in result.stdout
        assert "SQL:" in result.stdout
