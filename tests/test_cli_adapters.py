"""CLI threading of the adapter SDK: ``repro introspect``,
``repro generate --introspect``, ``repro lint --introspect``, and
``repro db explain --backend sqlite``.

The end-to-end acceptance path lives here: datagen → sqlite file →
introspected schema → generated corpus → ``repro lint`` with zero
errors, i.e. the paper's "point the pipeline at a database, get a
corpus" story.  The database files deliberately carry non-builtin
schema names (``geo_live``/``pt_live``) so every resolution goes
through the introspected schema, not the catalog.
"""

from __future__ import annotations

import json

import pytest

from repro.adapters import SqliteAdapter
from repro.cli import EXIT_ERROR, EXIT_LINT_FINDINGS, EXIT_OK, main
from repro.db import populate
from repro.schema import load_schema

pytestmark = pytest.mark.adapters


@pytest.fixture(scope="module")
def geo_db_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("dbs") / "geo_live.db"
    database = populate(load_schema("geography"), rows_per_table=12, seed=5)
    SqliteAdapter.from_database(database, path=path).close()
    return str(path)


@pytest.fixture(scope="module")
def patients_db_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("dbs") / "pt_live.db"
    database = populate(load_schema("patients"), rows_per_table=12, seed=5)
    SqliteAdapter.from_database(database, path=path).close()
    return str(path)


@pytest.fixture(scope="module")
def geo_corpus_file(geo_db_file, tmp_path_factory):
    corpus = str(tmp_path_factory.mktemp("corpora") / "geo_live.jsonl")
    code = main(
        [
            "generate",
            "--introspect",
            geo_db_file,
            "--output",
            corpus,
            "--seed",
            "1",
            "--size-slotfills",
            "2",
        ]
    )
    assert code == EXIT_OK
    return corpus


class TestIntrospectCommand:
    def test_prints_tables_columns_and_keys(self, patients_db_file, capsys):
        assert main(["introspect", patients_db_file]) == EXIT_OK
        out = capsys.readouterr().out
        assert "schema 'pt_live'" in out
        assert "integer pk" in out  # patient_id survives as a declared key
        assert "[length of stay]" in out  # identifier-split NL annotation

    def test_prints_foreign_keys(self, geo_db_file, capsys):
        assert main(["introspect", geo_db_file]) == EXIT_OK
        out = capsys.readouterr().out
        assert "city.state_name -> state.state_name" in out

    def test_json_dump_is_machine_readable(self, geo_db_file, capsys):
        assert main(["introspect", geo_db_file, "--json"]) == EXIT_OK
        dump = json.loads(capsys.readouterr().out)
        assert dump["name"] == "geo_live"
        tables = {t["name"] for t in dump["tables"]}
        assert {"state", "city"} <= tables
        assert dump["foreign_keys"]

    def test_name_override(self, geo_db_file, capsys):
        assert main(["introspect", geo_db_file, "--name", "geo2"]) == EXIT_OK
        assert "schema 'geo2'" in capsys.readouterr().out

    def test_empty_database_fails_with_l506(self, tmp_path, capsys):
        import sqlite3

        path = str(tmp_path / "empty.db")
        sqlite3.connect(path).close()
        assert main(["introspect", path]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "L506" in err

    def test_missing_file_fails(self, tmp_path, capsys):
        path = str(tmp_path / "nope" / "missing.db")
        assert main(["introspect", path]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err


class TestGenerateIntrospect:
    def test_corpus_from_live_database_lints_clean(
        self, geo_db_file, geo_corpus_file, capsys
    ):
        # The acceptance criterion: a corpus generated from a live
        # database passes the static analyzer with zero errors when
        # resolved against the same introspected schema.
        code = main(
            ["lint", "--corpus", geo_corpus_file, "--introspect", geo_db_file]
        )
        assert code == EXIT_OK
        assert "clean" in capsys.readouterr().out

    def test_generate_announces_introspected_schema(
        self, geo_db_file, tmp_path, capsys
    ):
        corpus = str(tmp_path / "tiny.jsonl")
        code = main(
            [
                "generate",
                "--introspect",
                geo_db_file,
                "--output",
                corpus,
                "--size-slotfills",
                "1",
                "--num-para",
                "1",
            ]
        )
        assert code == EXIT_OK
        assert "introspected schema 'geo_live'" in capsys.readouterr().out

    def test_schema_and_introspect_are_mutually_exclusive(
        self, geo_db_file, tmp_path, capsys
    ):
        out = str(tmp_path / "c.jsonl")
        code = main(
            [
                "generate",
                "geography",
                "--introspect",
                geo_db_file,
                "--output",
                out,
            ]
        )
        assert code == EXIT_ERROR
        assert "exactly one schema source" in capsys.readouterr().err

    def test_neither_schema_source_is_an_error(self, tmp_path, capsys):
        code = main(["generate", "--output", str(tmp_path / "c.jsonl")])
        assert code == EXIT_ERROR
        assert "exactly one schema source" in capsys.readouterr().err


class TestLintIntrospect:
    def test_introspect_without_corpus_is_an_error(self, geo_db_file, capsys):
        code = main(["lint", "--introspect", geo_db_file])
        assert code == EXIT_ERROR
        assert "--corpus" in capsys.readouterr().err

    def test_schema_mismatch_surfaces_findings(
        self, geo_corpus_file, patients_db_file
    ):
        # A geography corpus resolved against a patients database must
        # produce findings, not silently pass.
        code = main(
            [
                "lint",
                "--corpus",
                geo_corpus_file,
                "--introspect",
                patients_db_file,
            ]
        )
        assert code == EXIT_LINT_FINDINGS


class TestDbExplainBackend:
    def test_sqlite_backend_shows_compiled_sql_and_plan(self, capsys):
        code = main(
            [
                "db",
                "explain",
                "patients",
                "SELECT name FROM patients WHERE age > 40",
                "--backend",
                "sqlite",
            ]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "compiled SQL (sqlite dialect):" in out
        assert "COALESCE((age > 40), 0)" in out
        assert "sqlite query plan:" in out

    def test_sqlite_backend_execute_matches_memory(self, capsys):
        sql = "SELECT diagnosis, COUNT(*) FROM patients GROUP BY diagnosis"
        assert (
            main(["db", "explain", "patients", sql, "--execute"]) == EXIT_OK
        )
        memory_out = capsys.readouterr().out
        assert (
            main(
                [
                    "db",
                    "explain",
                    "patients",
                    sql,
                    "--execute",
                    "--backend",
                    "sqlite",
                ]
            )
            == EXIT_OK
        )
        sqlite_out = capsys.readouterr().out
        memory_rows = [l for l in memory_out.splitlines() if l.startswith("  {")]
        sqlite_rows = [l for l in sqlite_out.splitlines() if l.startswith("  {")]
        assert memory_rows == sqlite_rows
