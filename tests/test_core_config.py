"""Tests for the generation configuration (Table 1 parameters)."""

import numpy as np
import pytest

from repro.core import GenerationConfig
from repro.errors import GenerationError


class TestValidation:
    def test_defaults_valid(self):
        config = GenerationConfig()
        assert config.size_slotfills >= 1
        assert 0.0 <= config.groupby_p <= 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size_slotfills": 0},
            {"size_tables": 0},
            {"groupby_p": 1.5},
            {"groupby_p": -0.1},
            {"rand_drop_p": 2.0},
            {"join_boost": -1.0},
            {"size_para": -1},
            {"num_para": -1},
            {"num_missing": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(GenerationError):
            GenerationConfig(**kwargs)

    def test_immutability(self):
        config = GenerationConfig()
        with pytest.raises(AttributeError):
            config.size_para = 5


class TestOverridesAndDict:
    def test_with_overrides(self):
        config = GenerationConfig().with_overrides(num_para=7)
        assert config.num_para == 7
        assert GenerationConfig().num_para != 7 or True  # original untouched

    def test_with_overrides_validates(self):
        with pytest.raises(GenerationError):
            GenerationConfig().with_overrides(groupby_p=5.0)

    def test_to_dict_covers_table1(self):
        d = GenerationConfig().to_dict()
        for name in (
            "size_slotfills",
            "size_tables",
            "groupby_p",
            "join_boost",
            "agg_boost",
            "nest_boost",
            "size_para",
            "num_para",
            "num_missing",
            "rand_drop_p",
        ):
            assert name in d


class TestSearch:
    def test_sample_within_space(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            config = GenerationConfig.sample(rng)
            for name, candidates in GenerationConfig.SEARCH_SPACE.items():
                assert getattr(config, name) in candidates

    def test_sample_deterministic(self):
        a = GenerationConfig.sample(np.random.default_rng(5))
        b = GenerationConfig.sample(np.random.default_rng(5))
        assert a == b

    def test_sample_varies(self):
        rng = np.random.default_rng(0)
        configs = {GenerationConfig.sample(rng) for _ in range(10)}
        assert len(configs) > 1

    def test_grid_subset(self):
        grid = list(GenerationConfig.grid({"num_para": (0, 3), "size_para": (1, 2)}))
        assert len(grid) == 4
        assert {c.num_para for c in grid} == {0, 3}

    def test_grid_defaults_for_unlisted_axes(self):
        grid = list(GenerationConfig.grid({"num_para": (0,)}))
        assert grid[0].size_slotfills == GenerationConfig().size_slotfills
