"""Tests for the automatic paraphrasing step (§3.2.1)."""

import numpy as np

from repro.core import GenerationConfig, Paraphraser
from repro.core.templates import Family, TrainingPair
from repro.nlp import ParaphraseDatabase
from repro.sql import parse


def pair(nl="show the names of all patients with age @AGE"):
    return TrainingPair(
        nl=nl,
        sql=parse("SELECT name FROM patients WHERE age = @AGE"),
        template_id="t",
        family=Family.FILTER,
        schema_name="patients",
    )


def paraphraser(size_para=2, num_para=3, noise_rate=0.0, seed=0):
    config = GenerationConfig(size_para=size_para, num_para=num_para)
    return Paraphraser(
        ParaphraseDatabase(noise_rate=noise_rate), config, np.random.default_rng(seed)
    )


class TestParaphrase:
    def test_produces_duplicates(self):
        duplicates = paraphraser().paraphrase(pair())
        assert duplicates
        assert all(d.augmentation == "paraphrase" for d in duplicates)

    def test_sql_unchanged(self):
        for duplicate in paraphraser().paraphrase(pair()):
            assert duplicate.sql == pair().sql

    def test_original_not_included(self):
        nls = {d.nl for d in paraphraser().paraphrase(pair())}
        assert pair().nl not in nls

    def test_no_duplicate_outputs(self):
        nls = [d.nl for d in paraphraser().paraphrase(pair())]
        assert len(nls) == len(set(nls))

    def test_placeholders_never_replaced(self):
        for duplicate in paraphraser(noise_rate=0.3).paraphrase(pair()):
            assert "@AGE" in duplicate.nl

    def test_known_substitution_present(self):
        nls = {d.nl for d in paraphraser().paraphrase(pair())}
        assert any("display" in nl or "list" in nl for nl in nls)

    def test_size_para_zero_disables(self):
        assert paraphraser(size_para=0).paraphrase(pair()) == []

    def test_num_para_zero_disables(self):
        assert paraphraser(num_para=0).paraphrase(pair()) == []

    def test_num_para_limits_per_span(self):
        few = paraphraser(num_para=1, seed=1).paraphrase(pair())
        many = paraphraser(num_para=5, seed=1).paraphrase(pair())
        assert len(many) >= len(few)

    def test_bigram_replacement_with_size_two(self):
        # "greater than" is a bigram entry in the PPDB.
        source = pair("patients with age greater than @AGE")
        nls = {d.nl for d in paraphraser(size_para=2).paraphrase(source)}
        assert any("more than" in nl for nl in nls)

    def test_size_one_skips_bigrams(self):
        source = pair("patients with age greater than @AGE")
        nls = {d.nl for d in paraphraser(size_para=1).paraphrase(source)}
        assert not any("more than" in nl for nl in nls)

    def test_deterministic_given_seed(self):
        first = [d.nl for d in paraphraser(seed=9).paraphrase(pair())]
        second = [d.nl for d in paraphraser(seed=9).paraphrase(pair())]
        assert first == second
