"""Tests for the rule-based lemmatizer."""

import pytest

from repro.nlp import lemmatize, lemmatize_word


class TestIrregulars:
    @pytest.mark.parametrize(
        "word,lemma",
        [
            ("is", "be"),
            ("are", "be"),
            ("am", "be"),
            ("was", "be"),
            ("were", "be"),
            ("has", "have"),
            ("had", "have"),
            ("does", "do"),
            ("did", "do"),
            ("went", "go"),
            ("people", "person"),
            ("children", "child"),
            ("diagnoses", "diagnosis"),
            ("showed", "show"),
            ("stayed", "stay"),
            ("diagnosed", "diagnose"),
        ],
    )
    def test_mapping(self, word, lemma):
        assert lemmatize_word(word) == lemma


class TestSuffixRules:
    @pytest.mark.parametrize(
        "word,lemma",
        [
            ("cars", "car"),
            ("cities", "city"),
            ("patients", "patient"),
            ("diseases", "disease"),
            ("classes", "class"),
            ("boxes", "box"),
            ("wishes", "wish"),
            ("churches", "church"),
            ("ages", "age"),
            ("stopped", "stop"),
            ("running", "run"),
            ("spinning", "spin"),
            ("stored", "store"),
            ("listed", "list"),
            ("counting", "count"),
        ],
    )
    def test_mapping(self, word, lemma):
        assert lemmatize_word(word) == lemma


class TestComparatives:
    @pytest.mark.parametrize(
        "word,lemma",
        [
            ("older", "old"),
            ("oldest", "old"),
            ("higher", "high"),
            ("largest", "large"),
            ("biggest", "big"),
            ("cheapest", "cheap"),
        ],
    )
    def test_gradable_adjectives(self, word, lemma):
        assert lemmatize_word(word) == lemma

    def test_non_gradable_er_words_untouched(self):
        assert lemmatize_word("under") == "under"
        assert lemmatize_word("number") == "number"


class TestProtections:
    @pytest.mark.parametrize(
        "word", ["during", "this", "less", "address", "status", "always", "series"]
    )
    def test_protected_words(self, word):
        assert lemmatize_word(word) == word

    def test_short_words_untouched(self):
        assert lemmatize_word("his") == "his"
        assert lemmatize_word("as") == "as"

    def test_placeholder_passthrough(self):
        assert lemmatize_word("@AGE") == "@AGE"

    def test_number_passthrough(self):
        assert lemmatize_word("42") == "42"


class TestSentences:
    def test_possessive_stripped(self):
        assert lemmatize("the car's wheels") == "the car wheel"

    def test_full_sentence(self):
        assert (
            lemmatize("What are the names of all patients?")
            == "what be the name of all patient ?"
        )

    def test_placeholders_survive(self):
        assert lemmatize("patients with age @AGE") == "patient with age @AGE"

    def test_idempotent(self):
        text = "show me the longest rivers"
        assert lemmatize(lemmatize(text)) == lemmatize(text)
