"""Unit tests for semantic-metric evaluation and the tuning module."""

import numpy as np
import pytest

from repro.bench import Workload, WorkloadItem
from repro.core import GenerationConfig
from repro.core.tuning import SearchResult, TrialResult, grid_search
from repro.db import populate
from repro.eval import evaluate
from repro.neural import RetrievalModel
from repro.schema import patients_schema
from repro.sql import EquivalenceChecker, parse


class _FixedModel:
    def __init__(self, table):
        self.table = dict(table)

    def translate(self, nl):
        return self.table.get(nl)

    def translate_for_schema(self, nl, schema):
        return self.translate(nl)


class TestSemanticEvaluation:
    def test_execution_equivalent_counts_as_correct(self):
        schema = patients_schema()
        checker = EquivalenceChecker(
            [populate(schema, rows_per_table=20, seed=s) for s in (1, 2)]
        )
        items = [
            WorkloadItem(
                nl="patient between 20 and 60",
                sql=parse("SELECT name FROM patients WHERE age BETWEEN 20 AND 60"),
                schema_name="patients",
            )
        ]
        # Structurally different, semantically equal prediction.
        model = _FixedModel(
            {
                "patient between 20 and 60": (
                    "SELECT name FROM patients WHERE age >= 20 AND age <= 60"
                )
            }
        )
        exact = evaluate(model, Workload("w", items), metric="exact")
        semantic = evaluate(
            model, Workload("w", items), metric="semantic", checker=checker
        )
        assert exact.accuracy == 0.0
        assert semantic.accuracy == 1.0

    def test_semantic_eval_reports_executor_perf_and_cache(self):
        schema = patients_schema()
        checker = EquivalenceChecker(
            [populate(schema, rows_per_table=20, seed=1)]
        )
        sql = "SELECT name FROM patients WHERE age >= 20 AND age <= 60"
        questions = ["question alpha", "question beta", "question gamma"]
        items = [
            WorkloadItem(
                nl=nl,
                sql=parse("SELECT name FROM patients WHERE age BETWEEN 20 AND 60"),
                schema_name="patients",
            )
            for nl in questions
        ]
        model = _FixedModel({nl: sql for nl in questions})
        result = evaluate(
            model, Workload("w", items), metric="semantic", checker=checker
        )
        # Harness stage timings are always recorded...
        assert {"translate", "score"} <= set(result.perf["stages"])
        # ...and execution-match scoring surfaces the cached planned
        # executor: the repeated gold query executes once, then hits.
        assert result.perf["executor_cache"]["cache_hits"] > 0
        assert "scan" in result.perf["executor"]
        summary = result.summary()
        assert "accuracy" in summary
        assert "exec/scan" in summary
        assert "cache" in summary


class TestSearchResult:
    def make(self, accuracies):
        trials = [
            TrialResult(config=GenerationConfig(), accuracy=a, corpus_size=10)
            for a in accuracies
        ]
        trials.sort(key=lambda t: -t.accuracy)
        return SearchResult(trials)

    def test_best(self):
        assert self.make([0.2, 0.8, 0.5]).best.accuracy == 0.8

    def test_summary(self):
        summary = self.make([0.0, 1.0]).summary()
        assert summary["min"] == 0.0
        assert summary["max"] == 1.0
        assert summary["mean"] == 0.5

    def test_histogram_counts(self):
        counts, edges = self.make([0.1, 0.2, 0.9]).histogram(bins=2)
        assert counts.sum() == 3
        assert len(edges) == 3


class TestGridSearch:
    def test_grid_runs_all_configs(self, patients):
        from repro.bench import build_patients_benchmark

        workload = list(build_patients_benchmark().by_category("naive"))[:10]
        grid = list(GenerationConfig.grid({"num_para": (0, 2)}))
        result = grid_search(
            patients,
            workload,
            RetrievalModel,
            grid,
            seed=0,
            corpus_cap=200,
        )
        assert len(result.trials) == 2
        tried = {t.config.num_para for t in result.trials}
        assert tried == {0, 2}
