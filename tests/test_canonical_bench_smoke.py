"""Tier-1 smoke run of the canonicalization benchmark.

``benchmarks/run_canonical.py`` is executed end-to-end in miniature
(``--smoke`` shrinks the corpora and repeats) so the benchmark script
cannot rot out from under the canonicalizer: it synthesizes both seed
corpora, drives the paraphrase workload through the coalescing cache,
runs exact-vs-semantic dedupe, times ``canonical_key_for_sql``, and
must emit a well-formed record whose deterministic properties (uplift
non-negative, probes reconciled, augmented dedupe density positive)
hold even at smoke scale.  No latency assertion — that gate lives in
``benchmarks/test_perf_canonical.py``.
"""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

pytestmark = pytest.mark.canonical


def test_smoke_run_writes_valid_record(tmp_path):
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        from run_canonical import main
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))

    output = tmp_path / "BENCH_canonical.json"
    exit_code = main(["--smoke", "--output", str(output)])
    assert exit_code == 0

    record = json.loads(output.read_text(encoding="utf-8"))
    assert record["benchmark"] == "canonicalization"
    assert set(record["results"]) == {"patients", "geography"}
    for name, result in record["results"].items():
        cache = result["cache"]
        dedupe = result["dedupe"]
        latency = result["latency"]
        assert result["corpus_pairs"] > 0, name
        assert cache["puts"] == result["workload_outputs"]
        # The canonical tier can only recognize MORE repeats than
        # exact-text matching, never fewer.
        assert cache["canonical_repeats"] >= cache["exact_repeats"], (name, cache)
        assert cache["hit_rate_uplift"] >= 0, (name, cache)
        assert cache["puts"] == (
            cache["interned_hits"]
            + cache["variants_preserved"]
            + cache["canonical_index_size"]
            + cache["skipped"]
        ), (name, cache)
        # Semantic dedupe collapses re-spelled pairs even at smoke scale.
        assert dedupe["augmented_dedupe_density"] > 0, (name, dedupe)
        assert dedupe["semantic_deduped"] <= dedupe["exact_deduped"]
        assert latency["samples"] >= latency["queries"] > 0
        assert 0 <= latency["p50_us"] <= latency["p95_us"] <= latency["max_us"]
