"""Tests for metrics, the evaluation harness, coverage, and reports."""

import math

import pytest

from repro.bench import Workload, WorkloadItem
from repro.eval import (
    BUCKETS,
    bucket_of,
    coverage_breakdown,
    evaluate,
    exact_match,
    format_histogram,
    format_series,
    format_table,
    parse_rate,
    semantic_match,
)
from repro.sql import Difficulty, parse, pattern_signature


class TestMetrics:
    def test_exact_match_canonical(self):
        assert exact_match(
            "SELECT * FROM t WHERE 18 < age",
            parse("SELECT * FROM t WHERE age > 18"),
        )

    def test_exact_match_rejects_semantics(self):
        assert not exact_match(
            "SELECT name FROM t WHERE age >= 18",
            parse("SELECT name FROM t WHERE age > 17"),
        )

    def test_unparseable_prediction_is_wrong(self):
        assert not exact_match("garbage", parse("SELECT * FROM t"))
        assert not exact_match(None, parse("SELECT * FROM t"))

    def test_semantic_match_without_checker_falls_back(self):
        assert semantic_match("SELECT * FROM t", parse("SELECT * FROM t"))

    def test_parse_rate(self):
        rate = parse_rate(["SELECT * FROM t", "garbage", None, "SELECT x FROM t"])
        assert rate == 0.5
        assert parse_rate([]) == 0.0


class _FixedModel:
    """Returns a canned SQL per NL input."""

    def __init__(self, table):
        self.table = dict(table)

    def translate(self, nl):
        return self.table.get(nl)

    def translate_for_schema(self, nl, schema):
        return self.translate(nl)


def make_workload():
    items = [
        WorkloadItem(
            nl="show all patient",
            sql=parse("SELECT * FROM patients"),
            schema_name="patients",
            category="naive",
        ),
        WorkloadItem(
            nl="count the patient",
            sql=parse("SELECT COUNT(*) FROM patients"),
            schema_name="patients",
            category="naive",
        ),
        WorkloadItem(
            nl="patient with @AGE",
            sql=parse("SELECT * FROM patients WHERE age = @AGE"),
            schema_name="patients",
            category="missing",
        ),
    ]
    return Workload("unit", items)


class TestHarness:
    def test_accuracy_and_breakdowns(self):
        model = _FixedModel(
            {
                "show all patient": "SELECT * FROM patients",
                "count the patient": "SELECT SUM(age) FROM patients",  # wrong
                "patient with @AGE": "SELECT * FROM patients WHERE age = @AGE",
            }
        )
        result = evaluate(model, make_workload(), metric="exact")
        assert result.accuracy == pytest.approx(2 / 3)
        by_category = result.by_category()
        assert by_category["naive"] == pytest.approx(0.5)
        assert by_category["missing"] == 1.0
        assert len(result.failures()) == 1

    def test_lemmatization_applied_to_items(self):
        # Workload NL written unlemmatized; model expects lemmatized form.
        items = [
            WorkloadItem(
                nl="show all patients",
                sql=parse("SELECT * FROM patients"),
                schema_name="patients",
            )
        ]
        model = _FixedModel({"show all patient": "SELECT * FROM patients"})
        result = evaluate(model, Workload("w", items), metric="exact")
        assert result.accuracy == 1.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            evaluate(_FixedModel({}), make_workload(), metric="bleu")

    def test_by_difficulty_nan_for_empty_bucket(self):
        model = _FixedModel({})
        result = evaluate(model, make_workload(), metric="exact")
        by_difficulty = result.by_difficulty()
        assert math.isnan(by_difficulty[Difficulty.VERY_HARD])

    def test_gold_join_form_normalized_with_postprocess(self, geography):
        """Gold @JOIN queries are expanded like predictions are."""
        gold = parse(
            "SELECT city.city_name FROM @JOIN WHERE state.population > @STATE.POPULATION"
        )
        expanded_prediction = (
            "SELECT city.city_name FROM city, state "
            "WHERE city.state_name = state.state_name "
            "AND state.population > @STATE.POPULATION"
        )
        items = [WorkloadItem(nl="q", sql=gold, schema_name="geography")]
        model = _FixedModel({"q": expanded_prediction})
        result = evaluate(
            model,
            Workload("w", items),
            metric="exact",
            schemas={"geography": geography},
        )
        assert result.accuracy == 1.0


class TestCoverage:
    def test_bucket_of(self):
        sig = pattern_signature(parse("SELECT * FROM t"))
        assert bucket_of(sig, {sig}, {sig}) == "both"
        assert bucket_of(sig, set(), {sig}) == "dbpal"
        assert bucket_of(sig, {sig}, set()) == "spider"
        assert bucket_of(sig, set(), set()) == "unseen"

    def test_breakdown_counts(self):
        model = _FixedModel({"show all patient": "SELECT * FROM patients"})
        result = evaluate(model, make_workload(), metric="exact")
        breakdown = coverage_breakdown(
            result,
            spider_training_sql=["SELECT * FROM anything"],
            dbpal_training_sql=["SELECT COUNT(*) FROM anything"],
        )
        assert sum(breakdown.counts.values()) == 3
        assert set(breakdown.accuracy) == set(BUCKETS)
        rows = breakdown.as_rows()
        assert len(rows) == len(BUCKETS)


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(
            ["Name", "Value"], [["a", 0.5], ["bbbb", float("nan")]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "0.500" in text
        assert "-" in lines[-1]  # NaN rendered as dash

    def test_format_histogram(self):
        text = format_histogram([1, 3], [0.0, 0.5, 1.0], title="H")
        assert "H" in text and "#" in text

    def test_format_series(self):
        text = format_series({"0%": 0.1, "100%": 1.0})
        assert "100%" in text and "#" in text

    def test_format_series_nan(self):
        text = format_series({"x": float("nan")})
        assert "-" in text
