"""Tier-1 smoke run of the columnar execution benchmark.

``benchmarks/run_columnar.py`` is executed end-to-end in miniature
(``--smoke`` caps the size ladder and repeats) so the benchmark script
cannot rot out from under the vectorized executor: it runs both arms
over every workload shape and must emit a well-formed record whose arms
returned bit-identical results at every size.  No speedup assertion
here — tiny tables measure constant factors, not kernels; that claim
lives in ``benchmarks/test_perf_columnar.py`` under the ``columnar``
marker, guarded by ``_common.speedup_assertable``.
"""

import json
import sys
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def test_smoke_run_writes_valid_record(tmp_path):
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        from run_columnar import main
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))

    output = tmp_path / "BENCH_columnar.json"
    exit_code = main(["--smoke", "--output", str(output)])
    assert exit_code == 0

    record = json.loads(output.read_text(encoding="utf-8"))
    assert record["benchmark"] == "columnar_execution"
    # The headline property: the columnar arm is bit-identical to the
    # planned row arm on every workload at every size.
    assert record["identical"] is True
    assert record["workloads"], "no workloads recorded"
    for workload in record["workloads"].values():
        assert workload["identical"] is True
        assert len(workload["scaling"]) == len(record["sizes"])
        for point in workload["scaling"]:
            assert point["identical"] is True
            assert point["row_seconds"] >= 0
            assert point["columnar_seconds"] >= 0
        # crossover_rows is either absent from the ladder (None) or one
        # of the measured sizes.
        crossover = workload["crossover_rows"]
        assert crossover is None or crossover in record["sizes"]
