"""SQL semantic analyzer: every L1xx code, clean queries, and spans.

The mutation half of this file is the contract test for the analyzer:
each seeded defect must be caught with its *stable code* (the codes,
not the messages, are what the pipeline gate and ``repro lint`` JSON
consumers match on).
"""

from __future__ import annotations

import pytest

from repro.analysis import LINT_CODES, analyze_sql
from repro.analysis.diagnostics import Severity, make
from repro.schema.column import Column, ColumnType
from repro.schema.schema import Schema
from repro.schema.table import Table
from repro.sql.parser import parse
from repro.sql.printer import to_sql


@pytest.fixture(scope="module")
def disconnected():
    """Two tables with no foreign key between them."""
    return Schema(
        "disc",
        [
            Table(
                "a",
                [
                    Column("a_id", ColumnType.INTEGER, primary_key=True),
                    Column("x", ColumnType.INTEGER),
                ],
            ),
            Table(
                "b",
                [
                    Column("b_id", ColumnType.INTEGER, primary_key=True),
                    Column("y", ColumnType.INTEGER),
                ],
            ),
        ],
    )


# ----------------------------------------------------------------------
# Mutation matrix: one seeded defect per stable code
# ----------------------------------------------------------------------

PATIENTS_MUTATIONS = [
    ("L101", "SELECT * FROM nonexistent"),
    ("L102", "SELECT bogus FROM patients"),
    ("L105", "SELECT * FROM patients WHERE name > 'bob'"),
    ("L106", "SELECT * FROM patients WHERE age = 'forty'"),
    ("L107", "SELECT * FROM patients WHERE MAX(age) > 10"),
    ("L108", "SELECT name, age FROM patients GROUP BY name"),
    ("L109", "SELECT name FROM patients HAVING COUNT(*) > 2"),
    ("L111", "SELECT * FROM patients WHERE name BETWEEN 'a' AND 'b'"),
    ("L112", "SELECT SUM(name) FROM patients"),
    ("L113", "SELECT * FROM patients WHERE age LIKE 'x%'"),
    ("L114", "SELECT * FROM patients WHERE age = @BOGUS"),
]


@pytest.mark.parametrize("code,sql", PATIENTS_MUTATIONS)
def test_patients_mutation_caught_with_stable_code(patients, code, sql):
    codes = [d.code for d in analyze_sql(sql, patients)]
    assert codes == [code]


def test_ambiguous_column_reference(geography):
    # state_name exists in both state and city.
    diags = analyze_sql("SELECT state_name FROM state, city", geography)
    assert [d.code for d in diags] == ["L103"]


def test_qualifier_outside_from_scope(geography):
    diags = analyze_sql("SELECT city.city_name FROM state", geography)
    assert [d.code for d in diags] == ["L104"]


def test_disconnected_from_tables(disconnected):
    diags = analyze_sql("SELECT * FROM a, b", disconnected)
    assert [d.code for d in diags] == ["L110"]


def test_every_sql_code_has_a_mutation():
    """The matrix above covers the full L1xx range — no code untested."""
    covered = {code for code, _sql in PATIENTS_MUTATIONS}
    covered |= {"L103", "L104", "L110"}
    sql_codes = {code for code in LINT_CODES if code.startswith("L1")}
    assert covered == sql_codes


# ----------------------------------------------------------------------
# Clean queries stay clean
# ----------------------------------------------------------------------

CLEAN_PATIENTS = [
    "SELECT * FROM patients",
    "SELECT name, age FROM patients WHERE age > 30",
    "SELECT AVG(length_of_stay) FROM patients WHERE diagnosis = @DIAGNOSIS",
    "SELECT gender, COUNT(*) FROM patients GROUP BY gender",
    "SELECT gender, AVG(age) FROM patients GROUP BY gender "
    "HAVING COUNT(*) > 5",
    "SELECT * FROM patients WHERE age BETWEEN @AGE.LOW AND @AGE.HIGH",
    "SELECT * FROM patients WHERE name LIKE 'a%'",
]


@pytest.mark.parametrize("sql", CLEAN_PATIENTS)
def test_clean_patients_queries(patients, sql):
    assert analyze_sql(sql, patients) == []


def test_clean_join_query(geography):
    diags = analyze_sql(
        "SELECT city.city_name FROM state, city "
        "WHERE state.population > 1000000",
        geography,
    )
    assert diags == []


def test_join_placeholder_scope(geography):
    # @JOIN FROM clauses resolve against the FK-expanded table set.
    diags = analyze_sql(
        "SELECT city.city_name FROM @JOIN WHERE state.area > @AREA",
        geography,
    )
    assert diags == []


def test_severity_defaults_follow_registry():
    diag = make("L101", "boom")
    assert diag.severity is Severity.ERROR
    assert str(diag) == "[L101] boom"
    with pytest.raises(ValueError):
        make("L999", "no such code")


def test_diagnostics_carry_spans(patients):
    (diag,) = analyze_sql("SELECT bogus FROM patients", patients)
    assert diag.span is not None
    assert "SELECT bogus FROM patients"[diag.span.start : diag.span.end] == "bogus"


# ----------------------------------------------------------------------
# Satellite: parser spans + bit-identical round-trip
# ----------------------------------------------------------------------

ROUND_TRIP = [
    "SELECT * FROM patients",
    "SELECT name, age FROM patients WHERE age >= @AGE",
    "SELECT AVG(age) FROM patients WHERE diagnosis = @DIAGNOSIS "
    "AND gender = @GENDER",
    "SELECT gender, COUNT(*) FROM patients GROUP BY gender "
    "HAVING AVG(age) > @NUM",
    "SELECT * FROM patients WHERE age BETWEEN @AGE.LOW AND @AGE.HIGH "
    "ORDER BY age DESC",
    "SELECT name FROM patients WHERE age IN "
    "(SELECT age FROM patients WHERE gender = @GENDER)",
]


@pytest.mark.parametrize("sql", ROUND_TRIP)
def test_round_trip_is_bit_identical_with_spans(sql):
    query = parse(sql)
    assert to_sql(query) == to_sql(parse(to_sql(query)))
    assert query.span is not None
    assert query.span.start == 0


def test_spans_do_not_affect_equality():
    spanned = parse("SELECT name FROM patients WHERE age > @AGE")
    # Structural equality must ignore spans (they are compare=False),
    # so normalization/equivalence machinery is unaffected.
    assert spanned == parse("SELECT  name  FROM  patients  WHERE age > @AGE")


def test_column_ref_span_slices_source():
    sql = "SELECT name FROM patients WHERE age > @AGE"
    query = parse(sql)
    ref = query.select[0]
    assert sql[ref.span.start : ref.span.end] == "name"
    comparison = query.where
    assert sql[comparison.span.start : comparison.span.end] == "age > @AGE"
