"""Runtime-phase tests on the multi-table geography database.

Exercises the full §4/§5 machinery where it matters most: string
constants that collide across tables, join expansion, and the complete
NL -> SQL -> rows lifecycle with a deterministic model.
"""

import pytest

from repro.core import GenerationConfig
from repro.db import execute
from repro.neural import RetrievalModel
from repro.runtime import Binding, DBPal, ParameterHandler, PostProcessor


class TestGeographyAnonymization:
    def test_state_name_matched(self, geography_db):
        handler = ParameterHandler(geography_db)
        state = geography_db.rows("state")[0]["state_name"]
        result = handler.anonymize(f"show me all cities in {state}")
        assert "@STATE_NAME" in result.nl
        assert result.bindings[0].value == state

    def test_population_number_prefers_population_column(self, geography_db):
        handler = ParameterHandler(geography_db)
        population = geography_db.rows("city")[0]["population"]
        result = handler.anonymize(
            f"cities with population greater than {population}"
        )
        binding = result.bindings[0]
        assert binding.column == "population"

    def test_city_name_matched(self, geography_db):
        handler = ParameterHandler(geography_db)
        city = geography_db.rows("city")[0]["city_name"]
        result = handler.anonymize(f"what is the population of {city}")
        assert any(b.column == "city_name" for b in result.bindings)


class TestGeographyEndToEnd:
    @pytest.fixture(scope="class")
    def nlidb(self, geography_db):
        nlidb = DBPal(geography_db)
        nlidb.train(
            RetrievalModel(),
            config=GenerationConfig(size_slotfills=5, size_tables=3),
            seed=0,
        )
        return nlidb

    def test_single_table_question(self, nlidb, geography_db):
        rows = nlidb.query("how many cities are there")
        assert rows == [{"COUNT(*)": geography_db.row_count("city")}]

    def test_join_question_executes(self, nlidb, geography_db):
        state = geography_db.rows("state")[0]["state_name"]
        result = nlidb.translate(
            f"show the city names of all cities whose state state name is {state}"
        )
        assert result.ok
        # Whatever the retrieval model found, the post-processed SQL
        # executes against the database.
        execute(result.query, geography_db)

    def test_join_placeholder_resolved_in_final_sql(self, nlidb):
        # Any translated output must have @JOIN expanded or absent.
        result = nlidb.translate("what is the average height of all mountains")
        if result.ok:
            assert "@JOIN" not in result.sql

    def test_fuzzy_state_constant(self, nlidb, geography_db):
        state = geography_db.rows("state")[0]["state_name"]
        misspelled = state[:-1] + "aa"  # light corruption
        result = nlidb.translate(f"show me all cities in {misspelled}")
        if result.bindings:
            assert result.bindings[0].value == state


class TestJoinRepairAgainstData:
    def test_three_table_join_expansion_executes(self, geography, geography_db):
        post = PostProcessor(geography)
        processed = post.process(
            "SELECT river.river_name FROM @JOIN WHERE city.population > @CITY.POPULATION",
            [],
        )
        # river-state-city path: all three tables present.
        assert set(processed.query.from_tables) == {"river", "state", "city"}
        # With a binding it becomes executable.
        processed = post.process(
            "SELECT river.river_name FROM @JOIN WHERE city.population > @CITY.POPULATION",
            [Binding(placeholder="CITY.POPULATION", value=0, column="population")],
        )
        execute(processed.query, geography_db)
