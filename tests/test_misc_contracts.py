"""Contract tests: interface defaults, idempotence, miscellaneous edges."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.spider import HUMAN_STYLE, humanize
from repro.neural.base import TranslationModel
from repro.nlp.vocab import SPECIALS, Vocab
from repro.runtime import PostProcessor
from repro.schema import load_schema
from repro.sql import to_sql, try_parse


class TestTranslationModelContract:
    def test_abstract_methods_required(self):
        with pytest.raises(TypeError):
            TranslationModel()  # abstract

    def test_default_schema_translation_delegates(self):
        class Fixed(TranslationModel):
            def fit(self, pairs, **kwargs):
                pass

            def translate(self, nl):
                return "SELECT * FROM t"

        model = Fixed()
        assert model.translate_for_schema("x", object()) == "SELECT * FROM t"
        assert model.translate_batch(["a", "b"]) == ["SELECT * FROM t"] * 2


class TestHumanize:
    def test_zero_intensity_prefix_only(self):
        rng = np.random.default_rng(0)
        out = humanize("show me all patients", rng, intensity=0.0)
        # No phrase substitutions at intensity 0 (prefixes may appear).
        assert "show me all patients" in out

    def test_high_intensity_rewrites(self):
        hits = 0
        for seed in range(10):
            rng = np.random.default_rng(seed)
            out = humanize("show me all patients greater than @AGE", rng, 1.0)
            if any(v in out for v in HUMAN_STYLE.values()):
                hits += 1
        assert hits >= 8

    def test_at_most_three_substitutions(self):
        rng = np.random.default_rng(1)
        text = "show me all the total of the average maximum minimum list find"
        out = humanize(text, rng, intensity=1.0)
        replaced = sum(1 for v in HUMAN_STYLE.values() if v in out)
        assert replaced <= 4  # 3 substitutions; one replacement may contain another


class TestPostProcessorIdempotence:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM city",
            "SELECT city.city_name FROM @JOIN WHERE state.population > @STATE.POPULATION",
            "SELECT length FROM state",
        ],
    )
    def test_processing_twice_is_stable(self, sql):
        post = PostProcessor(load_schema("geography"))
        once = post.process(sql)
        twice = post.process(once.sql)
        assert twice.sql == once.sql

    def test_output_always_parses(self):
        post = PostProcessor(load_schema("geography"))
        for sql in (
            "SELECT city_name FROM city",
            "SELECT AVG(city.population) FROM @JOIN WHERE state.area > @STATE.AREA",
        ):
            processed = post.process(sql)
            assert try_parse(processed.sql) is not None


class TestVocabProperties:
    @given(st.lists(st.text(alphabet="abcxyz", min_size=1, max_size=6), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_roundtrip(self, tokens):
        tokens = [t for t in tokens if t not in SPECIALS]
        vocab = Vocab(tokens)
        ids = vocab.encode(tokens)
        assert vocab.decode(ids) == tokens

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=4), max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_ids_unique_and_stable(self, tokens):
        vocab = Vocab(tokens)
        ids = [vocab.id_of(t) for t in set(tokens)]
        assert len(ids) == len(set(ids))


class TestCliPosFlag:
    def test_generate_with_pos_aware_dropout(self, tmp_path):
        from repro.cli import main
        from repro.core.corpus_io import load_jsonl

        path = tmp_path / "pos.jsonl"
        code = main(
            [
                "generate",
                "patients",
                "--output",
                str(path),
                "--size-slotfills",
                "2",
                "--pos-aware-dropout",
            ]
        )
        assert code == 0
        assert len(load_jsonl(path)) > 0
