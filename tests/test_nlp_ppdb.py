"""Tests for the synthetic paraphrase database."""

from repro.nlp import PARAPHRASE_GROUPS, ParaphraseDatabase


class TestLookup:
    def test_known_unigram(self):
        ppdb = ParaphraseDatabase(noise_rate=0.0)
        phrases = [e.phrase for e in ppdb.lookup("show")]
        assert "display" in phrases and "list" in phrases

    def test_known_bigram(self):
        ppdb = ParaphraseDatabase(noise_rate=0.0)
        phrases = [e.phrase for e in ppdb.lookup("greater than")]
        assert "more than" in phrases

    def test_unknown_phrase_empty_without_noise(self):
        ppdb = ParaphraseDatabase(noise_rate=0.0)
        assert ppdb.lookup("xylophone quartet") == []

    def test_case_and_whitespace_insensitive(self):
        ppdb = ParaphraseDatabase(noise_rate=0.0)
        assert ppdb.lookup(" Show ") == ppdb.lookup("show")

    def test_scores_descending(self):
        ppdb = ParaphraseDatabase(noise_rate=0.0)
        scores = [e.score for e in ppdb.lookup("maximum")]
        assert scores == sorted(scores, reverse=True)

    def test_max_candidates(self):
        ppdb = ParaphraseDatabase(noise_rate=0.0)
        assert len(ppdb.lookup("show", max_candidates=2)) == 2

    def test_source_phrase_never_in_candidates(self):
        ppdb = ParaphraseDatabase(noise_rate=0.0)
        for phrase in ("show", "average", "greater than"):
            assert phrase not in [e.phrase for e in ppdb.lookup(phrase)]


class TestNoiseModel:
    def test_noise_is_deterministic(self):
        first = ParaphraseDatabase(noise_rate=0.5, seed=3)
        second = ParaphraseDatabase(noise_rate=0.5, seed=3)
        for phrase in ("show", "list", "average", "between"):
            assert [e.phrase for e in first.lookup(phrase)] == [
                e.phrase for e in second.lookup(phrase)
            ]

    def test_noise_injects_low_quality_entries(self):
        clean = ParaphraseDatabase(noise_rate=0.0)
        noisy = ParaphraseDatabase(noise_rate=0.9, seed=1, noise_score=0.2)
        injected = 0
        for phrase in clean.vocabulary():
            extra = len(noisy.lookup(phrase)) - len(clean.lookup(phrase))
            injected += extra
        assert injected > 0

    def test_noise_entries_scored_low(self):
        noisy = ParaphraseDatabase(noise_rate=0.9, seed=1, noise_score=0.2)
        for phrase in noisy.vocabulary():
            for entry in noisy.lookup(phrase):
                if entry.score == 0.2:
                    assert entry.phrase  # fabricated but non-empty

    def test_invalid_noise_rate_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ParaphraseDatabase(noise_rate=1.5)


class TestStructure:
    def test_symmetric_closure(self):
        ppdb = ParaphraseDatabase(noise_rate=0.0)
        for group in PARAPHRASE_GROUPS[:10]:
            for phrase in group:
                candidates = {e.phrase for e in ppdb.lookup(phrase)}
                others = set(group) - {phrase}
                assert others <= candidates

    def test_contains(self):
        ppdb = ParaphraseDatabase()
        assert ppdb.contains("show")
        assert not ppdb.contains("xylophone quartet")

    def test_max_ngram_at_least_two(self):
        assert ParaphraseDatabase().max_ngram >= 2

    def test_len_counts_entries(self):
        assert len(ParaphraseDatabase(noise_rate=0.0)) > 100
