"""Tests for the SQL printer."""

import pytest

from repro.sql import parse, to_sql


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT * FROM patients",
        "SELECT name, age FROM patients",
        "SELECT DISTINCT diagnosis FROM patients",
        "SELECT COUNT(*) FROM patients",
        "SELECT AVG(age) FROM patients WHERE diagnosis = @DIAGNOSIS",
        "SELECT COUNT(DISTINCT name) FROM patients",
        "SELECT * FROM patients WHERE age BETWEEN @AGE.LOW AND @AGE.HIGH",
        "SELECT * FROM patients WHERE name LIKE 'a%'",
        "SELECT * FROM patients WHERE name NOT LIKE 'a%'",
        "SELECT * FROM patients WHERE x IN (1, 2, 3)",
        "SELECT * FROM patients WHERE x NOT IN (1, 2)",
        "SELECT name FROM patients WHERE age = (SELECT MAX(age) FROM patients)",
        "SELECT * FROM a WHERE EXISTS (SELECT * FROM b WHERE z = 1)",
        "SELECT * FROM a WHERE NOT EXISTS (SELECT * FROM b)",
        "SELECT d, COUNT(*) FROM t GROUP BY d HAVING COUNT(*) > @NUM",
        "SELECT * FROM t ORDER BY age DESC LIMIT 3",
        "SELECT AVG(patient.age) FROM @JOIN WHERE doctor.name = @DOCTOR.NAME",
        "SELECT a.x, b.y FROM a, b WHERE a.id = b.id",
    ],
)
def test_roundtrip_identity(sql):
    """Parsing printed output reproduces the same AST."""
    query = parse(sql)
    assert parse(to_sql(query)) == query


def test_canonical_text_exact():
    assert (
        to_sql(parse("select name from patients where age=20"))
        == "SELECT name FROM patients WHERE age = 20"
    )


def test_or_in_and_parenthesized():
    sql = "SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)"
    printed = to_sql(parse(sql))
    assert "(b = 2 OR c = 3)" in printed
    assert parse(printed) == parse(sql)


def test_top_level_or_not_parenthesized():
    printed = to_sql(parse("SELECT * FROM t WHERE a = 1 OR b = 2"))
    assert printed == "SELECT * FROM t WHERE a = 1 OR b = 2"


def test_string_escaping():
    printed = to_sql(parse("SELECT * FROM t WHERE name = 'o''brien'"))
    assert "'o''brien'" in printed
    assert parse(printed).where.right.value == "o'brien"


def test_not_predicate_printed():
    sql = "SELECT * FROM t WHERE NOT (a = 1 OR b = 2)"
    assert parse(to_sql(parse(sql))) == parse(sql)


def test_float_rendering():
    assert to_sql(parse("SELECT * FROM t WHERE x = 1.5")).endswith("x = 1.5")
