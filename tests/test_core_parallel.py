"""Tests for the sharded synthesis engine and its determinism contract.

The contract under test is the one DESIGN.md documents: for a fixed
(seed, config, schemas, templates), the corpus is a pure function of
those inputs — worker count, process boundaries, and streaming vs
materializing must never change a single pair or its position.
"""

import itertools

import pytest

from repro.core import (
    GenerationConfig,
    SynthesisEngine,
    TrainingPipeline,
    dedupe_pairs,
    synthesize_shard,
)
from repro.core.parallel import EngineState
from repro.core.seed_templates import SEED_TEMPLATES
from repro.errors import GenerationError


def corpus_fingerprint(corpus):
    """Everything that identifies a pair, including its position."""
    return [
        (p.key(), p.template_id, p.family, p.schema_name, p.augmentation)
        for p in corpus
    ]


class TestDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_equals_sequential_patients(
        self, patients, small_config, workers
    ):
        sequential = TrainingPipeline(patients, small_config, seed=11).generate(
            workers=0
        )
        parallel = TrainingPipeline(patients, small_config, seed=11).generate(
            workers=workers
        )
        assert corpus_fingerprint(parallel) == corpus_fingerprint(sequential)

    def test_parallel_equals_sequential_multi_schema(
        self, patients, geography, small_config
    ):
        schemas = [patients, geography]
        sequential = TrainingPipeline(schemas, small_config, seed=5).generate(
            workers=0
        )
        parallel = TrainingPipeline(schemas, small_config, seed=5).generate(
            workers=2
        )
        assert corpus_fingerprint(parallel) == corpus_fingerprint(sequential)

    def test_parallel_equals_sequential_custom_config(self, patients, geography):
        config = GenerationConfig(
            size_slotfills=3,
            groupby_p=0.5,
            join_boost=1.5,
            size_para=1,
            num_para=2,
            num_missing=1,
            rand_drop_p=0.2,
        )
        schemas = [patients, geography]
        sequential = TrainingPipeline(schemas, config, seed=21).generate(workers=0)
        parallel = TrainingPipeline(schemas, config, seed=21).generate(workers=2)
        assert corpus_fingerprint(parallel) == corpus_fingerprint(sequential)

    def test_constructor_worker_count_is_execution_only(
        self, patients, small_config
    ):
        inline = TrainingPipeline(patients, small_config, seed=9).generate()
        pooled = TrainingPipeline(
            patients, small_config, seed=9, workers=2
        ).generate()
        assert corpus_fingerprint(pooled) == corpus_fingerprint(inline)

    def test_different_seeds_differ(self, patients, small_config):
        a = TrainingPipeline(patients, small_config, seed=1).generate()
        b = TrainingPipeline(patients, small_config, seed=2).generate()
        assert corpus_fingerprint(a) != corpus_fingerprint(b)


class TestStreaming:
    def test_stream_concatenation_equals_generate(self, patients, small_config):
        pipeline = TrainingPipeline(patients, small_config, seed=4)
        streamed = list(
            itertools.chain.from_iterable(pipeline.generate_stream(workers=0))
        )
        corpus = TrainingPipeline(patients, small_config, seed=4).generate()
        assert [p.key() for p in streamed] == [p.key() for p in corpus.pairs]

    def test_stream_batches_are_globally_deduplicated(
        self, patients, small_config
    ):
        pipeline = TrainingPipeline(patients, small_config, seed=4)
        keys = [
            p.key()
            for batch in pipeline.generate_stream(workers=0)
            for p in batch
        ]
        assert len(keys) == len(set(keys))

    def test_stream_yields_no_empty_batches(self, patients, small_config):
        pipeline = TrainingPipeline(patients, small_config, seed=4)
        for batch in pipeline.generate_stream(workers=0):
            assert batch


class TestEngine:
    def test_shard_count(self, patients, geography):
        engine = SynthesisEngine([patients, geography], GenerationConfig())
        assert engine.shard_count == 2 * len(SEED_TEMPLATES)

    def test_shard_coords_are_schema_major(self, patients, geography):
        state = SynthesisEngine(
            [patients, geography], GenerationConfig()
        ).state
        schema, template = state.shard_coords(0)
        assert schema.name == patients.name
        assert template.tid == SEED_TEMPLATES[0].tid
        schema, _ = state.shard_coords(len(SEED_TEMPLATES))
        assert schema.name == geography.name

    def test_shard_is_reproducible_in_isolation(self, patients, small_config):
        state = EngineState(
            schemas=(patients,),
            config=small_config,
            templates=tuple(SEED_TEMPLATES),
            ppdb=SynthesisEngine(patients).state.ppdb,
            seed=8,
        )
        first, _ = synthesize_shard(state, 3)
        second, _ = synthesize_shard(state, 3)
        assert [p.key() for p in first] == [p.key() for p in second]

    def test_shard_timings_reported(self, patients, small_config):
        state = SynthesisEngine(patients, small_config, seed=0).state
        _, timings = synthesize_shard(state, 0)
        assert set(timings) == {"generate", "augment", "lemmatize"}
        assert all(seconds >= 0.0 for seconds in timings.values())

    def test_recorder_collects_stages(self, patients, small_config):
        from repro.perf import PerfRecorder

        recorder = PerfRecorder()
        corpus = TrainingPipeline(patients, small_config, seed=2).generate(
            recorder=recorder
        )
        report = recorder.report()
        for stage in ("generate", "augment", "lemmatize", "merge"):
            assert stage in report
        # Every merged pair is accounted for by the merge stage.
        assert report["merge"]["items"] == len(corpus)

    def test_rejects_empty_inputs(self, patients):
        with pytest.raises(GenerationError):
            SynthesisEngine([], GenerationConfig())
        with pytest.raises(GenerationError):
            SynthesisEngine(patients, GenerationConfig(), templates=())


class TestDedupeHelper:
    def test_threads_seen_set_across_calls(self, patients, small_config):
        corpus = TrainingPipeline(patients, small_config, seed=1).generate()
        half = len(corpus.pairs) // 2
        seen = set()
        first = dedupe_pairs(corpus.pairs[:half], seen)
        second = dedupe_pairs(corpus.pairs, seen)
        assert [p.key() for p in first + second] == [
            p.key() for p in corpus.pairs
        ]

    def test_fresh_set_by_default(self, patients, small_config):
        corpus = TrainingPipeline(patients, small_config, seed=1).generate()
        assert dedupe_pairs(corpus.pairs) == corpus.pairs
        # A second call with no shared set sees everything again.
        assert dedupe_pairs(corpus.pairs) == corpus.pairs
