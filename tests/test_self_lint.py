"""Self-lint: the analyzer's house rules applied to our own source.

A stdlib-``ast`` pass over every module in ``src/repro`` enforcing
three rules that have each caused real bugs in serving stacks:

* **no bare ``except:``** — swallows ``KeyboardInterrupt`` and
  ``SystemExit``; catch ``Exception`` (with a justification comment)
  at minimum.
* **no mutable default arguments** — a ``def f(x=[])`` default is
  shared across calls; use ``None`` + fill-in.
* **no ``time.time()``** — budget/deadline arithmetic must use
  ``time.monotonic()``; wall-clock time jumps under NTP and breaks
  TTL/timeout math.  The rule is enforced repo-wide: modules that
  legitimately need wall-clock timestamps don't exist here, so any
  appearance is a defect.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent

MUTABLE_NODES = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


def repro_modules() -> list[Path]:
    return sorted(SRC_ROOT.rglob("*.py"))


def test_source_tree_is_substantial():
    # Guard against the walker silently scanning the wrong directory.
    assert len(repro_modules()) > 40


def _findings(check) -> list[str]:
    findings = []
    for path in repro_modules():
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            message = check(node)
            if message:
                findings.append(
                    f"{path.relative_to(SRC_ROOT.parent)}:{node.lineno}: {message}"
                )
    return findings


def test_no_bare_except():
    def check(node):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            return "bare `except:` — name the exception class"

    assert _findings(check) == []


def test_no_mutable_default_arguments():
    def check(node):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, MUTABLE_NODES):
                return (
                    f"mutable default argument in `{node.name}` — "
                    "use None and fill in"
                )

    assert _findings(check) == []


def test_no_wall_clock_time():
    def check(node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "time"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
        ):
            return "time.time() — use time.monotonic() for budgets/deadlines"
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "time"
            and isinstance(node.value, ast.Name)
            and node.value.id == "time"
            and isinstance(getattr(node, "ctx", None), ast.Load)
        ):
            # Also catch `clock=time.time` style injection defaults.
            return "time.time reference — use time.monotonic"

    assert _findings(check) == []


class TestLintRulesDetect:
    """The rules themselves must catch seeded defects (meta-mutation)."""

    @pytest.mark.parametrize(
        "source, attr, bad",
        [
            ("try:\n    pass\nexcept:\n    pass\n", "type", True),
            ("try:\n    pass\nexcept ValueError:\n    pass\n", "type", False),
        ],
    )
    def test_bare_except_rule(self, source, attr, bad):
        handlers = [
            n
            for n in ast.walk(ast.parse(source))
            if isinstance(n, ast.ExceptHandler)
        ]
        assert (handlers[0].type is None) is bad

    def test_mutable_default_rule(self):
        tree = ast.parse("def f(x=[]):\n    pass\n")
        func = tree.body[0]
        assert any(isinstance(d, MUTABLE_NODES) for d in func.args.defaults)

    def test_wall_clock_rule(self):
        tree = ast.parse("import time\nt = time.time()\n")
        calls = [n for n in ast.walk(tree) if isinstance(n, ast.Call)]
        assert calls[0].func.attr == "time"
