"""Tests for the Adam optimizer and batch construction."""

import numpy as np

from repro.neural.batching import Batch, iterate_batches, make_batch, pad_sequences
from repro.neural.layers import Dense
from repro.neural.optim import Adam
from repro.nlp.vocab import Vocab


class TestAdam:
    def test_minimizes_quadratic(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 1, rng)
        target_w = np.array([[1.0], [-2.0], [0.5]])
        x = rng.normal(size=(64, 3))
        y = x @ target_w
        optimizer = Adam([layer], lr=0.05)
        for _ in range(300):
            optimizer.zero_grads()
            out, cache = layer.forward(x)
            grad = (out - y) / len(x)
            layer.backward(grad, cache)
            optimizer.step()
        assert np.allclose(layer.params["W"], target_w, atol=0.05)

    def test_gradient_clipping(self):
        rng = np.random.default_rng(0)
        layer = Dense(2, 2, rng)
        optimizer = Adam([layer], lr=0.1, clip_norm=1.0)
        layer.grads["W"][...] = 1e6
        before = layer.params["W"].copy()
        optimizer.step()
        # Clipped update stays bounded.
        assert np.all(np.abs(layer.params["W"] - before) < 1.0)

    def test_zero_grads(self):
        rng = np.random.default_rng(0)
        layer = Dense(2, 2, rng)
        layer.grads["W"][...] = 5.0
        Adam([layer]).zero_grads()
        assert np.all(layer.grads["W"] == 0.0)


class TestPadding:
    def test_pad_sequences(self):
        out = pad_sequences([[1, 2], [3]], pad_id=0)
        assert out.tolist() == [[1, 2], [3, 0]]

    def test_empty(self):
        assert pad_sequences([], pad_id=0).shape == (0, 0)


class TestMakeBatch:
    def vocabs(self):
        src = Vocab(["show", "all", "patients", "cities"])
        tgt = Vocab(["SELECT", "*", "FROM", "patients", "city"])
        return src, tgt

    def test_shapes_and_masks(self):
        src, tgt = self.vocabs()
        batch = make_batch(
            [["show", "all"], ["show", "all", "patients"]],
            [["SELECT", "*"], ["SELECT"]],
            src,
            tgt,
        )
        assert batch.src.shape == (2, 3)
        assert batch.src_mask[0].tolist() == [1.0, 1.0, 0.0]
        # tgt_in starts with BOS; tgt_out ends with EOS.
        assert batch.tgt_in[0][0] == tgt.bos_id
        assert batch.tgt_out[0][-1] == tgt.eos_id
        assert batch.size == 2

    def test_tgt_mask_covers_eos(self):
        src, tgt = self.vocabs()
        batch = make_batch([["show"]], [["SELECT"]], src, tgt)
        # SELECT + EOS -> two loss positions.
        assert batch.tgt_mask.sum() == 2.0


class TestIterateBatches:
    def test_covers_all_examples(self):
        src, tgt = self.make_data()
        rng = np.random.default_rng(0)
        total = 0
        for batch in iterate_batches(*src, *tgt, batch_size=4, rng=rng):
            total += batch.size
        assert total == 10

    def make_data(self):
        src_vocab = Vocab(["a", "b"])
        tgt_vocab = Vocab(["X"])
        src_tokens = [["a"] * (i % 3 + 1) for i in range(10)]
        tgt_tokens = [["X"]] * 10
        return (src_tokens, tgt_tokens), (src_vocab, tgt_vocab)

    def test_bucketing_limits_padding(self):
        (src_tokens, tgt_tokens), (src_vocab, tgt_vocab) = self.make_data()
        rng = np.random.default_rng(0)
        for batch in iterate_batches(
            src_tokens, tgt_tokens, src_vocab, tgt_vocab, batch_size=3, rng=rng
        ):
            lengths = batch.src_mask.sum(axis=1)
            assert lengths.max() - lengths.min() <= 1

    def test_epochs_shuffle(self):
        (src_tokens, tgt_tokens), (src_vocab, tgt_vocab) = self.make_data()
        rng = np.random.default_rng(0)
        first = [b.src.tolist() for b in iterate_batches(
            src_tokens, tgt_tokens, src_vocab, tgt_vocab, 3, rng)]
        second = [b.src.tolist() for b in iterate_batches(
            src_tokens, tgt_tokens, src_vocab, tgt_vocab, 3, rng)]
        assert first != second or len(first) == 1
