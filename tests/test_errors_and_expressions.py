"""Tests for the exception hierarchy and scalar predicate evaluation."""

import pytest

import repro.errors as errors
from repro.db.expressions import _like_match, compare, resolve_column
from repro.errors import ExecutionError, ReproError
from repro.sql import ColumnRef, CompOp


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError) or obj is ReproError

    def test_lex_error_carries_position(self):
        err = errors.SqlLexError("bad", 7)
        assert err.position == 7
        assert "position 7" in str(err)

    def test_catching_family(self):
        with pytest.raises(ReproError):
            raise errors.SchemaError("x")
        with pytest.raises(errors.SqlError):
            raise errors.SqlParseError("x")


class TestErrorTaxonomy:
    """The stable ``E_*`` code table shared by quarantine reports,
    manifests, and serving responses."""

    def test_every_constant_is_registered(self):
        constants = {
            getattr(errors, name)
            for name in dir(errors)
            if name.startswith("E_")
        }
        assert constants == set(errors.ERROR_CODES)
        # Codes are their own names — stable, grep-able identifiers.
        for name in dir(errors):
            if name.startswith("E_"):
                assert getattr(errors, name) == name

    def test_canonical_code_maps_wire_codes(self):
        assert errors.canonical_code("queue_full") == errors.E_QUEUE_FULL
        assert errors.canonical_code("rate_limited") == errors.E_RATE_LIMITED
        assert errors.canonical_code("timeout") == errors.E_TIMEOUT
        # Canonical codes are fixed points.
        assert (
            errors.canonical_code(errors.E_SHARD_TIMEOUT)
            == errors.E_SHARD_TIMEOUT
        )

    def test_unknown_codes_pass_through(self):
        assert errors.canonical_code("E_FROM_THE_FUTURE") == "E_FROM_THE_FUTURE"

    def test_exceptions_carry_class_level_codes(self):
        assert errors.CorpusIntegrityError("x").code == errors.E_CORPUS_CORRUPT
        assert (
            errors.ManifestMismatchError("x").code
            == errors.E_MANIFEST_MISMATCH
        )
        assert errors.FaultInjected("x").code == errors.E_FAULT_INJECTED
        assert errors.GracefulExit("x").code == errors.E_INTERRUPTED
        # Plain errors have no code; instances may override.
        assert errors.GenerationError("x").code is None
        assert (
            errors.GenerationError("x", code=errors.E_SHARD_CRASH).code
            == errors.E_SHARD_CRASH
        )

    def test_service_failure_exposes_canonical_code(self):
        from repro.serving.service import ServiceFailure, ServingResponse

        failure = ServiceFailure(code="queue_full", message="full")
        assert failure.error_code == errors.E_QUEUE_FULL
        response = ServingResponse(
            request_id=1,
            nl="q",
            status="rejected",
            source="admission",
            failure=failure,
        )
        assert response.to_dict()["failure"]["error_code"] == errors.E_QUEUE_FULL


class TestCompare:
    def test_numeric(self):
        assert compare(CompOp.LT, 1, 2)
        assert compare(CompOp.GE, 2, 2)
        assert not compare(CompOp.GT, 1, 2)

    def test_strings(self):
        assert compare(CompOp.EQ, "a", "a")
        assert compare(CompOp.LT, "a", "b")

    def test_null_is_false(self):
        for op in CompOp:
            assert not compare(op, None, 1)
            assert not compare(op, 1, None)

    def test_cross_type_is_false(self):
        assert not compare(CompOp.EQ, "1", 1)
        assert not compare(CompOp.LT, "a", 1)

    def test_exotic_types_false(self):
        assert not compare(CompOp.EQ, [1], [1])

    def test_int_float_comparable(self):
        assert compare(CompOp.EQ, 1, 1.0)


class TestLikeMatch:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("hello", "hello", True),
            ("hello", "h%", True),
            ("hello", "%llo", True),
            ("hello", "h_llo", True),
            ("hello", "h_lo", False),
            ("HELLO", "hello", True),  # case-insensitive
            ("a*b", "a*b", True),  # glob chars are literal in LIKE
            ("axb", "a*b", False),
            ("a[b", "a[b", True),
            ("50%", "50%", True),
        ],
    )
    def test_examples(self, value, pattern, expected):
        assert _like_match(value, pattern) is expected


class TestResolveColumn:
    def test_qualified(self):
        row = {"t": {"a": 1}, "u": {"a": 2}}
        assert resolve_column(ColumnRef("a", table="u"), row) == 2

    def test_unqualified_unique(self):
        row = {"t": {"a": 1}, "u": {"b": 2}}
        assert resolve_column(ColumnRef("b"), row) == 2

    def test_unqualified_ambiguous(self):
        row = {"t": {"a": 1}, "u": {"a": 2}}
        with pytest.raises(ExecutionError):
            resolve_column(ColumnRef("a"), row)

    def test_unknown(self):
        with pytest.raises(ExecutionError):
            resolve_column(ColumnRef("zz"), {"t": {"a": 1}})
        with pytest.raises(ExecutionError):
            resolve_column(ColumnRef("a", table="nope"), {"t": {"a": 1}})
