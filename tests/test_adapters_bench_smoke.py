"""Tier-1 smoke run of the backend adapter benchmark.

``benchmarks/run_adapters.py`` is executed end-to-end in miniature
(``--smoke`` caps the size ladder, repeats, and corpus size) so the
benchmark script cannot rot out from under the adapter SDK: it runs
the memory and sqlite arms over every workload shape, introspects
real database files back into schemas, and must emit a well-formed
record whose arms returned ``==``-identical normalized results at
every size.  No latency assertion — the sqlite arm's cost profile is
documentation, not a gate; the correctness gate is ``identical``.
"""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

pytestmark = pytest.mark.adapters


def test_smoke_run_writes_valid_record(tmp_path):
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        from run_adapters import main
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))

    output = tmp_path / "BENCH_adapters.json"
    exit_code = main(["--smoke", "--output", str(output)])
    assert exit_code == 0

    record = json.loads(output.read_text(encoding="utf-8"))
    assert record["benchmark"] == "backend_adapters"
    # The headline property: the sqlite arm is ==-identical to the
    # memory arm on every workload at every size.
    assert record["identical"] is True
    assert record["workloads"], "no workloads recorded"
    for workload in record["workloads"].values():
        assert workload["identical"] is True
        assert len(workload["scaling"]) == len(record["sizes"])
        for point in workload["scaling"]:
            assert point["identical"] is True
            assert point["memory_seconds"] >= 0
            assert point["sqlite_seconds"] >= 0
    # The introspection leg touched every schema and produced pairs.
    assert set(record["introspection"]) == {"patients", "geography", "retail"}
    for leg in record["introspection"].values():
        assert leg["tables"] >= 1
        assert leg["pairs"] > 0
        assert leg["introspect_seconds"] >= 0
