"""Integration tests: the whole system working together.

These exercise the paper's headline claims end-to-end on small scales:
bootstrap an NLIDB from a schema alone, pluggability of the model,
tuning loop, and the evaluation harness over a real trained model.
"""

import pytest

from repro.core import GenerationConfig, TrainingPipeline, random_search
from repro.db import execute, populate
from repro.eval import evaluate
from repro.neural import (
    CrossDomainModel,
    RetrievalModel,
    Seq2SeqModel,
    SyntaxAwareModel,
)
from repro.runtime import DBPal
from repro.schema import load_schema, patients_schema
from repro.sql import parse, try_parse


class TestBootstrapFromSchemaOnly:
    """Paper claim: 'an NLIDB can be effectively bootstrapped without
    requiring manual training data'."""

    @pytest.fixture(scope="class")
    def nlidb(self):
        schema = patients_schema()
        database = populate(schema, rows_per_table=25, seed=9)
        nlidb = DBPal(database)
        model = Seq2SeqModel(
            embed_dim=32, hidden_dim=64, epochs=6, batch_size=64, seed=0
        )
        nlidb.train(model, config=GenerationConfig(size_slotfills=6), seed=0)
        return nlidb

    def test_count_question(self, nlidb):
        rows = nlidb.query("how many patients are there")
        assert rows == [{"COUNT(*)": 25}]

    def test_filter_question_with_constant(self, nlidb):
        age = nlidb.database.rows("patients")[0]["age"]
        result = nlidb.translate(f"show me all patients with age {age}")
        assert result.ok
        assert str(age) in result.sql

    def test_aggregate_question(self, nlidb):
        result = nlidb.translate("what is the average age of all patients")
        assert result.ok
        assert "AVG(age)" in result.sql

    def test_translations_execute(self, nlidb):
        questions = [
            "show me all patients",
            "count the number of patients",
            "what is the maximum age of the patients",
        ]
        executed = 0
        for question in questions:
            result = nlidb.translate(question)
            if result.ok:
                execute(result.query, nlidb.database)
                executed += 1
        assert executed >= 2


class TestPluggability:
    """Paper claim: the pipeline trains *any* model unchanged."""

    def test_three_model_families_plug_in(self, patients):
        pipeline = TrainingPipeline(
            patients, GenerationConfig(size_slotfills=3), seed=1
        )
        for model in (
            RetrievalModel(),
            Seq2SeqModel(embed_dim=8, hidden_dim=16, epochs=1, seed=0),
            SyntaxAwareModel(embed_dim=8, hidden_dim=16, epochs=1, seed=0),
        ):
            pipeline.train(model)
            output = model.translate("show me all patient")
            assert output is None or isinstance(output, str)

    def test_cross_domain_wrapper_plugs_in(self, patients, geography):
        pipeline = TrainingPipeline(
            [patients, geography], GenerationConfig(size_slotfills=3), seed=1
        )
        model = CrossDomainModel(
            RetrievalModel(), [patients, geography], default_schema=patients
        )
        pipeline.train(model)
        assert model.translate("show me all patient") == "SELECT * FROM patients"


class TestTuningLoop:
    def test_random_search_runs_and_ranks(self, patients):
        from repro.bench import build_patients_benchmark

        workload = list(build_patients_benchmark().by_category("naive"))[:20]
        result = random_search(
            patients,
            workload,
            model_factory=RetrievalModel,
            n_trials=3,
            seed=0,
            corpus_cap=300,
        )
        assert len(result.trials) == 3
        accuracies = result.accuracies()
        assert accuracies == sorted(accuracies, reverse=True)
        assert result.best.accuracy == max(accuracies)
        summary = result.summary()
        assert summary["trials"] == 3
        counts, edges = result.histogram(bins=4)
        assert counts.sum() == 3


class TestHarnessOverTrainedModel:
    def test_patients_naive_category_learnable(self):
        """A seq2seq trained on patients synthesis should do well on the
        benchmark's naive category (the paper's DBPal rows)."""
        from repro.bench import build_patients_benchmark

        schema = patients_schema()
        corpus = TrainingPipeline(
            schema, GenerationConfig(size_slotfills=8), seed=2
        ).generate().subsample(2500, seed=0)
        model = Seq2SeqModel(
            embed_dim=48, hidden_dim=96, epochs=8, batch_size=64, seed=1
        )
        model.fit(corpus.pairs)
        workload = build_patients_benchmark().by_category("naive")
        result = evaluate(
            model, workload, metric="exact", schemas={"patients": schema}
        )
        assert result.accuracy >= 0.5, result.accuracy

    def test_grammar_constrained_outputs_parse(self):
        schema = patients_schema()
        corpus = TrainingPipeline(
            schema, GenerationConfig(size_slotfills=4), seed=3
        ).generate().subsample(800, seed=0)
        model = SyntaxAwareModel(
            embed_dim=24, hidden_dim=48, epochs=4, batch_size=64, seed=1
        )
        model.fit(corpus.pairs)
        for pair in corpus.pairs[:40]:
            output = model.translate(pair.nl)
            assert output is None or try_parse(output) is not None
