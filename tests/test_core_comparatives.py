"""Tests for domain-aware comparative substitution (§3.2.3)."""

from repro.core import ComparativeAugmenter
from repro.core.templates import Family, TrainingPair
from repro.sql import parse


def pair(nl, sql, schema_name="patients"):
    return TrainingPair(
        nl=nl,
        sql=parse(sql),
        template_id="t",
        family=Family.FILTER,
        schema_name=schema_name,
    )


class TestComparatives:
    def test_generic_to_domain(self, patients):
        augmenter = ComparativeAugmenter(patients)
        source = pair(
            "patients with age greater than @AGE",
            "SELECT * FROM patients WHERE age > @AGE",
        )
        variants = {v.nl for v in augmenter.augment(source)}
        assert "patients with age older than @AGE" in variants

    def test_domain_to_generic(self, patients):
        augmenter = ComparativeAugmenter(patients)
        source = pair(
            "patients older than @AGE",
            "SELECT * FROM patients WHERE age > @AGE",
        )
        variants = {v.nl for v in augmenter.augment(source)}
        assert any("greater than" in v for v in variants)

    def test_less_than_direction(self, patients):
        augmenter = ComparativeAugmenter(patients)
        source = pair(
            "patients with age less than @AGE",
            "SELECT * FROM patients WHERE age < @AGE",
        )
        variants = {v.nl for v in augmenter.augment(source)}
        assert "patients with age younger than @AGE" in variants

    def test_no_domain_no_variants(self, patients):
        augmenter = ComparativeAugmenter(patients)
        source = pair(
            "patients with patient id greater than @PATIENT_ID",
            "SELECT * FROM patients WHERE patient_id > @PATIENT_ID",
        )
        assert augmenter.augment(source) == []

    def test_equality_not_touched(self, patients):
        augmenter = ComparativeAugmenter(patients)
        source = pair(
            "patients with age @AGE",
            "SELECT * FROM patients WHERE age = @AGE",
        )
        assert augmenter.augment(source) == []

    def test_unknown_schema_skipped(self, patients):
        augmenter = ComparativeAugmenter(patients)
        source = pair(
            "rivers longer than @LENGTH",
            "SELECT * FROM river WHERE length > @LENGTH",
            schema_name="geography",
        )
        assert augmenter.augment(source) == []

    def test_qualified_join_columns_resolved(self, geography):
        augmenter = ComparativeAugmenter(geography)
        source = pair(
            "cities of states with population more than @POPULATION",
            "SELECT city.city_name FROM @JOIN WHERE state.population > @STATE.POPULATION",
            schema_name="geography",
        )
        variants = {v.nl for v in augmenter.augment(source)}
        assert any("more populous than" in v for v in variants)

    def test_augmentation_tag(self, patients):
        augmenter = ComparativeAugmenter(patients)
        source = pair(
            "patients with age greater than @AGE",
            "SELECT * FROM patients WHERE age > @AGE",
        )
        assert all(v.augmentation == "comparative" for v in augmenter.augment(source))

    def test_accepts_schema_list(self, patients, geography):
        augmenter = ComparativeAugmenter([patients, geography])
        source = pair(
            "rivers with length greater than @LENGTH",
            "SELECT * FROM river WHERE length > @LENGTH",
            schema_name="geography",
        )
        assert augmenter.augment(source)
