"""Integration points of the static-analysis framework.

Covers the acceptance criteria: the shipped template library is
lint-clean on every catalog schema, the pipeline refuses to generate
from inputs with lint errors, the generator explains miss-streak
fast-fails with stable codes, and ``repro lint`` works end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import lint_pipeline_inputs
from repro.cli import EXIT_LINT_FINDINGS, EXIT_OK, main
from repro.core import GenerationConfig, TrainingPipeline
from repro.core.generator import Generator
from repro.core.seed_templates import SEED_TEMPLATES
from repro.core.templates import SeedTemplate
from repro.errors import E_LINT, GenerationError
from repro.schema.catalog import all_schemas


def broken_template():
    """A select_all template whose NL demands a slot no builder fills."""
    base = next(t for t in SEED_TEMPLATES if t.sql_kind == "select_all")
    return SeedTemplate(
        tid="broken-00",
        family=base.family,
        sql_kind=base.sql_kind,
        nl_pattern=base.nl_pattern + " with {bogus_slot}",
    )


# ----------------------------------------------------------------------
# Acceptance: shipped templates x all catalog schemas are error-free
# ----------------------------------------------------------------------

def test_shipped_templates_clean_on_all_catalog_schemas():
    report = lint_pipeline_inputs(all_schemas(), SEED_TEMPLATES)
    assert report.ok, report.format_text()
    # Only the expected benign warning classes remain: structurally
    # dead kinds on schemas that cannot host them (L203/L204) and the
    # two intentional cross-kind NL duplicates (L205 warnings).
    assert report.codes() <= {"L203", "L204", "L205"}


def test_lint_pipeline_inputs_is_memoized():
    first = lint_pipeline_inputs(all_schemas(), SEED_TEMPLATES)
    second = lint_pipeline_inputs(all_schemas(), SEED_TEMPLATES)
    assert first is second


# ----------------------------------------------------------------------
# Acceptance: the pipeline refuses to generate from bad inputs
# ----------------------------------------------------------------------

def test_pipeline_refuses_lint_errors(patients, small_config):
    templates = list(SEED_TEMPLATES) + [broken_template()]
    pipeline = TrainingPipeline(patients, small_config, templates=templates)
    with pytest.raises(GenerationError) as excinfo:
        pipeline.generate()
    assert excinfo.value.code == E_LINT
    assert "L201" in str(excinfo.value)


def test_pipeline_gate_runs_before_any_shard(patients, small_config):
    templates = list(SEED_TEMPLATES) + [broken_template()]
    pipeline = TrainingPipeline(patients, small_config, templates=templates)
    with pytest.raises(GenerationError):
        # Streaming must refuse at iterator construction, not first next().
        pipeline.generate_stream()


def test_pipeline_gate_can_be_disabled(patients, small_config):
    # A same-kind duplicate NL pattern is a lint *error* (L205) but is
    # harmless to generation itself — the right defect for proving the
    # bypass: gated construction refuses, ungated generates fine.
    base = next(t for t in SEED_TEMPLATES if t.sql_kind == "select_all")
    clone = SeedTemplate(
        tid="clone-00",
        family=base.family,
        sql_kind=base.sql_kind,
        nl_pattern=base.nl_pattern,
    )
    templates = list(SEED_TEMPLATES) + [clone]
    with pytest.raises(GenerationError):
        TrainingPipeline(patients, small_config, templates=templates).generate()
    corpus = TrainingPipeline(
        patients, small_config, templates=templates, lint=False
    ).generate()
    assert len(corpus) > 0


def test_pipeline_gate_passes_clean_inputs(patients, small_config):
    report = TrainingPipeline(patients, small_config).lint_report()
    assert report.ok
    corpus = TrainingPipeline(patients, small_config).generate()
    assert len(corpus) > 0


def test_checkpointed_generation_is_gated(patients, small_config, tmp_path):
    templates = list(SEED_TEMPLATES) + [broken_template()]
    pipeline = TrainingPipeline(patients, small_config, templates=templates)
    with pytest.raises(GenerationError) as excinfo:
        pipeline.generate_checkpointed(tmp_path / "corpus.jsonl")
    assert excinfo.value.code == E_LINT
    assert not (tmp_path / "corpus.jsonl").exists()


def test_gate_does_not_change_the_corpus(patients, small_config):
    gated = TrainingPipeline(patients, small_config, seed=7).generate()
    ungated = TrainingPipeline(
        patients, small_config, seed=7, lint=False
    ).generate()
    assert [p.key() for p in gated] == [p.key() for p in ungated]


# ----------------------------------------------------------------------
# Satellite: generator fast-fail explanation
# ----------------------------------------------------------------------

def test_fast_fail_records_diagnostics(patients, small_config):
    join = next(t for t in SEED_TEMPLATES if t.sql_kind == "join_select")
    generator = Generator(patients, small_config, templates=SEED_TEMPLATES)
    assert generator.generate_template(join) == []
    diags = generator.fast_fail_diagnostics[join.tid]
    assert {d.code for d in diags} <= {"L203", "L204"}


def test_fast_fail_strict_raises_with_codes(patients, small_config):
    join = next(t for t in SEED_TEMPLATES if t.sql_kind == "join_select")
    generator = Generator(
        patients, small_config, templates=SEED_TEMPLATES, strict=True
    )
    with pytest.raises(GenerationError) as excinfo:
        generator.generate_template(join)
    assert excinfo.value.code == E_LINT
    assert "L203" in str(excinfo.value)


def test_fast_fail_silent_on_productive_templates(patients, small_config):
    generator = Generator(patients, small_config, templates=SEED_TEMPLATES)
    select_all = next(t for t in SEED_TEMPLATES if t.sql_kind == "select_all")
    assert generator.generate_template(select_all)
    assert select_all.tid not in generator.fast_fail_diagnostics


# ----------------------------------------------------------------------
# CLI: repro lint
# ----------------------------------------------------------------------

@pytest.mark.lint
def test_cli_lint_patients_json_smoke(capsys):
    exit_code = main(["lint", "--schema", "patients", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == EXIT_OK  # warnings only; non-strict exit is clean
    assert payload["summary"]["errors"] == 0
    assert {d["code"] for d in payload["diagnostics"]} <= {
        "L203",
        "L204",
        "L205",
    }


@pytest.mark.lint
def test_cli_lint_strict_reports_findings(capsys):
    exit_code = main(["lint", "--schema", "patients", "--strict"])
    out = capsys.readouterr().out
    assert exit_code == EXIT_LINT_FINDINGS
    assert "warning" in out


@pytest.mark.lint
def test_cli_lint_all_schemas_clean(capsys):
    assert main(["lint"]) == EXIT_OK
    assert "error" not in capsys.readouterr().out.splitlines()[-1].split()[1]


@pytest.mark.lint
def test_cli_lint_corpus(tmp_path, capsys):
    path = tmp_path / "corpus.jsonl"
    records = [
        {"nl": "show all patients", "sql": "SELECT * FROM patients",
         "schema": "patients"},
        {"nl": "bad", "sql": "SELEC", "schema": "patients"},
    ]
    path.write_text(
        "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
    )
    exit_code = main(["lint", "--corpus", str(path), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == EXIT_LINT_FINDINGS
    assert payload["summary"]["by_code"] == {"L301": 1}


@pytest.mark.lint
def test_cli_lint_missing_corpus_is_an_error(capsys):
    assert main(["lint", "--corpus", "/no/such/file.jsonl"]) == 1
    capsys.readouterr()


# ----------------------------------------------------------------------
# Eval hook
# ----------------------------------------------------------------------

def test_eval_attaches_lint_summary(patients):
    from repro.bench.workloads import Workload, WorkloadItem
    from repro.eval.harness import evaluate
    from repro.sql.parser import parse

    class Echo:
        def translate(self, nl):
            return "SELECT * FROM patients"

        def translate_for_schema(self, nl, schema):
            return "SELECT * FROM patients"

    workload = Workload(
        name="w",
        items=[
            WorkloadItem(
                nl="show all patients",
                sql=parse("SELECT * FROM patients"),
                schema_name="patients",
            )
        ],
    )
    result = evaluate(Echo(), workload, schemas={"patients": patients}, lint=True)
    assert result.lint["errors"] == 0
    assert result.lint["schemas"] == 1
    assert "lint:" in result.summary()
    # Default stays off: no lint key, no cost.
    bare = evaluate(Echo(), workload, schemas={"patients": patients})
    assert bare.lint == {}
    assert "lint:" not in bare.summary()
