"""Tests for repro.schema.schema — lookup and join-graph reasoning."""

import pytest

from repro.errors import SchemaError
from repro.schema import ForeignKey, Schema, Table, integer, text


def linear_schema():
    """a -> b -> c: a chain of foreign keys."""
    a = Table("a", [integer("a_id", primary_key=True), integer("b_id")])
    b = Table("b", [integer("b_id", primary_key=True), integer("c_id")])
    c = Table("c", [integer("c_id", primary_key=True), text("name")])
    return Schema(
        "chain",
        [a, b, c],
        [
            ForeignKey("a", "b_id", "b", "b_id"),
            ForeignKey("b", "c_id", "c", "c_id"),
        ],
    )


class TestSchemaLookup:
    def test_table_lookup(self, patients):
        assert patients.table("patients").name == "patients"

    def test_missing_table_raises(self, patients):
        with pytest.raises(SchemaError):
            patients.table("doctors")

    def test_contains(self, patients):
        assert "patients" in patients
        assert "doctors" not in patients

    def test_column_lookup(self, patients):
        assert patients.column("patients", "age").name == "age"

    def test_tables_with_column(self, geography):
        tables = geography.tables_with_column("state_name")
        assert {t.name for t in tables} == {"state", "city", "mountain", "river"}

    def test_qualified_columns_cover_all(self, patients):
        pairs = patients.qualified_columns()
        assert len(pairs) == len(patients.table("patients").columns)

    def test_duplicate_tables_rejected(self):
        t = Table("t", [text("a")])
        with pytest.raises(SchemaError):
            Schema("s", [t, Table("t", [text("b")])])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("s", [])

    def test_fk_validation(self):
        t = Table("t", [text("a")])
        with pytest.raises(SchemaError):
            Schema("s", [t], [ForeignKey("t", "a", "missing", "x")])
        with pytest.raises(SchemaError):
            Schema("s", [t], [ForeignKey("t", "nope", "t", "a")])


class TestJoinPath:
    def test_single_table_no_path(self, geography):
        assert geography.join_path(["city"]) == []

    def test_direct_edge(self, geography):
        path = geography.join_path(["city", "state"])
        assert len(path) == 1
        assert {path[0].table, path[0].ref_table} == {"city", "state"}

    def test_two_hop_path(self, geography):
        path = geography.join_path(["city", "mountain"])
        # city - state - mountain
        assert len(path) == 2
        tables = {t for fk in path for t in (fk.table, fk.ref_table)}
        assert tables == {"city", "state", "mountain"}

    def test_chain_path(self):
        schema = linear_schema()
        path = schema.join_path(["a", "c"])
        assert len(path) == 2

    def test_join_tables_includes_intermediates(self, geography):
        tables = geography.join_tables(["city", "mountain"])
        assert set(tables) == {"city", "state", "mountain"}

    def test_unreachable_tables_raise(self):
        a = Table("a", [integer("x")])
        b = Table("b", [integer("y")])
        schema = Schema("disconnected", [a, b])
        with pytest.raises(SchemaError):
            schema.join_path(["a", "b"])

    def test_unknown_table_raises(self, geography):
        with pytest.raises(SchemaError):
            geography.join_path(["city", "nonexistent"])

    def test_deduplicates_input(self, geography):
        path = geography.join_path(["city", "city", "state"])
        assert len(path) == 1

    def test_deterministic(self, geography):
        first = geography.join_path(["river", "mountain"])
        second = geography.join_path(["river", "mountain"])
        assert first == second
