"""Tests for the translation models: seq2seq, syntax-aware, retrieval.

Neural tests train on tiny corpora — they verify learning dynamics and
API contracts, not benchmark-level accuracy.
"""

import numpy as np
import pytest

from repro.core.templates import Family, TrainingPair
from repro.errors import ModelError
from repro.neural import (
    RetrievalModel,
    Seq2SeqModel,
    SyntaxAwareModel,
    safe_sql_tokens,
    sql_to_tokens,
    tokens_to_sql,
)
from repro.sql import parse, try_parse


def toy_pairs():
    """A tiny unambiguous parallel corpus."""
    specs = [
        ("show all patients", "SELECT * FROM patients"),
        ("show all cities", "SELECT * FROM city"),
        ("count all patients", "SELECT COUNT(*) FROM patients"),
        ("count all cities", "SELECT COUNT(*) FROM city"),
        ("show the name of all patients", "SELECT name FROM patients"),
        ("show the name of all cities", "SELECT name FROM city"),
        ("patients with age @AGE", "SELECT * FROM patients WHERE age = @AGE"),
        ("cities with population @POPULATION",
         "SELECT * FROM city WHERE population = @POPULATION"),
    ]
    return [
        TrainingPair(
            nl=nl,
            sql=parse(sql),
            template_id="toy",
            family=Family.SELECT,
            schema_name="toy",
        )
        for nl, sql in specs
    ]


class TestSqlTokens:
    def test_tokens_roundtrip_through_parser(self):
        sql = "SELECT COUNT(*) FROM t WHERE age > @AGE"
        tokens = sql_to_tokens(sql)
        assert try_parse(tokens_to_sql(tokens)) == parse(sql)

    def test_keywords_uppercased(self):
        assert sql_to_tokens("select * from t")[0] == "SELECT"

    def test_safe_tokens_none_on_garbage(self):
        assert safe_sql_tokens("SELECT # FROM") is None


class TestSeq2Seq:
    @pytest.fixture(scope="class")
    def model(self):
        model = Seq2SeqModel(
            embed_dim=16, hidden_dim=32, epochs=100, batch_size=4, lr=5e-3, seed=0
        )
        model.fit(toy_pairs())
        return model

    def test_loss_decreases(self, model):
        assert model.loss_history[-1] < model.loss_history[0] / 5

    def test_memorizes_training_pairs(self, model):
        correct = 0
        for pair in toy_pairs():
            output = model.translate(pair.nl)
            # Compare ASTs: decoded token spacing ("COUNT ( * )") differs
            # from the printer's canonical text, but parses identically.
            if output is not None and try_parse(output) == pair.sql:
                correct += 1
        assert correct >= 7  # allow one miss on 8 pairs

    def test_translate_before_fit_raises(self):
        with pytest.raises(ModelError):
            Seq2SeqModel().translate("anything")

    def test_fit_empty_raises(self):
        with pytest.raises(ModelError):
            Seq2SeqModel().fit([])

    def test_unknown_fit_kwargs_rejected(self):
        with pytest.raises(TypeError):
            Seq2SeqModel().fit(toy_pairs(), bogus=1)

    def test_empty_input_returns_none(self, model):
        assert model.translate("") is None

    def test_translate_batch(self, model):
        outputs = model.translate_batch(["show all patients", "count all cities"])
        assert len(outputs) == 2

    def test_deterministic_training(self):
        a = Seq2SeqModel(embed_dim=8, hidden_dim=16, epochs=3, seed=5)
        b = Seq2SeqModel(embed_dim=8, hidden_dim=16, epochs=3, seed=5)
        a.fit(toy_pairs())
        b.fit(toy_pairs())
        assert a.loss_history == b.loss_history

    def test_epochs_override_in_fit(self):
        model = Seq2SeqModel(embed_dim=8, hidden_dim=16, epochs=50, seed=0)
        model.fit(toy_pairs(), epochs=2)
        assert len(model.loss_history) == 2


class TestSyntaxAware:
    def test_constrained_output_always_parses(self):
        model = SyntaxAwareModel(
            embed_dim=16, hidden_dim=32, epochs=8, batch_size=4, seed=0
        )
        model.fit(toy_pairs())
        for pair in toy_pairs():
            output = model.translate(pair.nl)
            assert output is None or try_parse(output) is not None

    def test_pretrained_embeddings_installed(self):
        from repro.nlp import WordEmbeddings

        sentences = [pair.nl.split() for pair in toy_pairs()] * 5
        emb = WordEmbeddings.fit(sentences, dim=16, min_count=1)
        model = SyntaxAwareModel(
            pretrained=emb, embed_dim=16, hidden_dim=32, epochs=2, seed=0
        )
        # epochs=0: build the network (and install embeddings) without
        # any updates, so the initialization itself can be inspected.
        model.fit(toy_pairs(), epochs=0)
        vec = emb.vector("show")
        row = model.src_emb.params["W"][model.src_vocab.id_of("show")][:16]
        assert np.allclose(row, vec)

    def test_unconstrained_flag(self):
        model = SyntaxAwareModel(
            constrained=False, embed_dim=8, hidden_dim=16, epochs=2, seed=0
        )
        model.fit(toy_pairs())
        assert model._grammar_mask is None


class TestRetrieval:
    def test_exact_match_retrieval(self):
        model = RetrievalModel()
        model.fit(toy_pairs())
        for pair in toy_pairs():
            assert model.translate(pair.nl) == pair.sql_text

    def test_nearest_neighbour_generalization(self):
        model = RetrievalModel()
        model.fit(toy_pairs())
        assert (
            model.translate("please show all patients")
            == "SELECT * FROM patients"
        )

    def test_before_fit_raises(self):
        with pytest.raises(ModelError):
            RetrievalModel().translate("x")

    def test_empty_fit_raises(self):
        with pytest.raises(ModelError):
            RetrievalModel().fit([])

    def test_empty_query_returns_none(self):
        model = RetrievalModel()
        model.fit(toy_pairs())
        assert model.translate("") is None

    def test_translate_for_schema_default_passthrough(self):
        model = RetrievalModel()
        model.fit(toy_pairs())
        assert model.translate_for_schema("show all patients", None) == (
            "SELECT * FROM patients"
        )
