"""Tests for corpus serialization and the CLI."""

import pytest

from repro.cli import main
from repro.core.corpus_io import load_jsonl, load_tsv, save_jsonl, save_tsv
from repro.errors import GenerationError


class TestCorpusIO:
    def test_jsonl_roundtrip(self, patients_corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_jsonl(patients_corpus, path)
        loaded = load_jsonl(path)
        assert len(loaded) == len(patients_corpus)
        for original, restored in zip(patients_corpus.pairs, loaded.pairs):
            assert restored.nl == original.nl
            assert restored.sql == original.sql
            assert restored.template_id == original.template_id
            assert restored.family == original.family
            assert restored.augmentation == original.augmentation

    def test_tsv_roundtrip_content(self, patients_corpus, tmp_path):
        path = tmp_path / "corpus.tsv"
        save_tsv(patients_corpus, path)
        loaded = load_tsv(path, schema_name="patients")
        assert len(loaded) == len(patients_corpus)
        assert loaded.pairs[0].nl == patients_corpus.pairs[0].nl
        assert loaded.pairs[0].sql == patients_corpus.pairs[0].sql

    def test_invalid_jsonl_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"nl": "x"}\n')
        with pytest.raises(GenerationError):
            load_jsonl(path)

    def test_invalid_tsv_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only one column\n")
        with pytest.raises(GenerationError):
            load_tsv(path)

    def test_blank_lines_skipped(self, patients_corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_jsonl(patients_corpus, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_jsonl(path)) == len(patients_corpus)


class TestCli:
    def test_schemas_command(self, capsys):
        assert main(["schemas"]) == 0
        out = capsys.readouterr().out
        assert "patients" in out and "geography" in out

    def test_generate_command(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        code = main(
            [
                "generate",
                "patients",
                "--output",
                str(path),
                "--size-slotfills",
                "2",
            ]
        )
        assert code == 0
        assert path.exists()
        loaded = load_jsonl(path)
        assert len(loaded) > 0

    def test_generate_tsv(self, tmp_path):
        path = tmp_path / "out.tsv"
        assert main(
            [
                "generate",
                "patients",
                "--output",
                str(path),
                "--format",
                "tsv",
                "--size-slotfills",
                "2",
            ]
        ) == 0
        assert "\t" in path.read_text().splitlines()[0]

    def test_unknown_schema_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["generate", "nonexistent", "--output", str(tmp_path / "x.jsonl")]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_train_translate_benchmark_cycle(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        code = main(
            [
                "train",
                "patients",
                "--output",
                str(checkpoint),
                "--epochs",
                "2",
                "--embed-dim",
                "16",
                "--hidden-dim",
                "24",
                "--corpus-cap",
                "300",
                "--size-slotfills",
                "3",
            ]
        )
        assert code == 0
        assert checkpoint.exists()

        code = main(
            [
                "translate",
                "patients",
                "--checkpoint",
                str(checkpoint),
                "--ask",
                "how many patients are there",
            ]
        )
        assert code == 0
        assert "SQL:" in capsys.readouterr().out

        code = main(
            ["benchmark", "--checkpoint", str(checkpoint), "--category", "naive"]
        )
        assert code == 0
        assert "Accuracy" in capsys.readouterr().out
