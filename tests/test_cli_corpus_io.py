"""Tests for corpus serialization and the CLI."""

import pytest

from repro.cli import EXIT_ERROR, EXIT_OK, main
from repro.core.corpus_io import load_jsonl, load_tsv, save_jsonl, save_tsv
from repro.errors import GenerationError


class TestCorpusIO:
    def test_jsonl_roundtrip(self, patients_corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_jsonl(patients_corpus, path)
        loaded = load_jsonl(path)
        assert len(loaded) == len(patients_corpus)
        for original, restored in zip(patients_corpus.pairs, loaded.pairs):
            assert restored.nl == original.nl
            assert restored.sql == original.sql
            assert restored.template_id == original.template_id
            assert restored.family == original.family
            assert restored.augmentation == original.augmentation

    def test_tsv_roundtrip_content(self, patients_corpus, tmp_path):
        path = tmp_path / "corpus.tsv"
        save_tsv(patients_corpus, path)
        loaded = load_tsv(path, schema_name="patients")
        assert len(loaded) == len(patients_corpus)
        assert loaded.pairs[0].nl == patients_corpus.pairs[0].nl
        assert loaded.pairs[0].sql == patients_corpus.pairs[0].sql

    def test_invalid_jsonl_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"nl": "x"}\n')
        with pytest.raises(GenerationError):
            load_jsonl(path)

    def test_invalid_tsv_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only one column\n")
        with pytest.raises(GenerationError):
            load_tsv(path)

    def test_blank_lines_skipped(self, patients_corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_jsonl(patients_corpus, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_jsonl(path)) == len(patients_corpus)


class TestAtomicWrites:
    """``save_jsonl``/``save_tsv`` publish via tmp-file + rename: a
    failure mid-write must never clobber an existing file or leave a
    half-written one (or tmp litter) behind."""

    @pytest.mark.parametrize("saver", [save_jsonl, save_tsv])
    def test_failure_mid_stream_preserves_previous_file(
        self, patients_corpus, tmp_path, saver
    ):
        path = tmp_path / "corpus.out"
        saver(patients_corpus, path)
        before = path.read_bytes()

        def poisoned():
            yield patients_corpus.pairs[0]
            raise RuntimeError("producer died mid-stream")

        with pytest.raises(RuntimeError):
            saver(poisoned(), path)
        assert path.read_bytes() == before
        assert list(tmp_path.iterdir()) == [path]

    def test_failure_on_fresh_path_leaves_nothing(self, tmp_path):
        path = tmp_path / "corpus.jsonl"

        def poisoned():
            raise RuntimeError("boom")
            yield  # pragma: no cover

        with pytest.raises(RuntimeError):
            save_jsonl(poisoned(), path)
        assert list(tmp_path.iterdir()) == []

    def test_save_returns_pair_count(self, patients_corpus, tmp_path):
        written = save_jsonl(patients_corpus, tmp_path / "c.jsonl")
        assert written == len(patients_corpus)


class TestCli:
    def test_schemas_command(self, capsys):
        assert main(["schemas"]) == 0
        out = capsys.readouterr().out
        assert "patients" in out and "geography" in out

    def test_generate_command(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        code = main(
            [
                "generate",
                "patients",
                "--output",
                str(path),
                "--size-slotfills",
                "2",
            ]
        )
        assert code == 0
        assert path.exists()
        loaded = load_jsonl(path)
        assert len(loaded) > 0

    def test_generate_tsv(self, tmp_path):
        path = tmp_path / "out.tsv"
        assert main(
            [
                "generate",
                "patients",
                "--output",
                str(path),
                "--format",
                "tsv",
                "--size-slotfills",
                "2",
            ]
        ) == 0
        assert "\t" in path.read_text().splitlines()[0]

    def test_generate_writes_manifest(self, tmp_path):
        path = tmp_path / "out.jsonl"
        assert main(
            [
                "generate",
                "patients",
                "--output",
                str(path),
                "--size-slotfills",
                "2",
            ]
        ) == EXIT_OK
        manifest = tmp_path / "out.manifest.json"
        assert manifest.exists()
        import json

        record = json.loads(manifest.read_text())
        assert record["status"] == "complete"
        assert record["shards"]

    def test_generate_resume_is_noop_and_identical(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        argv = [
            "generate",
            "patients",
            "--output",
            str(path),
            "--size-slotfills",
            "2",
        ]
        assert main(argv) == EXIT_OK
        first = path.read_bytes()
        capsys.readouterr()
        assert main(argv + ["--resume"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "resumed from checkpoint" in out
        assert "wrote 0 pairs" in out
        assert path.read_bytes() == first

    def test_no_checkpoint_skips_manifest_same_bytes(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        plain = tmp_path / "plain.jsonl"
        base = ["generate", "patients", "--size-slotfills", "2"]
        assert main(base + ["--output", str(ckpt)]) == EXIT_OK
        assert main(base + ["--output", str(plain), "--no-checkpoint"]) == EXIT_OK
        assert not (tmp_path / "plain.manifest.json").exists()
        assert plain.read_bytes() == ckpt.read_bytes()

    def test_resume_without_checkpointing_is_an_error(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                "patients",
                "--output",
                str(tmp_path / "x.jsonl"),
                "--no-checkpoint",
                "--resume",
            ]
        )
        assert code == EXIT_ERROR
        assert "--resume requires checkpointing" in capsys.readouterr().err

    def test_unknown_schema_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["generate", "nonexistent", "--output", str(tmp_path / "x.jsonl")]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_train_translate_benchmark_cycle(self, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"
        code = main(
            [
                "train",
                "patients",
                "--output",
                str(checkpoint),
                "--epochs",
                "2",
                "--embed-dim",
                "16",
                "--hidden-dim",
                "24",
                "--corpus-cap",
                "300",
                "--size-slotfills",
                "3",
            ]
        )
        assert code == 0
        assert checkpoint.exists()

        code = main(
            [
                "translate",
                "patients",
                "--checkpoint",
                str(checkpoint),
                "--ask",
                "how many patients are there",
            ]
        )
        assert code == 0
        assert "SQL:" in capsys.readouterr().out

        code = main(
            ["benchmark", "--checkpoint", str(checkpoint), "--category", "naive"]
        )
        assert code == 0
        assert "Accuracy" in capsys.readouterr().out
