"""The adapter protocol itself: registry, capabilities, normalization,
and the seams that consume adapters (DBPal, the equivalence checker).
"""

from __future__ import annotations

import pytest

from repro.adapters import (
    BACKENDS,
    BackendAdapter,
    Capabilities,
    MemoryAdapter,
    SqliteAdapter,
    backend_names,
    create_backend,
    normalize_rows,
)
from repro.db import populate
from repro.db.planner import ExecutorSession
from repro.errors import BackendError
from repro.schema import load_schema
from repro.sql.equivalence import EquivalenceChecker
from repro.sql.parser import parse

pytestmark = pytest.mark.adapters


# ----------------------------------------------------------------------
# Registry and capabilities
# ----------------------------------------------------------------------


def test_builtin_backends_registered():
    assert backend_names() == ["memory", "sqlite"]
    assert BACKENDS["memory"] is MemoryAdapter
    assert BACKENDS["sqlite"] is SqliteAdapter


def test_create_backend_by_name(patients_db):
    adapter = create_backend("memory", patients_db)
    assert isinstance(adapter, MemoryAdapter)


def test_unknown_backend_names_alternatives():
    with pytest.raises(BackendError, match="memory.*sqlite"):
        create_backend("postgres")


def test_capabilities_distinguish_backends(patients_db):
    memory = MemoryAdapter(patients_db).capabilities
    sqlite_caps = SqliteAdapter().capabilities
    assert isinstance(memory, Capabilities)
    assert memory.dialect == "default"
    assert not memory.persistent and not memory.executes_sql_text
    assert sqlite_caps.dialect == "sqlite"
    assert sqlite_caps.persistent and sqlite_caps.executes_sql_text
    assert sqlite_caps.transactional


def test_adapters_are_context_managers(patients_db):
    with SqliteAdapter.from_database(patients_db) as adapter:
        assert isinstance(adapter, BackendAdapter)
        assert adapter.execute(parse("SELECT COUNT(*) FROM patients"))
    adapter.close()  # idempotent after __exit__


def test_memory_adapter_rejects_wrong_source():
    with pytest.raises(BackendError, match="MemoryAdapter needs"):
        MemoryAdapter(42)


def test_memory_adapter_shares_session_caches(patients_db):
    session = ExecutorSession(patients_db)
    adapter = MemoryAdapter(session)
    query = parse("SELECT name FROM patients WHERE age > 40")
    adapter.execute(query)
    adapter.execute(query)
    assert session.cache_hits >= 1


def test_memory_load_requires_matching_schema(patients_db, geography_db):
    adapter = MemoryAdapter(load_schema("patients"))
    with pytest.raises(BackendError, match="cannot load"):
        adapter.load(geography_db)
    adapter.load(patients_db)
    assert adapter.execute(parse("SELECT COUNT(*) FROM patients")) == [
        {"COUNT(*)": 30}
    ]


# ----------------------------------------------------------------------
# Row normalization
# ----------------------------------------------------------------------


def test_normalize_rows_canonicalizes_floats_only():
    rows = normalize_rows(
        [{"a": 0.1 + 0.2, "b": 3, "c": "x", "d": None}]
    )
    assert rows == [{"a": 0.3, "b": 3, "c": "x", "d": None}]
    assert isinstance(rows[0]["b"], int)


def test_normalize_rows_preserves_order():
    rows = normalize_rows([{"z": 1, "a": 2}])
    assert list(rows[0]) == ["z", "a"]


# ----------------------------------------------------------------------
# DBPal facade threading
# ----------------------------------------------------------------------


def test_dbpal_backend_by_name_matches_default(retrieval_nlidb, patients_db):
    from repro.runtime import DBPal

    question = "show the name of all patients"
    baseline = retrieval_nlidb.query(question, max_rows=5)
    for backend in ("memory", "sqlite"):
        nlidb = DBPal(patients_db, retrieval_nlidb.model, backend=backend)
        assert nlidb.query(question, max_rows=5) == normalize_rows(baseline)


def test_dbpal_accepts_adapter_instance(retrieval_nlidb, patients_db):
    from repro.runtime import DBPal

    with SqliteAdapter.from_database(patients_db) as adapter:
        nlidb = DBPal(patients_db, retrieval_nlidb.model, backend=adapter)
        assert nlidb.backend is adapter
        assert nlidb.query("how many patients are there")


def test_dbpal_rejects_unknown_backend(patients_db):
    from repro.runtime import DBPal

    with pytest.raises(BackendError, match="unknown backend"):
        DBPal(patients_db, backend="oracle")


# ----------------------------------------------------------------------
# Equivalence-checker probes
# ----------------------------------------------------------------------


def test_equivalence_checker_accepts_adapter_probes(patients_db):
    with SqliteAdapter.from_database(patients_db) as adapter:
        checker = EquivalenceChecker([MemoryAdapter(patients_db), adapter])
        left = parse("SELECT name FROM patients WHERE age > 50 AND gender = 'f'")
        right = parse("SELECT name FROM patients WHERE gender = 'f' AND age > 50")
        different = parse("SELECT name FROM patients WHERE age > 51")
        assert checker.equivalent(left, right)
        assert not checker.equivalent(left, different)
        report = checker.perf_report()
        assert report["cache_hits"] >= 0  # adapters count as zero


def test_equivalence_checker_mixed_probe_arms(patients_db):
    # A Database, a session, and an adapter in one probe list.
    with SqliteAdapter.from_database(patients_db) as adapter:
        checker = EquivalenceChecker(
            [patients_db, ExecutorSession(patients_db), adapter]
        )
        left = parse("SELECT COUNT(*) FROM patients WHERE age >= 30")
        right = parse("SELECT COUNT(*) FROM patients WHERE 30 <= age")
        assert checker.equivalent(left, right)


def test_equivalence_checker_uncertifiable_on_adapter_refusal(patients_db):
    # Queries outside the sqlite emitter's subset make the arm fail →
    # not certified, not crashed.
    with SqliteAdapter.from_database(patients_db) as adapter:
        checker = EquivalenceChecker([adapter])
        left = parse(
            "SELECT DISTINCT name FROM patients WHERE age > "
            "(SELECT DISTINCT age FROM patients ORDER BY age LIMIT 1)"
        )
        right = parse(
            "SELECT DISTINCT name FROM patients WHERE age > "
            "(SELECT DISTINCT age FROM patients ORDER BY age DESC LIMIT 1)"
        )
        assert not checker.equivalent(left, right)
