"""Legacy setup shim.

Kept so that ``pip install -e .`` works in offline environments without
the ``wheel`` package (pip then uses the setuptools legacy editable
install). All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
